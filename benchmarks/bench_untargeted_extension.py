"""Extension: BaFFLe vs *untargeted* poisoning (Fang et al. 2020).

BaFFLe is designed for backdoors, but its validation signal — per-class
error variation against trusted history — reacts even more violently to
updates that degrade overall accuracy.  This bench mounts sign-flip and
random-update attacks in the stable-model scenario and checks the defense
rejects them.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, write_result
from repro.attacks.untargeted import RandomUpdateClient, SignFlipClient
from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_environment
from repro.experiments.scenarios import _build_defense
from repro.fl import FederatedSimulation, FLConfig, HonestClient, ScheduledSelector
from repro.nn.metrics import accuracy

ATTACK_ROUNDS = (24, 27)
CONFIG = ExperimentConfig(dataset="cifar", client_share=0.90)


def _run(attacker_factory, defended: bool):
    env = build_environment(CONFIG, seed=0)
    fl_cfg = FLConfig(
        num_clients=CONFIG.num_clients,
        clients_per_round=CONFIG.clients_per_round,
        local_epochs=CONFIG.local_epochs,
        client_lr=CONFIG.stable_lr,
        global_lr=CONFIG.stable_global_lr,
    )
    clients = [attacker_factory(env.shards[0], fl_cfg)] + [
        HonestClient(i, env.shards[i]) for i in range(1, CONFIG.num_clients)
    ]
    defense = None
    if defended:
        defense = _build_defense(CONFIG, env)
        defense.prime(env.stable_model)
    selector = ScheduledSelector(
        CONFIG.num_clients, CONFIG.clients_per_round,
        {r: [0] for r in ATTACK_ROUNDS},
    )
    sim = FederatedSimulation(
        env.stable_model.clone(), clients, fl_cfg,
        np.random.default_rng(17), selector=selector, defense=defense,
    )
    records = sim.run(max(ATTACK_ROUNDS) + 1)
    final_acc = accuracy(env.test_data.y, sim.global_model.predict(env.test_data.x))
    rejected = sum(1 for r in ATTACK_ROUNDS if not records[r].accepted)
    return final_acc, rejected


def _run_all():
    rows = []
    outcomes = {}
    attacks = {
        "sign-flip (boost 60)": lambda shard, cfg: SignFlipClient(
            0, shard, boost=60.0, attack_rounds=set(ATTACK_ROUNDS)
        ),
        "random update (norm 300)": lambda shard, cfg: RandomUpdateClient(
            0, shard, norm=300.0, attack_rounds=set(ATTACK_ROUNDS)
        ),
    }
    for label, factory in attacks.items():
        acc_nodef, _ = _run(factory, defended=False)
        acc_def, rejected = _run(factory, defended=True)
        outcomes[label] = (acc_nodef, acc_def, rejected)
        rows.append(
            f"{label:>24}: undefended acc={acc_nodef:.2f}  "
            f"defended acc={acc_def:.2f}  "
            f"injections rejected {rejected}/{len(ATTACK_ROUNDS)}"
        )
    return outcomes, rows


def test_untargeted_extension(benchmark):
    outcomes, rows = once(benchmark, _run_all)
    write_result(
        "untargeted_extension",
        "\n".join(["Extension: untargeted poisoning vs BaFFLe"] + rows),
    )
    for label, (acc_nodef, acc_def, rejected) in outcomes.items():
        # the attack visibly hurts the undefended model...
        assert acc_nodef < acc_def - 0.02, f"{label}: attack had no effect"
        # ...and the defense rejects the poisoned rounds.
        assert rejected == len(ATTACK_ROUNDS), f"{label}: injections missed"
        assert acc_def > 0.85
