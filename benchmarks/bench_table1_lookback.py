"""Paper Table I: FP/FN rates vs look-back window size and data split.

Grid: {CIFAR-like, FEMNIST-like} x l in {10, 20, 30} x three client-server
splits x three configurations (BaFFLe-C / BaFFLe-S / BaFFLe), each averaged
over repeated seeds.

Paper shape to reproduce:
- the feedback-loop configurations (C, C+S) keep FP well below the
  server-only configuration;
- FN ~ 0 at l = 20 for every split and both datasets.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import CIFAR_SPLITS, FEMNIST_SPLITS, ExperimentConfig
from repro.experiments.reporting import format_table1
from repro.experiments.runner import sweep_lookback

LOOKBACKS = (10, 20, 30)


def _run_dataset(dataset: str, splits, seeds):
    base = ExperimentConfig(dataset=dataset)
    return sweep_lookback(base, LOOKBACKS, splits, seeds=seeds)


def test_table1_cifar(benchmark):
    seeds = bench_seeds()
    results = once(benchmark, lambda: _run_dataset("cifar", CIFAR_SPLITS, seeds))
    text = format_table1(results, LOOKBACKS, CIFAR_SPLITS, "CIFAR-like")
    write_result("table1_cifar", text)

    # Feedback loop beats server-only on FP at the paper's default l = 20.
    for split in CIFAR_SPLITS:
        loop_fp = results[(20, split, "both")].fp_mean
        server_fp = results[(20, split, "server")].fp_mean
        assert loop_fp <= server_fp + 1e-9
    # FN ~ 0 at l = 20 (paper: 0 for all splits).
    fn20 = [results[(20, s, m)].fn_mean for s in CIFAR_SPLITS for m in ("clients", "both")]
    assert float(np.mean(fn20)) <= 0.15


def test_table1_femnist(benchmark):
    seeds = bench_seeds()
    results = once(benchmark, lambda: _run_dataset("femnist", FEMNIST_SPLITS, seeds))
    text = format_table1(results, LOOKBACKS, FEMNIST_SPLITS, "FEMNIST-like")
    write_result("table1_femnist", text)

    fn20 = [
        results[(20, s, m)].fn_mean
        for s in FEMNIST_SPLITS
        for m in ("clients", "both")
    ]
    assert float(np.mean(fn20)) <= 0.15
