"""Vote robustness: malicious validators vs the quorum rule (Sec. IV-B).

The paper's analysis bounds how many lying validators the quorum rule
tolerates: DoS voters (always "reject") cannot discard clean rounds while
``n_M < q``, and shielding voters (always "accept") cannot save poisoned
rounds while ``n_M <= n - q`` aware-honest voters remain.  This bench
sweeps the number of liars for both strategies at the paper's q = 5 and
checks the empirical FP/FN against the analytical bounds.
"""

from __future__ import annotations

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_detection_experiment

BASE = ExperimentConfig(dataset="cifar", client_share=0.90, quorum=5)


def _sweep(seeds):
    rows = {}
    for strategy in ("dos", "shield"):
        for liars in (0, 2, 4):
            config = BASE.with_updates(
                malicious_validators=liars, malicious_vote_strategy=strategy
            )
            rows[(strategy, liars)] = run_detection_experiment(config, seeds)
    return rows


def test_vote_robustness(benchmark):
    seeds = bench_seeds()
    rows = once(benchmark, lambda: _sweep(seeds))
    lines = [
        "Vote robustness at q=5, n=10 validators (CIFAR-like, 90-10, C+S)",
        f"{'strategy':>9} {'liars':>6} | FP / FN",
    ]
    for (strategy, liars), stats in sorted(rows.items()):
        lines.append(f"{strategy:>9} {liars:>6} | {stats}")
    write_result("vote_robustness", "\n".join(lines))

    # DoS voters below the quorum cannot reject clean rounds on their own:
    # FP stays bounded while liars < q (the honest-noise term adds a bit).
    assert rows[("dos", 2)].fp_mean <= rows[("dos", 4)].fp_mean + 0.1
    # Shield voters below n - q + 1 cannot save poisoned rounds: the
    # remaining honest validators still reach the quorum.
    assert rows[("shield", 2)].fn_mean <= 0.2
    # With 4 of 10 validators shielding, detection needs 5 rejects from the
    # remaining 6 honest ones + server: still mostly caught in our regime.
    assert rows[("shield", 4)].fn_mean <= 0.5
