"""Baseline robust-aggregation defenses vs model replacement (Sec. VII).

The paper contrasts BaFFLe with update-inspection defenses.  This bench
runs the same single-shot model-replacement attack under each baseline
aggregation rule and reports (a) whether the backdoor landed and (b)
whether the rule composes with secure aggregation.

Expected shape:
- plain FedAvg: backdoor lands (the attack's premise);
- Krum / coordinate median / trimmed mean: the boosted update is
  discarded or out-voted, so the backdoor is blunted — but none of them
  compose with secure aggregation;
- BaFFLe: backdoor rejected AND secure aggregation preserved.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, write_result
from repro.baselines import (
    CoordinateMedianAggregator,
    FoolsGoldAggregator,
    GeometricMedianAggregator,
    KrumAggregator,
    NormClippingAggregator,
    TrimmedMeanAggregator,
)
from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_environment
from repro.experiments.metrics import detection_stats
from repro.experiments.scenarios import _build_clients, run_stable_scenario
from repro.fl import FederatedSimulation, FLConfig, ScheduledSelector

ATTACK_ROUND = 12
CONFIG = ExperimentConfig(
    dataset="cifar",
    client_share=0.90,
    total_rounds=14,
    defense_start=10,
    attack_rounds=(ATTACK_ROUND,),
)


def _run_baseline(aggregator):
    env = build_environment(CONFIG, seed=0)
    fl_config = FLConfig(
        num_clients=CONFIG.num_clients,
        clients_per_round=CONFIG.clients_per_round,
        local_epochs=CONFIG.local_epochs,
        batch_size=CONFIG.batch_size,
        client_lr=CONFIG.stable_lr,
        global_lr=CONFIG.stable_global_lr,
    )
    clients = _build_clients(CONFIG, env, None, fl_config.effective_global_lr)
    selector = ScheduledSelector(
        CONFIG.num_clients, CONFIG.clients_per_round, {ATTACK_ROUND: [0]}
    )
    sim = FederatedSimulation(
        env.stable_model.clone(), clients, fl_config,
        np.random.default_rng(123), selector=selector, aggregator=aggregator,
    )
    sim.run(ATTACK_ROUND + 1)  # stop right after the injection
    bd_acc = env.backdoor.backdoor_accuracy(
        sim.global_model, 200, np.random.default_rng(5)
    )
    return bd_acc


def _run_all():
    rows = []
    baselines = [
        ("FedAvg (no defense)", None, False),
        ("Krum (f=1)", KrumAggregator(num_malicious=1), False),
        ("multi-Krum (f=1, m=5)", KrumAggregator(num_malicious=1, multi_k=5), False),
        ("coordinate median", CoordinateMedianAggregator(), False),
        ("trimmed mean (b=2)", TrimmedMeanAggregator(trim=2), False),
        ("norm clip (C=2)", NormClippingAggregator(max_norm=2.0), False),
        ("geometric median (RFA)", GeometricMedianAggregator(), False),
        ("FoolsGold", FoolsGoldAggregator(), False),
    ]
    results = {}
    for label, aggregator, _ in baselines:
        bd = _run_baseline(aggregator)
        secure_ok = aggregator is None or not aggregator.requires_individual_updates
        results[label] = (bd, secure_ok)
        rows.append(
            f"{label:>24}: backdoor_acc={bd:5.2f}  "
            f"secure-agg compatible: {'yes' if secure_ok else 'NO'}"
        )
    # BaFFLe itself, via the standard scenario (same attack round).
    baffle = run_stable_scenario(CONFIG, seed=0, track_metrics=True)
    stats = detection_stats(baffle.records, baffle.injection_rounds, CONFIG.defense_start)
    bd = baffle.backdoor_accuracy[ATTACK_ROUND]
    results["BaFFLe"] = (bd, True)
    rows.append(
        f"{'BaFFLe':>24}: backdoor_acc={bd:5.2f}  secure-agg compatible: yes "
        f"(FN={stats.fn_rate:.2f})"
    )
    return results, rows


def test_baseline_defenses(benchmark):
    results, rows = once(benchmark, _run_all)
    write_result(
        "baseline_defenses",
        "\n".join(["Baselines vs single-shot model replacement"] + rows),
    )

    fedavg_bd, _ = results["FedAvg (no defense)"]
    assert fedavg_bd > 0.5, "attack premise broken: FedAvg should be backdoored"

    baffle_bd, baffle_secure = results["BaFFLe"]
    assert baffle_bd < 0.3
    assert baffle_secure

    # Distance-based rules blunt the boosted update but lose secure agg.
    krum_bd, krum_secure = results["Krum (f=1)"]
    assert krum_bd < fedavg_bd
    assert not krum_secure
    median_bd, median_secure = results["coordinate median"]
    assert median_bd < fedavg_bd
    assert not median_secure
