"""Micro-benchmarks of the substrate hot paths.

Not a paper artefact — these time the operations the experiment harness
leans on (local training, Algorithm 2 validation, LOF, aggregation), so
regressions in the substrate show up as benchmark deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lof import local_outlier_factor
from repro.core.validation import MisclassificationValidator, ValidationContext
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import LocalTrainingConfig, local_train
from repro.fl.secure_agg import SecureAggregator
from repro.nn.models import make_mlp


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    shard = task.sample(100, rng)
    model = make_mlp(task.flat_dim, 10, rng, hidden=(64,))
    local_train(model, shard, LocalTrainingConfig(epochs=5, lr=0.1), rng)
    history = []
    for version in range(21):
        local_train(model, shard, LocalTrainingConfig(epochs=1, lr=0.02), rng)
        history.append((version, model.clone()))
    return {"task": task, "shard": shard, "model": model, "history": history, "rng": rng}


def test_perf_local_training_round(benchmark, setup):
    """One client's local training (2 epochs on a ~100-sample shard)."""
    model = setup["model"]
    shard = setup["shard"]
    rng = np.random.default_rng(1)

    def step():
        local = model.clone()
        local_train(local, shard, LocalTrainingConfig(epochs=2, lr=0.05), rng)

    benchmark(step)


def test_perf_validation_cold(benchmark, setup):
    """Algorithm 2 with a cold profile cache (first-ever validation)."""
    shard = setup["shard"]
    history = setup["history"]
    candidate = setup["model"]

    def validate():
        validator = MisclassificationValidator(shard)  # cold cache
        return validator.explain(ValidationContext(candidate, history))

    benchmark(validate)


def test_perf_validation_warm(benchmark, setup):
    """Algorithm 2 with cached profiles (the steady-state per-round cost)."""
    shard = setup["shard"]
    history = setup["history"]
    candidate = setup["model"]
    validator = MisclassificationValidator(shard)
    validator.explain(ValidationContext(candidate, history))  # warm up

    benchmark(
        lambda: validator.explain(ValidationContext(candidate, history))
    )


def test_perf_lof(benchmark):
    rng = np.random.default_rng(0)
    reference = rng.normal(size=(14, 20))
    query = rng.normal(size=20)
    benchmark(lambda: local_outlier_factor(query, reference, k=10))


def test_perf_secure_aggregation(benchmark, setup):
    dim = setup["model"].num_parameters
    rng = np.random.default_rng(2)
    updates = {i: rng.normal(size=dim) for i in range(10)}

    def round_trip():
        agg = SecureAggregator(list(updates), dim=dim, round_seed=7)
        submissions = [agg.blind(i, u) for i, u in updates.items()]
        return agg.unmask_sum(submissions)

    benchmark(round_trip)
