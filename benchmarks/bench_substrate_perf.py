"""Micro-benchmarks of the substrate hot paths.

Two modes:

- Under pytest (with pytest-benchmark installed) the ``test_perf_*``
  functions time the operations the experiment harness leans on (local
  training, Algorithm 2 validation, LOF, aggregation), so regressions in
  the substrate show up as benchmark deltas.
- As a standalone script it benchmarks **stacked vs per-model** execution
  (the stacked-cohort PR): a client-training round through
  :func:`repro.fl.cohort.cohort_updates` and cold validation-profile
  computation through :func:`repro.core.errors.stacked_error_profiles`,
  across three worlds, asserting bit-identical results and minimum
  speedups, and archiving machine-readable
  ``benchmarks/results/BENCH_substrate.json``.

Usage::

    python benchmarks/bench_substrate_perf.py           # full setting
    python benchmarks/bench_substrate_perf.py --quick   # CI smoke

A note on the measured speedups: stacking removes the per-model Python/
dispatch cost (and redundant work like per-client clones and loss-value
computation), not the BLAS time — per-slice GEMMs are bit-identical to
the per-model GEMMs, hence exactly as fast.  On this reference CPU the
default (cifar-shaped) world is already GEMM-bound, so its stacked gain
is modest; the femnist-shaped and overhead-bound worlds, where dispatch
overhead dominates, show the >= 2x regime the cohort engine targets.
The gates below encode measured-robust floors per world, not one global
aspiration.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Standalone invocation support: `python benchmarks/bench_substrate_perf.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core.lof import local_outlier_factor  # noqa: E402
from repro.core.validation import (  # noqa: E402
    MisclassificationValidator,
    ValidationContext,
)
from repro.data.synthetic_cifar import SyntheticCifar  # noqa: E402
from repro.fl.client import LocalTrainingConfig, local_train  # noqa: E402
from repro.fl.secure_agg import SecureAggregator  # noqa: E402
from repro.nn.models import make_mlp  # noqa: E402


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    shard = task.sample(100, rng)
    model = make_mlp(task.flat_dim, 10, rng, hidden=(64,))
    local_train(model, shard, LocalTrainingConfig(epochs=5, lr=0.1), rng)
    history = []
    for version in range(21):
        local_train(model, shard, LocalTrainingConfig(epochs=1, lr=0.02), rng)
        history.append((version, model.clone()))
    return {"task": task, "shard": shard, "model": model, "history": history, "rng": rng}


def test_perf_local_training_round(benchmark, setup):
    """One client's local training (2 epochs on a ~100-sample shard)."""
    model = setup["model"]
    shard = setup["shard"]
    rng = np.random.default_rng(1)

    def step():
        local = model.clone()
        local_train(local, shard, LocalTrainingConfig(epochs=2, lr=0.05), rng)

    benchmark(step)


def test_perf_validation_cold(benchmark, setup):
    """Algorithm 2 with a cold profile cache (first-ever validation)."""
    shard = setup["shard"]
    history = setup["history"]
    candidate = setup["model"]

    def validate():
        validator = MisclassificationValidator(shard)  # cold cache
        return validator.explain(ValidationContext(candidate, history))

    benchmark(validate)


def test_perf_validation_warm(benchmark, setup):
    """Algorithm 2 with cached profiles (the steady-state per-round cost)."""
    shard = setup["shard"]
    history = setup["history"]
    candidate = setup["model"]
    validator = MisclassificationValidator(shard)
    validator.explain(ValidationContext(candidate, history))  # warm up

    benchmark(
        lambda: validator.explain(ValidationContext(candidate, history))
    )


def test_perf_lof(benchmark):
    rng = np.random.default_rng(0)
    reference = rng.normal(size=(14, 20))
    query = rng.normal(size=20)
    benchmark(lambda: local_outlier_factor(query, reference, k=10))


def test_perf_secure_aggregation(benchmark, setup):
    dim = setup["model"].num_parameters
    rng = np.random.default_rng(2)
    updates = {i: rng.normal(size=dim) for i in range(10)}

    def round_trip():
        agg = SecureAggregator(list(updates), dim=dim, round_seed=7)
        submissions = [agg.blind(i, u) for i, u in updates.items()]
        return agg.unmask_sum(submissions)

    benchmark(round_trip)


# ======================================================================
# Standalone mode: stacked vs per-model execution
# ======================================================================
def _standalone_main() -> int:  # pragma: no cover - exercised by CI script run
    import argparse
    import time

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)))
    )
    from _common import write_json, write_result

    from repro.core.errors import model_error_profile, stacked_error_profiles
    from repro.data.partition import iid_partition
    from repro.data.synthetic_femnist import SyntheticFemnist
    from repro.fl.client import HonestClient
    from repro.fl.cohort import cohort_updates

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer timing repetitions")
    parser.add_argument("--reps", type=int, default=None,
                        help="timing repetitions per row (best-of)")
    args = parser.parse_args()
    reps = args.reps if args.reps is not None else (5 if args.quick else 15)

    #: (name, task factory, clients, shard, hidden, train gate, profile gate).
    #: Gates are measured-robust floors per world on the reference
    #: single-core CPU (see module docstring), asserted over the best-of
    #: repetitions; bit-identity is asserted unconditionally.
    worlds = [
        ("cifar-default", SyntheticCifar, 10, 100, (64,), 1.05, 0.9),
        ("femnist", lambda: SyntheticFemnist(num_writers=30), 10, 100, (64,), 1.4, 1.05),
        ("overhead-bound", lambda: SyntheticFemnist(num_writers=30), 10, 40, (32,), 1.6, 1.15),
    ]

    def best_of(fn, count):
        fn()  # warm-up
        best = float("inf")
        for _ in range(count):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    rows = []
    failures = []  # bit-identity violations: hard-fail in every mode
    misses = []  # speedup floors: hard in full mode, advisory under --quick
    #   (shared CI runners add wall-clock noise the floors cannot absorb;
    #   the parallel bench skips its wall-clock gate on CI the same way)
    for name, task_factory, num_clients, shard_size, hidden, train_gate, profile_gate in worlds:
        rng = np.random.default_rng(0)
        task = task_factory()
        pool = task.sample(shard_size * (num_clients + 1), rng)
        parts = iid_partition(len(pool), num_clients + 1, rng)
        shards = [pool.subset(p) for p in parts]
        model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=hidden)
        config = LocalTrainingConfig(epochs=2, batch_size=32, lr=0.05, momentum=0.9)

        # --- client-training round: per-model vs stacked cohort ---------
        def train_per_model():
            return [
                HonestClient(i, shards[i]).produce_update(
                    model, config, 0, np.random.default_rng(i)
                )
                for i in range(num_clients)
            ]

        def train_stacked():
            return cohort_updates(
                model,
                shards[:num_clients],
                config,
                [np.random.default_rng(i) for i in range(num_clients)],
            )

        identical = all(
            np.array_equal(a, b)
            for a, b in zip(train_per_model(), train_stacked())
        )
        seq_s = best_of(train_per_model, reps)
        stk_s = best_of(train_stacked, reps)
        train_speedup = seq_s / stk_s
        rows.append({
            "world": name, "row": "client-training-round",
            "models": num_clients,
            "per_model_s": seq_s, "stacked_s": stk_s,
            "speedup": train_speedup, "identical": identical,
            "gate": train_gate,
        })
        if not identical:
            failures.append(f"{name}: cohort updates not bit-identical")
        if train_speedup < train_gate:
            misses.append(
                f"{name}: training speedup {train_speedup:.2f}x < floor {train_gate}x"
            )

        # --- cold validation: candidate + 20-model history profiles -----
        history_model = model.clone()
        stack_models = []
        for _ in range(21):  # 20 history models + the candidate
            local_train(
                history_model, shards[0], LocalTrainingConfig(epochs=1, lr=0.02), rng
            )
            stack_models.append(history_model.clone())
        validation_data = shards[num_clients]

        def profiles_per_model():
            return [model_error_profile(m, validation_data) for m in stack_models]

        def profiles_stacked():
            return stacked_error_profiles(stack_models, validation_data)

        identical = all(
            np.array_equal(a.source_errors, b.source_errors)
            and np.array_equal(a.target_errors, b.target_errors)
            for a, b in zip(profiles_per_model(), profiles_stacked())
        )
        seq_s = best_of(profiles_per_model, reps)
        stk_s = best_of(profiles_stacked, reps)
        profile_speedup = seq_s / stk_s
        rows.append({
            "world": name, "row": "cold-validation-profiles",
            "models": len(stack_models),
            "per_model_s": seq_s, "stacked_s": stk_s,
            "speedup": profile_speedup, "identical": identical,
            "gate": profile_gate,
        })
        if not identical:
            failures.append(f"{name}: stacked profiles not bit-identical")
        if profile_speedup < profile_gate:
            misses.append(
                f"{name}: profile speedup {profile_speedup:.2f}x < floor {profile_gate}x"
            )

    header = f"{'world':<16} {'row':<26} {'per-model':>10} {'stacked':>10} {'speedup':>8} {'bit-id':>7}"
    lines = [
        "Stacked-vs-per-model substrate benchmark "
        f"({'quick' if args.quick else 'full'}, best of {reps})",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['world']:<16} {row['row']:<26} "
            f"{row['per_model_s'] * 1e3:>8.2f}ms {row['stacked_s'] * 1e3:>8.2f}ms "
            f"{row['speedup']:>7.2f}x {str(row['identical']):>7}"
        )
    if args.quick and misses:
        lines.append("")
        lines.append("SPEEDUP FLOORS MISSED (advisory under --quick):")
        lines.extend(f"  - {miss}" for miss in misses)
    elif misses:
        failures.extend(misses)
    if failures:
        lines.append("")
        lines.append("GATE FAILURES:")
        lines.extend(f"  - {failure}" for failure in failures)
    text = "\n".join(lines)
    write_result("substrate_stacked", text)
    write_json("BENCH_substrate", {
        "mode": "quick" if args.quick else "full",
        "reps": reps,
        "rows": rows,
        "gates_passed": not failures,
        "speedup_floor_misses": misses,
    })
    if failures:
        print("substrate benchmark gates FAILED", file=sys.stderr)
        return 1
    print("substrate benchmark gates passed"
          + (" (speedup floors advisory under --quick)" if args.quick else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_standalone_main())
