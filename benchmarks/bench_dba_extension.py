"""Extension: BaFFLe vs the Distributed Backdoor Attack (Xie et al. 2020).

DBA splits a pixel trigger across several cooperating malicious clients so
no single update carries the whole pattern.  The paper discusses DBA as
related work; here we verify that BaFFLe's prediction-based validation —
which never looks at updates — also fires on the *aggregate* effect of a
coordinated DBA round.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, write_result
from repro.attacks.dba import DistributedBackdoorCoordinator, TriggerPatchClient
from repro.core import (
    BaffleConfig,
    BaffleDefense,
    MisclassificationValidator,
    ValidatorPool,
)
from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_environment
from repro.fl import FLConfig, FederatedSimulation, HonestClient, ScheduledSelector

NUM_ATTACKERS = 3
ATTACK_ROUND = 24
CONFIG = ExperimentConfig(dataset="cifar", client_share=0.90)


def _run(defended: bool):
    env = build_environment(CONFIG, seed=0)
    fl_cfg = FLConfig(
        num_clients=CONFIG.num_clients,
        clients_per_round=CONFIG.clients_per_round,
        local_epochs=CONFIG.local_epochs,
        client_lr=CONFIG.stable_lr,
        global_lr=CONFIG.stable_global_lr,
    )
    flat_dim = env.shards[0].x.shape[1]
    coordinator = DistributedBackdoorCoordinator(
        feature_indices=np.arange(48),  # a 48-feature corner trigger
        trigger_value=1.0,
        target_label=2,
        num_attackers=NUM_ATTACKERS,
    )
    clients = []
    for cid, shard in enumerate(env.shards):
        if cid < NUM_ATTACKERS:
            clients.append(
                TriggerPatchClient(
                    cid, shard, coordinator, attacker_rank=cid,
                    attack_rounds={ATTACK_ROUND},
                    boost=fl_cfg.replacement_boost / NUM_ATTACKERS,
                    poison_ratio=0.4,
                )
            )
        else:
            clients.append(HonestClient(cid, shard))

    defense = None
    if defended:
        pool = ValidatorPool.from_datasets(
            {cid: env.shards[cid] for cid in range(NUM_ATTACKERS, CONFIG.num_clients)}
        )
        defense = BaffleDefense(
            BaffleConfig(lookback=CONFIG.lookback, quorum=CONFIG.quorum,
                         num_validators=CONFIG.num_validators, mode="both",
                         start_round=CONFIG.defense_start),
            pool,
            MisclassificationValidator(env.server_data),
        )
        defense.prime(env.stable_model)

    selector = ScheduledSelector(
        CONFIG.num_clients, CONFIG.clients_per_round,
        {ATTACK_ROUND: list(range(NUM_ATTACKERS))},
    )
    sim = FederatedSimulation(
        env.stable_model.clone(), clients, fl_cfg,
        np.random.default_rng(21), selector=selector, defense=defense,
    )
    records = sim.run(ATTACK_ROUND + 1)
    clean_eval = env.shards[NUM_ATTACKERS]  # an honest shard for trigger eval
    bd = coordinator.backdoor_accuracy(
        sim.global_model, clean_eval, np.random.default_rng(3)
    )
    return records[ATTACK_ROUND], bd


def test_dba_extension(benchmark):
    (undefended_record, bd_nodef), (defended_record, bd_def) = once(
        benchmark, lambda: (_run(defended=False), _run(defended=True))
    )
    text = "\n".join(
        [
            "Extension: coordinated DBA round (3 attackers, split trigger)",
            f"  no defense : trigger accuracy {bd_nodef:.2f} (round accepted)",
            f"  with BaFFLe: trigger accuracy {bd_def:.2f} "
            f"(round {'REJECTED' if not defended_record.accepted else 'accepted'}, "
            f"{defended_record.decision.reject_votes}/"
            f"{defended_record.decision.num_validators} reject votes)",
        ]
    )
    write_result("dba_extension", text)

    assert undefended_record.accepted
    assert bd_nodef > 0.5, "DBA premise broken: trigger should land undefended"
    assert not defended_record.accepted, "BaFFLe should reject the DBA round"
    assert bd_def < 0.3
