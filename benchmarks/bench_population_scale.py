"""Population-scale benchmark: virtual client registry + precision policy.

Measures the two claims behind the registry/precision work:

1. **Scale-independence.**  A federated round over a virtual
   :class:`~repro.fl.registry.ClientRegistry` touches memory and time
   proportional to its *cohort*, never the registered population.  The
   bench registers {1k, 100k, 1M} clients behind an O(1) arithmetic
   factory (real Dirichlet draws at 1M would dominate the measurement;
   the registry code path is identical), runs identical fixed-cohort
   rounds against each size, and reports per-size round throughput as a
   drift-robust *paired* ratio against the 1k baseline — blocks of
   rounds alternate between the two simulations, the ratio is the median
   of per-block (baseline time / row time) ratios, so host throughput
   drift cancels.  Registry construction time and process peak RSS are
   tracked alongside; the eager path (every client materialized up
   front) is timed at 1k only and skipped above that, where its linear
   memory would swamp the host.

2. **Precision policy.**  Under ``dtype_policy("float32")`` the whole
   round loop — parameters, stacked substrate, optimizer state,
   aggregation, store transport — runs in float32 (bit-identical across
   engines, tested in ``tests/fl/test_parallel.py``).  The bench runs
   the same wide-model world under both policies, paired exactly as
   above, and reports the float32 speedup plus the halved model bytes.

Gates: 1M-registry construction in low single-digit seconds; paired
1M/1k round-time ratio within 10% of parity; process peak RSS growth
across the 100k and 1M phases within 10% of the 1k-phase peak (the
monotone ``ru_maxrss`` high-water mark must already be set by the
cohort, not the population); committed float32 models exactly half the
bytes of float64; paired float32 speedup >= 1.2x on the wide world.

Besides the text table, the run emits ``BENCH_population.json`` under
``benchmarks/results/`` — the machine-readable per-row record tracked
across PRs.

Usage::

    python benchmarks/bench_population_scale.py           # full setting
    python benchmarks/bench_population_scale.py --quick   # CI smoke (<1 min)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_population_scale.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_json, write_result  # noqa: E402  (benchmarks/ helper)

from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.registry import ClientFactory, ClientRegistry
from repro.fl.simulation import FederatedSimulation, _peak_rss_kb
from repro.nn.models import make_mlp
from repro.nn.precision import dtype_policy


class ModularShardFactory(ClientFactory):
    """O(1)-construction factory: client ``cid``'s shard is an arithmetic
    stride over one fixed sample pool.

    Stands in for :class:`LazyShardFactory` at populations where a real
    partition draw is infeasible (a 1M-column Dirichlet matrix), while
    exercising the identical registry machinery: ``make`` builds a plain
    :class:`HonestClient` over a fresh ``pool.subset`` view, metadata is
    answered without materializing, and the shard dies at ``end_round``.
    Coprime stride constants spread neighbouring clients across the pool
    so every client sees a distinct (but deterministic) shard.
    """

    def __init__(self, pool, num_clients: int, shard: int) -> None:
        self._pool = pool
        self._num = num_clients
        self._shard = shard
        self._base = np.arange(shard, dtype=np.intp) * 104729

    @property
    def num_clients(self) -> int:
        return self._num

    def make(self, cid: int):
        idx = (cid * 7919 + self._base) % len(self._pool)
        return HonestClient(cid, self._pool.subset(idx))

    def shard_len(self, cid: int) -> int:
        return self._shard


def build_sim(
    pool,
    population: int,
    args: argparse.Namespace,
    *,
    shard: int,
    hidden: tuple[int, ...],
    eager: bool = False,
    seed: int = 1,
):
    factory = ModularShardFactory(pool, population, shard)
    clients = (
        [factory.make(i) for i in range(population)]
        if eager
        else ClientRegistry(factory)
    )
    task = SyntheticCifar()
    model = make_mlp(
        task.flat_dim, task.num_classes, np.random.default_rng(0), hidden=hidden
    )
    config = FLConfig(
        num_clients=population,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=args.batch,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model, clients, config, np.random.default_rng(seed)
    )


def paired_ratio(run_ref, run_row, rounds: int, block: int):
    """Drift-robust paired estimator (see bench_parallel_engine).

    Alternates blocks of rounds between the reference and the row runner;
    returns ``(median per-block ref/row time ratio, row wall-clock)``.
    Ratios of independently timed runs are not comparable on shared hosts
    — every row gets a time-adjacent reference instead.
    """
    ratios: list[float] = []
    elapsed = 0.0
    done = 0
    while done < rounds:
        n = min(block, rounds - done)
        start = time.perf_counter()
        run_ref(n)
        ref_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        run_row(n)
        row_elapsed = time.perf_counter() - start
        ratios.append(ref_elapsed / row_elapsed)
        elapsed += row_elapsed
        done += n
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid] if len(ratios) % 2 else 0.5 * (ratios[mid - 1] + ratios[mid])
    )
    return median, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=8,
                        help="measured rounds per population pairing")
    parser.add_argument("--per-round", type=int, default=8, dest="per_round",
                        help="cohort size (fixed across population sizes)")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch", type=int, default=10)
    parser.add_argument("--shard", type=int, default=64,
                        help="samples per materialized shard (round phases)")
    parser.add_argument("--pool", type=int, default=4096,
                        help="shared sample pool size")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1_000, 100_000, 1_000_000],
                        help="registry population sizes (first = baseline)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting (<1 min)")
    args = parser.parse_args(argv)
    block = 2
    precision_rounds = args.rounds
    if args.quick:
        # Rounds must stay heavy enough that scheduler jitter on a loaded
        # CI box cannot fake a 10% ratio: keep the full-mode shard, trim
        # only the pool and the precision pairing.
        args.pool = 2048
        block = 1
        precision_rounds = 6
    sizes = list(args.sizes)
    baseline = sizes[0]

    failures: list[str] = []
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.pool, rng)

    # ------------------------------------------------------------------
    # Registry construction: O(1) in population; eager is linear.
    # A small shard keeps the (1k-only) eager row's transient allocation
    # from polluting the later peak-RSS phases.
    # ------------------------------------------------------------------
    construction_rows = []
    eager_cap = baseline  # above this the eager build would swamp RAM
    for population in sizes:
        rss_before = _peak_rss_kb()
        start = time.perf_counter()
        registry = ClientRegistry(ModularShardFactory(pool, population, 8))
        registry_s = time.perf_counter() - start
        registry_rss_kb = _peak_rss_kb() - rss_before
        row = {
            "population": population,
            "registry_s": round(registry_s, 6),
            "registry_rss_growth_kb": registry_rss_kb,
            "eager_s": None,
            "eager_rss_growth_kb": None,
        }
        if population <= eager_cap:
            rss_before = _peak_rss_kb()
            start = time.perf_counter()
            eager = [registry[i] for i in range(population)]
            row["eager_s"] = round(time.perf_counter() - start, 6)
            row["eager_rss_growth_kb"] = _peak_rss_kb() - rss_before
            del eager
            registry.end_round()
        construction_rows.append(row)
    largest = sizes[-1]
    largest_s = construction_rows[-1]["registry_s"]
    if largest_s > 5.0:
        failures.append(
            f"{largest}-client registry took {largest_s:.2f}s to construct "
            "(gate: 5s) — construction is no longer population-independent"
        )

    # ------------------------------------------------------------------
    # Equivalence sanity: at a size small enough to materialize, the
    # registry world commits bit-identically to the eager client list.
    # (The full engine x store x policy matrix lives in tests/fl/.)
    # ------------------------------------------------------------------
    sanity_pop = 64
    sim_eager = build_sim(pool, sanity_pop, args, shard=16, hidden=(16,),
                          eager=True)
    sim_virtual = build_sim(pool, sanity_pop, args, shard=16, hidden=(16,))
    sim_eager.run(3)
    sim_virtual.run(3)
    divergence = float(np.max(np.abs(
        sim_eager.global_model.get_flat() - sim_virtual.global_model.get_flat()
    )))
    if divergence != 0.0:
        failures.append(
            f"registry world diverged from eager world ({divergence:.1e}) — "
            "lazy materialization broke the determinism contract"
        )

    # ------------------------------------------------------------------
    # Round scale-independence: identical cohorts against growing
    # registries, paired against the baseline-size simulation.  Sizes run
    # smallest-first so the monotone ru_maxrss high-water mark is set by
    # the baseline phase; any growth the larger phases add is exactly the
    # population-dependent memory the registry is supposed to eliminate.
    # ------------------------------------------------------------------
    hidden = (64,)
    sims = {
        population: build_sim(pool, population, args, shard=args.shard,
                              hidden=hidden, seed=1 + i)
        for i, population in enumerate(sizes)
    }
    ref = build_sim(pool, baseline, args, shard=args.shard, hidden=hidden,
                    seed=999)
    for sim in [ref, *sims.values()]:
        sim.run_round()  # warmup: first materialization, caches
    rss_baseline_kb = 0
    round_rows = []
    for population in sizes:
        sim = sims[population]
        records = []
        ratio, elapsed = paired_ratio(
            lambda n: ref.run(n),
            lambda n: records.extend(sim.run(n)),
            args.rounds,
            block,
        )
        materialized = max(r.materialized_clients for r in records)
        round_rows.append(
            {
                "population": population,
                "rounds_per_s": round(args.rounds / elapsed, 4),
                "paired_time_ratio_vs_baseline": round(1.0 / ratio, 4),
                "materialized_clients_peak": materialized,
                "peak_rss_kb": records[-1].peak_rss_kb,
            }
        )
        if population == baseline:
            rss_baseline_kb = _peak_rss_kb()
        if materialized > args.per_round:
            failures.append(
                f"population {population}: {materialized} clients resident "
                f"in a round (cohort is {args.per_round}) — end_round is not "
                "discarding"
            )
    rss_final_kb = _peak_rss_kb()
    rss_growth = (rss_final_kb - rss_baseline_kb) / rss_baseline_kb
    largest_ratio = round_rows[-1]["paired_time_ratio_vs_baseline"]
    if largest_ratio > 1.10:
        failures.append(
            f"{largest}-client round wall-clock {largest_ratio:.3f}x the "
            f"{baseline}-client baseline (gate: 1.10x) — rounds are not "
            "population-independent"
        )
    if rss_growth > 0.10:
        failures.append(
            f"peak RSS grew {rss_growth:.1%} across the "
            f"{'/'.join(str(s) for s in sizes[1:])} phases (gate: 10% of the "
            f"{baseline}-phase peak {rss_baseline_kb} KiB) — memory is "
            "scaling with the population"
        )

    # ------------------------------------------------------------------
    # Precision policy: the same wide-model world under float64 and
    # float32, paired.  Wide layers put the round in BLAS, where halved
    # operand width is the whole story.
    # ------------------------------------------------------------------
    wide = (256, 256)
    precision_sims = {}
    for policy in ("float64", "float32"):
        with dtype_policy(policy):
            precision_sims[policy] = build_sim(
                pool, baseline, args, shard=args.shard, hidden=wide, seed=7
            )
            precision_sims[policy].run_round()  # warmup under the policy

    def run_policy(policy):
        def run(n):
            with dtype_policy(policy):
                precision_sims[policy].run(n)
        return run

    f32_speedup, f32_elapsed = paired_ratio(
        run_policy("float64"), run_policy("float32"), precision_rounds, block
    )
    flats = {
        policy: sim.global_model.get_flat()
        for policy, sim in precision_sims.items()
    }
    precision_divergence = float(np.max(np.abs(
        flats["float64"] - flats["float32"].astype(np.float64)
    )))
    precision_rows = [
        {
            "policy": policy,
            "model_dtype": str(flats[policy].dtype),
            "model_bytes": int(flats[policy].nbytes),
            "paired_speedup_vs_float64": (
                1.0 if policy == "float64" else round(f32_speedup, 4)
            ),
        }
        for policy in ("float64", "float32")
    ]
    if str(flats["float32"].dtype) != "float32":
        failures.append(
            f"float32 policy committed a {flats['float32'].dtype} model"
        )
    if flats["float32"].nbytes * 2 != flats["float64"].nbytes:
        failures.append(
            "float32 model is not exactly half the float64 bytes "
            f"({flats['float32'].nbytes} vs {flats['float64'].nbytes})"
        )
    f32_floor = 1.2
    if f32_speedup < f32_floor:
        failures.append(
            f"float32 paired speedup {f32_speedup:.3f}x below the "
            f"{f32_floor}x floor on the wide world — the policy is not "
            "buying its precision cost"
        )

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def fmt_pop(population: int) -> str:
        return (
            f"{population // 1_000_000}M" if population >= 1_000_000
            else f"{population // 1_000}k" if population >= 1_000
            else str(population)
        )

    lines = [
        "Population scale: virtual client registry + precision policy",
        f"world: cohort {args.per_round}/round, {args.epochs} local epochs, "
        f"batch={args.batch}, shard={args.shard}, pool={args.pool}, "
        f"hidden={hidden} (precision rows: {wide})",
        f"host: {os.cpu_count()} cpu core(s); {args.rounds} rounds per "
        "pairing after 1 warmup; ratios are medians of paired "
        "adjacent-in-time blocks against the baseline simulation",
        "",
        f"registry construction ({fmt_pop(eager_cap)}-and-under also built "
        "eagerly; above that the eager path is skipped — linear memory):",
        f"{'population':>11} {'registry':>10} {'eager':>10}",
    ]
    for row in construction_rows:
        eager_s = f"{row['eager_s']:.3f}s" if row["eager_s"] is not None else "—"
        lines.append(
            f"{fmt_pop(row['population']):>11} {row['registry_s']:>9.6f}s "
            f"{eager_s:>10}"
        )
    lines += [
        "",
        "fixed-cohort rounds vs registry size:",
        f"{'population':>11} {'rounds/s':>9} {'vs base':>8} "
        f"{'resident':>9} {'peak RSS':>10}",
    ]
    for row in round_rows:
        lines.append(
            f"{fmt_pop(row['population']):>11} {row['rounds_per_s']:9.3f} "
            f"{row['paired_time_ratio_vs_baseline']:7.3f}x "
            f"{row['materialized_clients_peak']:>9} "
            f"{row['peak_rss_kb'] / 1024:9.1f}M"
        )
    lines += [
        f"peak RSS growth across post-baseline phases: {rss_growth:.1%} "
        "(gate: 10%)",
        f"registry-vs-eager committed-weight divergence "
        f"({sanity_pop} clients): {divergence:.1e}",
        "",
        "precision policy (wide world, paired float64 reference):",
        f"{'policy':>8} {'dtype':>8} {'model bytes':>12} {'speedup':>8}",
    ]
    for row in precision_rows:
        lines.append(
            f"{row['policy']:>8} {row['model_dtype']:>8} "
            f"{row['model_bytes']:>12} "
            f"{row['paired_speedup_vs_float64']:7.2f}x"
        )
    lines.append(
        f"float32 vs float64 final-weight divergence: "
        f"{precision_divergence:.1e} (accumulated rounding — float32's own "
        "bit-identity contract holds across engines, see tests/fl/)"
    )
    text = "\n".join(lines)
    write_result("population_scale", text)
    write_json(
        "BENCH_population",
        {
            "benchmark": "population_scale",
            "world": {
                "per_round": args.per_round,
                "epochs": args.epochs,
                "batch": args.batch,
                "shard": args.shard,
                "pool": args.pool,
                "hidden": list(hidden),
                "precision_hidden": list(wide),
                "rounds": args.rounds,
                "precision_rounds": precision_rounds,
                "sizes": sizes,
                "quick": bool(args.quick),
            },
            "construction": construction_rows,
            "rounds": round_rows,
            "peak_rss": {
                "baseline_phase_kb": rss_baseline_kb,
                "final_kb": rss_final_kb,
                "growth_fraction": round(rss_growth, 4),
            },
            "registry_vs_eager_divergence": divergence,
            "precision": precision_rows,
            "float32_vs_float64_divergence": precision_divergence,
        },
    )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
