"""Paper Table II: FN rates against adaptive vs non-adaptive injections.

The adaptive attacker knows the validation method, l, q, and the accepted
history; it rejection-samples candidates until its own run of Algorithm 2
(on its local data) accepts.  The paper's claim: data diversity across
validators still exposes these injections (BaFFLe FN = 0; server-only up
to 0.333).
"""

from __future__ import annotations

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import CIFAR_SPLITS, ExperimentConfig
from repro.experiments.reporting import format_table2
from repro.experiments.runner import run_adaptive_experiment


def _run_all(seeds):
    results = {}
    for split in CIFAR_SPLITS:
        config = ExperimentConfig(
            dataset="cifar", client_share=split, adaptive_max_trials=8
        )
        results[split] = run_adaptive_experiment(config, seeds)
    return results


def test_table2_adaptive(benchmark):
    seeds = bench_seeds()
    results = once(benchmark, lambda: _run_all(seeds))
    text = format_table2(results)
    write_result("table2_adaptive", text)

    for split, result in results.items():
        # Non-adaptive injections are all caught (paper: FN = 0 for C+S).
        assert result.non_adaptive.fn_mean <= 0.1
        # Adaptive injections are still mostly caught (paper: 95-100%).
        assert result.adaptive.fn_mean <= 0.35
