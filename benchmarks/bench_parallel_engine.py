"""Round-throughput benchmark: sequential vs parallel execution engine.

Runs one defended federated world twice — once on the in-process
:class:`SequentialExecutor`, once on a
:class:`ProcessPoolRoundExecutor` — and reports rounds/second for both,
the speedup, and the max absolute weight divergence (which must be 0.0:
the engines commit bit-identical models by construction).

Usage::

    python benchmarks/bench_parallel_engine.py           # full setting
    python benchmarks/bench_parallel_engine.py --quick   # CI smoke (<1 min)
    python benchmarks/bench_parallel_engine.py --workers 8 --rounds 10

Speedup scales with physical cores; on a single-core host the parallel
engine pays process-pool overhead for no gain and the report will say so —
the number to quote comes from a multi-core machine (the acceptance target
is >= 1.5x at 4 workers).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_parallel_engine.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_result  # noqa: E402  (benchmarks/ helper)

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.parallel import RoundExecutor, SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(args: argparse.Namespace, executor: RoundExecutor) -> FederatedSimulation:
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.clients * args.shard, rng)
    parts = iid_partition(len(pool), args.clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, shards[i]) for i in range(args.clients)]
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=args.hidden)

    validator_pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(args.clients)}, min_history=4
    )
    defense = BaffleDefense(
        BaffleConfig(
            lookback=4,
            quorum=max(2, args.validators // 2),
            num_validators=args.validators,
            mode="both",
        ),
        validator_pool,
        MisclassificationValidator(shards[args.clients], min_history=4),
    )
    defense.prime(model)
    config = FLConfig(
        num_clients=args.clients,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=32,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(1),
        defense=defense, executor=executor,
    )


def timed_run(args: argparse.Namespace, executor: RoundExecutor) -> tuple[float, np.ndarray]:
    """Rounds/second over the measured window (after one warmup round)."""
    with executor:
        sim = build_sim(args, executor)
        sim.run_round()  # warmup: process-pool startup, caches, JIT-ish costs
        start = time.perf_counter()
        sim.run(args.rounds)
        elapsed = time.perf_counter() - start
        return args.rounds / elapsed, sim.global_model.get_flat()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel engine")
    parser.add_argument("--rounds", type=int, default=6,
                        help="measured rounds per engine")
    parser.add_argument("--clients", type=int, default=30)
    parser.add_argument("--per-round", type=int, default=10, dest="per_round")
    parser.add_argument("--validators", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--shard", type=int, default=100,
                        help="samples per client shard")
    parser.add_argument("--hidden", type=int, nargs="+", default=[128])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting: tiny world, 2 workers")
    args = parser.parse_args(argv)
    if args.quick:
        args.workers = min(args.workers, 2)
        args.rounds = 2
        args.clients = 8
        args.per_round = 4
        args.validators = 4
        args.shard = 40
        args.hidden = [32]
    args.hidden = tuple(args.hidden)

    seq_rps, seq_flat = timed_run(args, SequentialExecutor())
    par_rps, par_flat = timed_run(args, make_executor(args.workers))
    divergence = float(np.max(np.abs(seq_flat - par_flat)))
    speedup = par_rps / seq_rps

    text = "\n".join([
        "Parallel round engine: sequential vs process-pool throughput",
        f"world: {args.clients} clients ({args.per_round}/round, "
        f"{args.epochs} local epochs, shard={args.shard}), "
        f"{args.validators} validators, hidden={args.hidden}",
        f"host: {os.cpu_count()} cpu core(s); measured over {args.rounds} rounds",
        f"sequential : {seq_rps:7.3f} rounds/s",
        f"parallel   : {par_rps:7.3f} rounds/s  ({args.workers} workers)",
        f"speedup    : {speedup:7.2f}x",
        f"max |seq - par| committed-weight divergence: {divergence:.1e}",
    ])
    write_result("parallel_engine", text)

    if divergence != 0.0:
        print("FAIL: engines diverged — sequential/parallel equivalence broken")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
