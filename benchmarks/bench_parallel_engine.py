"""Round-throughput benchmark: transport paths, execution modes, codecs.

Runs one defended federated world once per engine row —

- ``sequential``: in-process :class:`SequentialExecutor` (no transport);
- ``pool+pipes``: :class:`ProcessPoolRoundExecutor` over an
  :class:`InProcessModelStore`, shipping pickled float64 weight blobs
  through pipes: O(model x (clients + validators x history)) per round;
- ``pool+shm``: the same pool over a :class:`SharedMemoryModelStore`,
  shipping version keys into a shared-memory arena: O(1 new model) per
  round, independent of history length and fan-out width;
- ``pipelined+shm``: the shared-memory pool under the pipelined round
  loop — the server commits optimistically and overlaps round ``r + 1``
  client training with round ``r`` validator votes, taking validation
  latency off the training critical path;
- ``pool+shm+f16`` / ``pool+shm+quant`` / ``pool+shm+topk``: the
  shared-memory pool with a weight-compression codec on the store path
  (:mod:`repro.fl.compression`) — the paper's Sec. VI-D feasibility
  budget assumes ~10x wire compression, and the codec column demonstrates
  the measured reduction —

and reports rounds/second, per-round transport bytes (compressed and
raw), the codec compression ratio, mean acceptance lag, the max absolute
committed-weight divergence against the sequential run, and each row's
final-model accuracy on a held-out set.  Divergence must be 0.0 for every
losslessly transported row (the bit-identical equivalence guarantee);
lossy codec rows report their divergence and accuracy delta instead —
that is the measured cost of the transport reduction.

Fault-injection passes force quorum rejections mid-pipeline and audit the
store afterwards: every version outside the retained history — withdrawn
commits, straggler references, parked evictions, delta-codec parent pins —
must be released (refcount audit; run for the identity codec and for the
parent-pinning ``topk`` codec).

Besides the text table, the run emits ``BENCH_parallel.json`` under
``benchmarks/results/`` — a machine-readable per-row record (wall-clock,
transport bytes, codec ratio, accuracy) tracked across PRs as the perf
trajectory baseline.

Usage::

    python benchmarks/bench_parallel_engine.py           # full setting
    python benchmarks/bench_parallel_engine.py --quick   # CI smoke (<1 min)
    python benchmarks/bench_parallel_engine.py --workers 8 --rounds 10

Speedup scales with physical cores; on a single-core host the parallel
engine pays process-pool overhead for no gain and the report will say so —
the number to quote comes from a multi-core machine (the acceptance target
is >= 1.5x at 4 workers, and pipelined wall-clock <= the synchronous
pool's).  The transport numbers are host-independent, including the codec
ratios (the gate: quantized or topk must cut per-round transport >= 5x
vs the identity codec).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_parallel_engine.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_json, write_result  # noqa: E402  (benchmarks/ helper)

from repro.core.baffle import (
    BaffleConfig,
    BaffleDefense,
    ForcedRejectDefense,
    ValidatorPool,
)
from repro.core.validation import MisclassificationValidator
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.model_store import (
    InProcessModelStore,
    ModelStore,
    SharedMemoryModelStore,
)
from repro.fl.parallel import RoundExecutor, SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(
    args: argparse.Namespace,
    executor: RoundExecutor,
    store: ModelStore,
    reject_rounds: tuple[int, ...] = (),
) -> FederatedSimulation:
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.clients * args.shard, rng)
    parts = iid_partition(len(pool), args.clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, shards[i]) for i in range(args.clients)]
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=args.hidden)

    validator_pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(args.clients)}, min_history=4
    )
    defense_cls = ForcedRejectDefense if reject_rounds else BaffleDefense
    defense_kwargs = {"reject_rounds": reject_rounds} if reject_rounds else {}
    defense = defense_cls(
        BaffleConfig(
            lookback=args.lookback,
            quorum=max(2, args.validators // 2),
            num_validators=args.validators,
            mode="both",
        ),
        validator_pool,
        MisclassificationValidator(shards[args.clients], min_history=4),
        **defense_kwargs,
    )
    defense.prime(model)
    config = FLConfig(
        num_clients=args.clients,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=32,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(1),
        defense=defense, executor=executor, model_store=store,
    )


def timed_run(
    args: argparse.Namespace, executor: RoundExecutor, store: ModelStore
) -> dict:
    """One engine row: wall-clock, committed weights, transport, codec."""
    with store, executor:
        sim = build_sim(args, executor, store)
        sim.run_round()  # warmup: process-pool startup, caches, JIT-ish costs
        start = time.perf_counter()
        records = sim.run(args.rounds)
        elapsed = time.perf_counter() - start
        return {
            "rounds_per_s": args.rounds / elapsed,
            "flat": sim.global_model.get_flat(),
            "transport": float(np.mean([r.transport_bytes for r in records])),
            "raw_transport": float(
                np.mean([r.raw_transport_bytes for r in records])
            ),
            "lag": float(np.mean([r.validation_lag for r in records])),
            "codec": store.codec.name,
            "lossless": store.codec.lossless,
        }


def rollback_audit(args: argparse.Namespace, codec: str = "identity") -> list[str]:
    """Force rollbacks mid-pipeline; audit store refcounts afterwards.

    Returns failure lines (empty = pass): after a pipelined run containing
    forced quorum rejections, the store must hold exactly the retained
    history versions — plus, for a delta codec, the parent versions those
    history entries transitively pin — and nothing else: no withdrawn
    commit, straggler reference, staged profile or parked eviction may
    leak.  Closing the store must then unlink every ``/dev/shm`` segment,
    including pinned parents (the codec leak gate).
    """
    reject_rounds = (2, 4)
    store = SharedMemoryModelStore(codec=codec)
    failures: list[str] = []
    label = f"rollback audit [{codec}]"
    with store:
        executor = make_executor(
            args.workers, store=store, mode="pipelined",
            pipeline_depth=args.pipeline_depth,
        )
        with executor:
            sim = build_sim(args, executor, store, reject_rounds=reject_rounds)
            records = sim.run(max(6, args.rounds))
            replays = sum(r.rollback_count for r in records)
            rejected = sum(1 for r in records if not r.accepted)
            # Depth 0 resolves every round before a successor builds on it,
            # so rejections legitimately cause no replays there.
            if replays == 0 and args.pipeline_depth > 0:
                failures.append(
                    f"{label}: forced rejections triggered no replays"
                )
            executor.close()  # drops the executor's held global reference
            history_versions = sim.defense.history.versions()
            # A live version is legitimate iff the history retains it or a
            # retained delta segment transitively pins it as a parent.
            allowed = set(history_versions)
            frontier = list(history_versions)
            while frontier:
                parent = store._parents.get(frontier.pop())
                if parent is not None and parent not in allowed:
                    allowed.add(parent)
                    frontier.append(parent)
            live = store.versions()
            if set(live) != allowed:
                failures.append(
                    f"{label}: leaked store versions {sorted(set(live) - allowed)}"
                    f" (live {live} vs history+parents {sorted(allowed)})"
                )
            pins = {v: 0 for v in live}
            for child, parent in store._parents.items():
                if child in pins and parent in pins:
                    pins[parent] += 1
            # Expected refcounts: history entries hold one reference each;
            # parent-only versions (evicted from the history but pinned by
            # a live delta child) are held by their pins alone — anything
            # else is a leaked reference, even if the version set matches.
            history_set = set(history_versions)
            over_referenced = [
                v
                for v in live
                if store.refcount(v)
                != (1 if v in history_set else 0) + pins.get(v, 0)
            ]
            if over_referenced:
                failures.append(
                    f"{label}: dangling references on {over_referenced}"
                )
            if sim.defense.profile_table.staged_count:
                failures.append(f"{label}: staged profiles leaked")
    leftovers = [
        f for f in (os.listdir("/dev/shm") if os.path.isdir("/dev/shm") else [])
        if f.startswith(store.name_prefix)
    ]
    if leftovers:
        failures.append(f"{label}: /dev/shm segments survived close: {leftovers}")
    if not failures:
        print(
            f"{label}: {rejected} forced rejections, {replays} round "
            "replays, store clean (refcount + segment audit passed)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel engines")
    parser.add_argument("--rounds", type=int, default=6,
                        help="measured rounds per engine")
    parser.add_argument("--clients", type=int, default=30)
    parser.add_argument("--per-round", type=int, default=10, dest="per_round")
    parser.add_argument("--validators", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--lookback", type=int, default=4,
                        help="defense look-back window (history = lookback+1 "
                             "models; stresses pipe transport, not shm)")
    parser.add_argument("--shard", type=int, default=100,
                        help="samples per client shard")
    parser.add_argument("--hidden", type=int, nargs="+", default=[128])
    parser.add_argument("--pipeline-depth", type=int, default=2,
                        dest="pipeline_depth",
                        help="speculation depth of the pipelined engine")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting: tiny world, 2 workers")
    args = parser.parse_args(argv)
    if args.quick:
        args.workers = min(args.workers, 2)
        args.rounds = 2
        args.clients = 8
        args.per_round = 4
        args.validators = 4
        args.shard = 40
        args.hidden = [32]
    args.hidden = tuple(args.hidden)

    #: engine row -> (store codec, executor mode); codec rows reuse the
    #: synchronous shared-memory pool so the codec is the only variable.
    ROWS = {
        "sequential": ("identity", "sequential"),
        "pool+pipes": ("identity", "sync"),
        "pool+shm": ("identity", "sync"),
        "pipelined+shm": ("identity", "pipelined"),
        "pool+shm+f16": ("float16", "sync"),
        "pool+shm+quant": ("quantized", "sync"),
        "pool+shm+topk": ("topk", "sync"),
    }

    def store_for(name):
        codec = ROWS[name][0]
        return (
            InProcessModelStore(codec=codec)
            if name in ("sequential", "pool+pipes")
            else SharedMemoryModelStore(codec=codec)
        )

    def executor_for(name, store):
        mode = ROWS[name][1]
        if mode == "sequential":
            executor = SequentialExecutor()
            executor.bind(store=store)
            return executor
        return make_executor(
            args.workers, store=store, mode=mode,
            pipeline_depth=args.pipeline_depth,
        )

    results = {}
    for name in ROWS:
        store = store_for(name)
        results[name] = timed_run(args, executor_for(name, store), store)
    seq = results["sequential"]
    seq_rps, seq_flat = seq["rounds_per_s"], seq["flat"]
    model_bytes = seq_flat.nbytes

    # Held-out accuracy: the measured cost of lossy transport (lossless
    # rows must match the sequential figure exactly).
    eval_task = SyntheticCifar()
    eval_data = eval_task.sample(500, np.random.default_rng(999))
    template = make_mlp(
        eval_task.flat_dim, eval_task.num_classes,
        np.random.default_rng(0), hidden=args.hidden,
    )

    def accuracy_of(flat: np.ndarray) -> float:
        template.set_flat(flat)
        return float((template.predict(eval_data.x) == eval_data.y).mean())

    lines = [
        "Parallel round engine: transport paths, execution modes, codecs",
        f"world: {args.clients} clients ({args.per_round}/round, "
        f"{args.epochs} local epochs, shard={args.shard}), "
        f"{args.validators} validators, lookback={args.lookback}, "
        f"hidden={args.hidden}, pipeline_depth={args.pipeline_depth}",
        f"host: {os.cpu_count()} cpu core(s); measured over {args.rounds} "
        f"rounds after 1 warmup; model = {model_bytes} bytes (float64)",
        f"{'engine':<15} {'codec':>9} {'rounds/s':>9} {'speedup':>8} "
        f"{'transport B/rd':>15} {'ratio':>6} {'mean lag':>9} "
        f"{'divergence':>11} {'acc':>6}",
    ]
    seq_acc = accuracy_of(seq_flat)
    json_rows = []
    divergence = 0.0
    for name, row in results.items():
        row_divergence = float(np.max(np.abs(seq_flat - row["flat"])))
        # Only identity-codec rows enter the zero-divergence gate: float16
        # runs are bit-identical to *each other*, not to the identity
        # baseline (the canonicalized trajectory differs), and lossy rows
        # report divergence as their measured cost.
        if row["codec"] == "identity":
            divergence = max(divergence, row_divergence)
        ratio = (
            row["raw_transport"] / row["transport"] if row["transport"] else 1.0
        )
        acc = accuracy_of(row["flat"])
        lines.append(
            f"{name:<15} {row['codec']:>9} {row['rounds_per_s']:9.3f} "
            f"{row['rounds_per_s'] / seq_rps:7.2f}x {row['transport']:15.1f} "
            f"{ratio:5.1f}x {row['lag']:9.2f} {row_divergence:11.1e} "
            f"{acc:6.3f}"
        )
        json_rows.append(
            {
                "engine": name,
                "codec": row["codec"],
                "lossless": row["lossless"],
                "rounds_per_s": round(row["rounds_per_s"], 4),
                "speedup_vs_sequential": round(
                    row["rounds_per_s"] / seq_rps, 4
                ),
                "transport_bytes_per_round": round(row["transport"], 1),
                "raw_bytes_per_round": round(row["raw_transport"], 1),
                "compression_ratio": round(ratio, 3),
                "mean_acceptance_lag": round(row["lag"], 3),
                "weight_divergence_vs_sequential": row_divergence,
                "accuracy": round(acc, 4),
                "accuracy_delta_vs_sequential": round(acc - seq_acc, 4),
            }
        )
    lines.append(
        f"max |seq - engine| committed-weight divergence "
        f"(identity-codec rows): {divergence:.1e}"
    )
    shm_transport = results["pool+shm"]["transport"]
    sync_rps = results["pool+shm"]["rounds_per_s"]
    pipelined_rps = results["pipelined+shm"]["rounds_per_s"]
    best_codec_row = min(
        ("pool+shm+quant", "pool+shm+topk"),
        key=lambda name: results[name]["transport"],
    )
    codec_reduction = (
        shm_transport / results[best_codec_row]["transport"]
        if results[best_codec_row]["transport"]
        else float("inf")
    )
    lines.append(
        "pool+shm ships "
        f"{shm_transport / model_bytes:.2f} models/round regardless of "
        "history length and fan-out width (O(1) new-model transport); "
        "pool+pipes re-ships candidate + history per validator and the "
        "global model per client."
    )
    lines.append(
        f"pipelined vs sync pool wall-clock: {pipelined_rps / sync_rps:.2f}x "
        f"(validation overlapped with next-round training, mean acceptance "
        f"lag {results['pipelined+shm']['lag']:.2f} rounds)"
    )
    lines.append(
        f"codec transport reduction vs identity shm: {codec_reduction:.1f}x "
        f"via {best_codec_row} (paper Sec. VI-D budgets ~10x; gate >= 5x)"
    )
    text = "\n".join(lines)
    write_result("parallel_engine", text)
    write_json(
        "BENCH_parallel",
        {
            "benchmark": "parallel_engine",
            "world": {
                "clients": args.clients,
                "per_round": args.per_round,
                "validators": args.validators,
                "epochs": args.epochs,
                "shard": args.shard,
                "lookback": args.lookback,
                "hidden": list(args.hidden),
                "pipeline_depth": args.pipeline_depth,
                "rounds": args.rounds,
                "workers": args.workers,
                "quick": bool(args.quick),
                "model_bytes": int(model_bytes),
            },
            "rows": json_rows,
            "codec_transport_reduction_vs_identity": round(codec_reduction, 3),
        },
    )

    failures = rollback_audit(args, codec="identity")
    failures += rollback_audit(args, codec="topk")
    if divergence != 0.0:
        failures.append(
            "engines diverged — sequential/parallel/pipelined equivalence "
            "broken"
        )
    if shm_transport > model_bytes + 4096:
        failures.append(
            "shared-memory transport exceeds one model per round "
            f"({shm_transport:.0f} B vs model {model_bytes} B)"
        )
    if codec_reduction < 5.0:
        failures.append(
            f"codec transport reduction {codec_reduction:.2f}x below the "
            "5x acceptance floor (paper budget ~10x)"
        )
    # Wall-clock gate: pipelined must not lose to the synchronous pool in
    # the default bench world.  Skipped under --quick (a tiny world on a
    # loaded CI box is noise) and on single-core hosts, where there is no
    # idle worker to overlap validation into — the same caveat as the
    # pool-speedup target; the gate binds on multi-core machines.
    if args.quick or (os.cpu_count() or 1) < 2:
        print(
            "note: pipelined wall-clock gate skipped "
            f"(quick={args.quick}, cpus={os.cpu_count()})"
        )
    elif pipelined_rps < 0.95 * sync_rps:
        failures.append(
            f"pipelined wall-clock regressed vs sync pool "
            f"({pipelined_rps:.3f} vs {sync_rps:.3f} rounds/s)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
