"""Round-throughput benchmark: transport paths of the execution engine.

Runs one defended federated world three times —

- ``sequential``: in-process :class:`SequentialExecutor` (no transport);
- ``pool+pipes``: :class:`ProcessPoolRoundExecutor` over an
  :class:`InProcessModelStore`, shipping pickled float64 weight blobs
  through pipes: O(model x (clients + validators x history)) per round;
- ``pool+shm``: the same pool over a :class:`SharedMemoryModelStore`,
  shipping version keys into a shared-memory arena: O(1 new model) per
  round, independent of history length and fan-out width —

and reports rounds/second, per-round transport bytes, and the max absolute
committed-weight divergence against the sequential run (which must be 0.0:
all engine/store combinations commit bit-identical models by construction).

Usage::

    python benchmarks/bench_parallel_engine.py           # full setting
    python benchmarks/bench_parallel_engine.py --quick   # CI smoke (<1 min)
    python benchmarks/bench_parallel_engine.py --workers 8 --rounds 10

Speedup scales with physical cores; on a single-core host the parallel
engine pays process-pool overhead for no gain and the report will say so —
the number to quote comes from a multi-core machine (the acceptance target
is >= 1.5x at 4 workers).  The transport numbers are host-independent.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_parallel_engine.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_result  # noqa: E402  (benchmarks/ helper)

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.model_store import (
    InProcessModelStore,
    ModelStore,
    SharedMemoryModelStore,
)
from repro.fl.parallel import RoundExecutor, SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(
    args: argparse.Namespace, executor: RoundExecutor, store: ModelStore
) -> FederatedSimulation:
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.clients * args.shard, rng)
    parts = iid_partition(len(pool), args.clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, shards[i]) for i in range(args.clients)]
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=args.hidden)

    validator_pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(args.clients)}, min_history=4
    )
    defense = BaffleDefense(
        BaffleConfig(
            lookback=args.lookback,
            quorum=max(2, args.validators // 2),
            num_validators=args.validators,
            mode="both",
        ),
        validator_pool,
        MisclassificationValidator(shards[args.clients], min_history=4),
    )
    defense.prime(model)
    config = FLConfig(
        num_clients=args.clients,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=32,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(1),
        defense=defense, executor=executor, model_store=store,
    )


def timed_run(
    args: argparse.Namespace, executor: RoundExecutor, store: ModelStore
) -> tuple[float, np.ndarray, float]:
    """(rounds/s, committed weights, mean transport bytes/round), after warmup."""
    with store, executor:
        sim = build_sim(args, executor, store)
        sim.run_round()  # warmup: process-pool startup, caches, JIT-ish costs
        start = time.perf_counter()
        records = sim.run(args.rounds)
        elapsed = time.perf_counter() - start
        transport = float(np.mean([r.transport_bytes for r in records]))
        return args.rounds / elapsed, sim.global_model.get_flat(), transport


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel engines")
    parser.add_argument("--rounds", type=int, default=6,
                        help="measured rounds per engine")
    parser.add_argument("--clients", type=int, default=30)
    parser.add_argument("--per-round", type=int, default=10, dest="per_round")
    parser.add_argument("--validators", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--lookback", type=int, default=4,
                        help="defense look-back window (history = lookback+1 "
                             "models; stresses pipe transport, not shm)")
    parser.add_argument("--shard", type=int, default=100,
                        help="samples per client shard")
    parser.add_argument("--hidden", type=int, nargs="+", default=[128])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting: tiny world, 2 workers")
    args = parser.parse_args(argv)
    if args.quick:
        args.workers = min(args.workers, 2)
        args.rounds = 2
        args.clients = 8
        args.per_round = 4
        args.validators = 4
        args.shard = 40
        args.hidden = [32]
    args.hidden = tuple(args.hidden)

    engines = [
        ("sequential", lambda: SequentialExecutor(), InProcessModelStore),
        ("pool+pipes", lambda: make_executor(args.workers), InProcessModelStore),
        ("pool+shm", lambda: make_executor(args.workers), SharedMemoryModelStore),
    ]
    results = {
        name: timed_run(args, make_exec(), store_cls())
        for name, make_exec, store_cls in engines
    }
    seq_rps, seq_flat, _ = results["sequential"]
    model_bytes = seq_flat.nbytes

    lines = [
        "Parallel round engine: transport paths, throughput and equivalence",
        f"world: {args.clients} clients ({args.per_round}/round, "
        f"{args.epochs} local epochs, shard={args.shard}), "
        f"{args.validators} validators, lookback={args.lookback}, "
        f"hidden={args.hidden}",
        f"host: {os.cpu_count()} cpu core(s); measured over {args.rounds} "
        f"rounds after 1 warmup; model = {model_bytes} bytes (float64)",
        f"{'engine':<11} {'rounds/s':>9} {'speedup':>8} "
        f"{'transport B/round':>18} {'models/round':>13}",
    ]
    divergence = 0.0
    for name, (rps, flat, transport) in results.items():
        divergence = max(divergence, float(np.max(np.abs(seq_flat - flat))))
        lines.append(
            f"{name:<11} {rps:9.3f} {rps / seq_rps:7.2f}x "
            f"{transport:18.1f} {transport / model_bytes:13.2f}"
        )
    lines.append(
        f"max |seq - engine| committed-weight divergence: {divergence:.1e}"
    )
    shm_transport = results["pool+shm"][2]
    lines.append(
        "pool+shm ships "
        f"{shm_transport / model_bytes:.2f} models/round regardless of "
        "history length and fan-out width (O(1) new-model transport); "
        "pool+pipes re-ships candidate + history per validator and the "
        "global model per client."
    )
    text = "\n".join(lines)
    write_result("parallel_engine", text)

    if divergence != 0.0:
        print("FAIL: engines diverged — sequential/parallel equivalence broken")
        return 1
    if shm_transport > model_bytes + 4096:
        print(
            "FAIL: shared-memory transport exceeds one model per round "
            f"({shm_transport:.0f} B vs model {model_bytes} B)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
