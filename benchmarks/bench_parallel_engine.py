"""Round-throughput benchmark: transport paths and execution modes.

Runs one defended federated world four times —

- ``sequential``: in-process :class:`SequentialExecutor` (no transport);
- ``pool+pipes``: :class:`ProcessPoolRoundExecutor` over an
  :class:`InProcessModelStore`, shipping pickled float64 weight blobs
  through pipes: O(model x (clients + validators x history)) per round;
- ``pool+shm``: the same pool over a :class:`SharedMemoryModelStore`,
  shipping version keys into a shared-memory arena: O(1 new model) per
  round, independent of history length and fan-out width;
- ``pipelined+shm``: the shared-memory pool under the pipelined round
  loop — the server commits optimistically and overlaps round ``r + 1``
  client training with round ``r`` validator votes, taking validation
  latency off the training critical path —

and reports rounds/second, per-round transport bytes, mean acceptance lag
(rounds between aggregation and quorum resolution), and the max absolute
committed-weight divergence against the sequential run (which must be 0.0:
all engine/store/mode combinations commit bit-identical models by
construction — including the pipelined engine, whose rollbacks replay).

A final fault-injection pass forces quorum rejections mid-pipeline and
audits the store afterwards: every version outside the retained history —
withdrawn commits, straggler references, parked evictions — must be
released (refcount audit).

Usage::

    python benchmarks/bench_parallel_engine.py           # full setting
    python benchmarks/bench_parallel_engine.py --quick   # CI smoke (<1 min)
    python benchmarks/bench_parallel_engine.py --workers 8 --rounds 10

Speedup scales with physical cores; on a single-core host the parallel
engine pays process-pool overhead for no gain and the report will say so —
the number to quote comes from a multi-core machine (the acceptance target
is >= 1.5x at 4 workers, and pipelined wall-clock <= the synchronous
pool's).  The transport numbers are host-independent.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_parallel_engine.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_result  # noqa: E402  (benchmarks/ helper)

from repro.core.baffle import (
    BaffleConfig,
    BaffleDefense,
    ForcedRejectDefense,
    ValidatorPool,
)
from repro.core.validation import MisclassificationValidator
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.model_store import (
    InProcessModelStore,
    ModelStore,
    SharedMemoryModelStore,
)
from repro.fl.parallel import RoundExecutor, SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(
    args: argparse.Namespace,
    executor: RoundExecutor,
    store: ModelStore,
    reject_rounds: tuple[int, ...] = (),
) -> FederatedSimulation:
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.clients * args.shard, rng)
    parts = iid_partition(len(pool), args.clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, shards[i]) for i in range(args.clients)]
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=args.hidden)

    validator_pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(args.clients)}, min_history=4
    )
    defense_cls = ForcedRejectDefense if reject_rounds else BaffleDefense
    defense_kwargs = {"reject_rounds": reject_rounds} if reject_rounds else {}
    defense = defense_cls(
        BaffleConfig(
            lookback=args.lookback,
            quorum=max(2, args.validators // 2),
            num_validators=args.validators,
            mode="both",
        ),
        validator_pool,
        MisclassificationValidator(shards[args.clients], min_history=4),
        **defense_kwargs,
    )
    defense.prime(model)
    config = FLConfig(
        num_clients=args.clients,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=32,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(1),
        defense=defense, executor=executor, model_store=store,
    )


def timed_run(
    args: argparse.Namespace, executor: RoundExecutor, store: ModelStore
) -> tuple[float, np.ndarray, float, float]:
    """(rounds/s, committed weights, transport B/round, mean acceptance lag)."""
    with store, executor:
        sim = build_sim(args, executor, store)
        sim.run_round()  # warmup: process-pool startup, caches, JIT-ish costs
        start = time.perf_counter()
        records = sim.run(args.rounds)
        elapsed = time.perf_counter() - start
        transport = float(np.mean([r.transport_bytes for r in records]))
        lag = float(np.mean([r.validation_lag for r in records]))
        return args.rounds / elapsed, sim.global_model.get_flat(), transport, lag


def rollback_audit(args: argparse.Namespace) -> list[str]:
    """Force rollbacks mid-pipeline; audit store refcounts afterwards.

    Returns failure lines (empty = pass): after a pipelined run containing
    forced quorum rejections, the store must hold exactly the retained
    history versions, each at refcount 1 — no withdrawn commit, straggler
    reference, staged profile or parked eviction may leak.
    """
    reject_rounds = (2, 4)
    store = SharedMemoryModelStore()
    failures: list[str] = []
    with store:
        executor = make_executor(
            args.workers, store=store, mode="pipelined",
            pipeline_depth=args.pipeline_depth,
        )
        with executor:
            sim = build_sim(args, executor, store, reject_rounds=reject_rounds)
            records = sim.run(max(6, args.rounds))
            replays = sum(r.rollback_count for r in records)
            rejected = sum(1 for r in records if not r.accepted)
            # Depth 0 resolves every round before a successor builds on it,
            # so rejections legitimately cause no replays there.
            if replays == 0 and args.pipeline_depth > 0:
                failures.append(
                    "rollback audit: forced rejections triggered no replays"
                )
            executor.close()  # drops the executor's held global reference
            history_versions = sim.defense.history.versions()
            live = store.versions()
            if live != history_versions:
                failures.append(
                    f"rollback audit: leaked store versions {live} vs "
                    f"history {history_versions}"
                )
            over_referenced = [
                v for v in history_versions if store.refcount(v) != 1
            ]
            if over_referenced:
                failures.append(
                    f"rollback audit: dangling references on {over_referenced}"
                )
            if sim.defense.profile_table.staged_count:
                failures.append("rollback audit: staged profiles leaked")
    if not failures:
        print(
            f"rollback audit: {rejected} forced rejections, {replays} round "
            "replays, store clean (refcount audit passed)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel engines")
    parser.add_argument("--rounds", type=int, default=6,
                        help="measured rounds per engine")
    parser.add_argument("--clients", type=int, default=30)
    parser.add_argument("--per-round", type=int, default=10, dest="per_round")
    parser.add_argument("--validators", type=int, default=10)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--lookback", type=int, default=4,
                        help="defense look-back window (history = lookback+1 "
                             "models; stresses pipe transport, not shm)")
    parser.add_argument("--shard", type=int, default=100,
                        help="samples per client shard")
    parser.add_argument("--hidden", type=int, nargs="+", default=[128])
    parser.add_argument("--pipeline-depth", type=int, default=2,
                        dest="pipeline_depth",
                        help="speculation depth of the pipelined engine")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting: tiny world, 2 workers")
    args = parser.parse_args(argv)
    if args.quick:
        args.workers = min(args.workers, 2)
        args.rounds = 2
        args.clients = 8
        args.per_round = 4
        args.validators = 4
        args.shard = 40
        args.hidden = [32]
    args.hidden = tuple(args.hidden)

    def store_for(name):
        return (
            InProcessModelStore()
            if name in ("sequential", "pool+pipes")
            else SharedMemoryModelStore()
        )

    def executor_for(name, store):
        if name == "sequential":
            return SequentialExecutor()
        mode = "pipelined" if name.startswith("pipelined") else "sync"
        return make_executor(
            args.workers, store=store, mode=mode,
            pipeline_depth=args.pipeline_depth,
        )

    results = {}
    for name in ("sequential", "pool+pipes", "pool+shm", "pipelined+shm"):
        store = store_for(name)
        results[name] = timed_run(args, executor_for(name, store), store)
    seq_rps, seq_flat, _, _ = results["sequential"]
    model_bytes = seq_flat.nbytes

    lines = [
        "Parallel round engine: transport paths, execution modes, equivalence",
        f"world: {args.clients} clients ({args.per_round}/round, "
        f"{args.epochs} local epochs, shard={args.shard}), "
        f"{args.validators} validators, lookback={args.lookback}, "
        f"hidden={args.hidden}, pipeline_depth={args.pipeline_depth}",
        f"host: {os.cpu_count()} cpu core(s); measured over {args.rounds} "
        f"rounds after 1 warmup; model = {model_bytes} bytes (float64)",
        f"{'engine':<14} {'rounds/s':>9} {'speedup':>8} "
        f"{'transport B/round':>18} {'models/round':>13} {'mean lag':>9}",
    ]
    divergence = 0.0
    for name, (rps, flat, transport, lag) in results.items():
        divergence = max(divergence, float(np.max(np.abs(seq_flat - flat))))
        lines.append(
            f"{name:<14} {rps:9.3f} {rps / seq_rps:7.2f}x "
            f"{transport:18.1f} {transport / model_bytes:13.2f} {lag:9.2f}"
        )
    lines.append(
        f"max |seq - engine| committed-weight divergence: {divergence:.1e}"
    )
    shm_transport = results["pool+shm"][2]
    sync_rps = results["pool+shm"][0]
    pipelined_rps = results["pipelined+shm"][0]
    lines.append(
        "pool+shm ships "
        f"{shm_transport / model_bytes:.2f} models/round regardless of "
        "history length and fan-out width (O(1) new-model transport); "
        "pool+pipes re-ships candidate + history per validator and the "
        "global model per client."
    )
    lines.append(
        f"pipelined vs sync pool wall-clock: {pipelined_rps / sync_rps:.2f}x "
        f"(validation overlapped with next-round training, mean acceptance "
        f"lag {results['pipelined+shm'][3]:.2f} rounds)"
    )
    text = "\n".join(lines)
    write_result("parallel_engine", text)

    failures = rollback_audit(args)
    if divergence != 0.0:
        failures.append(
            "engines diverged — sequential/parallel/pipelined equivalence "
            "broken"
        )
    if shm_transport > model_bytes + 4096:
        failures.append(
            "shared-memory transport exceeds one model per round "
            f"({shm_transport:.0f} B vs model {model_bytes} B)"
        )
    # Wall-clock gate: pipelined must not lose to the synchronous pool in
    # the default bench world.  Skipped under --quick (a tiny world on a
    # loaded CI box is noise) and on single-core hosts, where there is no
    # idle worker to overlap validation into — the same caveat as the
    # pool-speedup target; the gate binds on multi-core machines.
    if args.quick or (os.cpu_count() or 1) < 2:
        print(
            "note: pipelined wall-clock gate skipped "
            f"(quick={args.quick}, cpus={os.cpu_count()})"
        )
    elif pipelined_rps < 0.95 * sync_rps:
        failures.append(
            f"pipelined wall-clock regressed vs sync pool "
            f"({pipelined_rps:.3f} vs {sync_rps:.3f} rounds/s)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
