"""Round-throughput benchmark: transport paths, execution modes, codecs.

Runs one defended federated world once per engine row —

- ``sequential``: in-process :class:`SequentialExecutor` (no transport);
- ``thread``: :class:`ThreadPoolRoundExecutor` over an
  :class:`InProcessModelStore` — zero IPC, zero transport; parallel
  speedup comes from full-cohort stacked training (one vectorized pass
  over every eligible client) plus thread-overlapped validation;
- ``pool+pipes``: :class:`ProcessPoolRoundExecutor` over an
  :class:`InProcessModelStore`, shipping pickled float64 weight blobs
  through pipes: O(model x (clients + validators x history)) per round;
- ``pool+shm``: the same pool over a :class:`SharedMemoryModelStore`,
  shipping version keys into a shared-memory arena: O(1 new model) per
  round, independent of history length and fan-out width;
- ``pipelined+shm``: the shared-memory pool under the pipelined round
  loop — the server commits optimistically and overlaps round ``r + 1``
  client training with round ``r`` validator votes, taking validation
  latency off the training critical path;
- ``pool+shm+f16`` / ``pool+shm+quant`` / ``pool+shm+topk``: the
  shared-memory pool with a weight-compression codec on the store path
  (:mod:`repro.fl.compression`) — the paper's Sec. VI-D feasibility
  budget assumes ~10x wire compression, and the codec column demonstrates
  the measured reduction;
- ``thread+wN`` / ``pool+shm+wN``: the same engines at half the worker
  count, demonstrating that the paired speedup scales with workers —

and reports rounds/second, per-round transport bytes (compressed and
raw), the codec compression ratio, mean acceptance lag, the max absolute
committed-weight divergence against the sequential run, and each row's
final-model accuracy on a held-out set.  Divergence must be 0.0 for every
losslessly transported row (the bit-identical equivalence guarantee);
lossy codec rows report their divergence and accuracy delta instead —
that is the measured cost of the transport reduction.

Fault-injection passes force quorum rejections mid-pipeline and audit the
store afterwards: every version outside the retained history — withdrawn
commits, straggler references, parked evictions, delta-codec parent pins —
must be released (refcount audit; run for the identity codec and for the
parent-pinning ``topk`` codec).

Besides the text table, the run emits ``BENCH_parallel.json`` under
``benchmarks/results/`` — a machine-readable per-row record (wall-clock,
transport bytes, codec ratio, accuracy) tracked across PRs as the perf
trajectory baseline.

Usage::

    python benchmarks/bench_parallel_engine.py           # full setting
    python benchmarks/bench_parallel_engine.py --quick   # CI smoke (<1 min)
    python benchmarks/bench_parallel_engine.py --workers 8 --rounds 10

Speedups are measured with a drift-robust paired estimator: each row runs
alongside a private sequential reference simulation, alternating blocks of
rounds (block size = pipeline depth, so pipelined rows amortize their
drain), and ``speedup_vs_sequential`` is the median of the per-block
(reference time / row time) ratios.  Ratios of independently timed runs
are NOT comparable on shared hosts — throughput drifts 1.5x+ over tens of
seconds — which is why every row carries its own time-adjacent reference.

The default world is the FedAvg regime (local batch 10, wide fan-out):
stacked cohort training amortizes per-step Python overhead across models,
so the engines win even on a single core.  Gates: ``pool+shm`` paired
speedup >= 1.0x always; ``thread`` >= 1.2x in the full setting (>= 1.0x
under ``--quick``); ``pipelined+shm`` >= 0.95x the synchronous pool's
speedup (full setting, >= 2 cores); divergence 0.0 for every lossless
row.  The transport numbers are host-independent, including the codec
ratios (the gate: quantized or topk must cut per-round transport >= 5x
vs the identity codec).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

# Standalone invocation support: `python benchmarks/bench_parallel_engine.py`
# puts benchmarks/ on sys.path (for _common) but not the src layout.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
from _common import write_json, write_result  # noqa: E402  (benchmarks/ helper)

from repro.core.baffle import (
    BaffleConfig,
    BaffleDefense,
    ForcedRejectDefense,
    ValidatorPool,
)
from repro.core.validation import MisclassificationValidator
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.model_store import (
    InProcessModelStore,
    ModelStore,
    SharedMemoryModelStore,
)
from repro.fl.parallel import RoundExecutor, SequentialExecutor, make_executor
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(
    args: argparse.Namespace,
    executor: RoundExecutor,
    store: ModelStore,
    reject_rounds: tuple[int, ...] = (),
    tracer=None,
) -> FederatedSimulation:
    rng = np.random.default_rng(0)
    task = SyntheticCifar()
    pool = task.sample(args.clients * args.shard, rng)
    parts = iid_partition(len(pool), args.clients + 1, rng)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, shards[i]) for i in range(args.clients)]
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=args.hidden)

    validator_pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(args.clients)}, min_history=4
    )
    defense_cls = ForcedRejectDefense if reject_rounds else BaffleDefense
    defense_kwargs = {"reject_rounds": reject_rounds} if reject_rounds else {}
    defense = defense_cls(
        BaffleConfig(
            lookback=args.lookback,
            quorum=max(2, args.validators // 2),
            num_validators=args.validators,
            mode="both",
        ),
        validator_pool,
        MisclassificationValidator(shards[args.clients], min_history=4),
        **defense_kwargs,
    )
    defense.prime(model)
    config = FLConfig(
        num_clients=args.clients,
        clients_per_round=args.per_round,
        local_epochs=args.epochs,
        batch_size=args.batch,
        client_lr=0.05,
    )
    return FederatedSimulation(
        model.clone(), clients, config, np.random.default_rng(1),
        defense=defense, executor=executor, model_store=store, tracer=tracer,
    )


def timed_run(
    args: argparse.Namespace, executor: RoundExecutor, store: ModelStore
) -> dict:
    """One engine row: wall-clock, committed weights, transport, codec.

    Speedup is measured *paired*: a private sequential reference simulation
    runs the same world, and the row and its reference alternate in small
    blocks of rounds.  Each block yields one reference/row wall-clock
    ratio from two adjacent-in-time measurements, and the row's speedup is
    the median of those ratios.  On a shared host whose available
    throughput drifts on the scale of seconds this is the only estimator
    that converges: comparing a row against a sequential run measured tens
    of seconds earlier measures the host's load curve, not the engine.
    """
    ref_store = InProcessModelStore()
    ref_executor = SequentialExecutor()
    ref_executor.bind(store=ref_store)
    # Blocks must span the pipeline depth, or draining between blocks
    # would serialize the pipelined rows.
    block = max(1, args.pipeline_depth)
    with store, executor, ref_store:
        sim = build_sim(args, executor, store)
        ref = build_sim(args, ref_executor, ref_store)
        sim.run_round()  # warmup: process-pool startup, caches, JIT-ish costs
        ref.run_round()
        records = []
        ratios: list[float] = []
        elapsed = 0.0
        done = 0
        while done < args.rounds:
            n = min(block, args.rounds - done)
            start = time.perf_counter()
            ref.run(n)
            ref_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            records.extend(sim.run(n))
            row_elapsed = time.perf_counter() - start
            ratios.append(ref_elapsed / row_elapsed)
            elapsed += row_elapsed
            done += n
        ratios.sort()
        mid = len(ratios) // 2
        speedup = (
            ratios[mid] if len(ratios) % 2
            else 0.5 * (ratios[mid - 1] + ratios[mid])
        )
        return {
            "rounds_per_s": args.rounds / elapsed,
            "speedup": speedup,
            "flat": sim.global_model.get_flat(),
            "transport": float(np.mean([r.transport_bytes for r in records])),
            "raw_transport": float(
                np.mean([r.raw_transport_bytes for r in records])
            ),
            "lag": float(np.mean([r.validation_lag for r in records])),
            "codec": store.codec.name,
            "lossless": store.codec.lossless,
        }


def rollback_audit(args: argparse.Namespace, codec: str = "identity") -> list[str]:
    """Force rollbacks mid-pipeline; audit store refcounts afterwards.

    Returns failure lines (empty = pass): after a pipelined run containing
    forced quorum rejections, the store must hold exactly the retained
    history versions — plus, for a delta codec, the parent versions those
    history entries transitively pin — and nothing else: no withdrawn
    commit, straggler reference, staged profile or parked eviction may
    leak.  Closing the store must then unlink every ``/dev/shm`` segment,
    including pinned parents (the codec leak gate).
    """
    reject_rounds = (2, 4)
    store = SharedMemoryModelStore(codec=codec)
    failures: list[str] = []
    label = f"rollback audit [{codec}]"
    with store:
        executor = make_executor(
            args.workers, store=store, mode="pipelined",
            pipeline_depth=args.pipeline_depth,
        )
        with executor:
            sim = build_sim(args, executor, store, reject_rounds=reject_rounds)
            records = sim.run(max(6, args.rounds))
            replays = sum(r.rollback_count for r in records)
            rejected = sum(1 for r in records if not r.accepted)
            # Depth 0 resolves every round before a successor builds on it,
            # so rejections legitimately cause no replays there.
            if replays == 0 and args.pipeline_depth > 0:
                failures.append(
                    f"{label}: forced rejections triggered no replays"
                )
            executor.close()  # drops the executor's held global reference
            history_versions = sim.defense.history.versions()
            # A live version is legitimate iff the history retains it or a
            # retained delta segment transitively pins it as a parent.
            allowed = set(history_versions)
            frontier = list(history_versions)
            while frontier:
                parent = store._parents.get(frontier.pop())
                if parent is not None and parent not in allowed:
                    allowed.add(parent)
                    frontier.append(parent)
            live = store.versions()
            if set(live) != allowed:
                failures.append(
                    f"{label}: leaked store versions {sorted(set(live) - allowed)}"
                    f" (live {live} vs history+parents {sorted(allowed)})"
                )
            pins = {v: 0 for v in live}
            for child, parent in store._parents.items():
                if child in pins and parent in pins:
                    pins[parent] += 1
            # Expected refcounts: history entries hold one reference each;
            # parent-only versions (evicted from the history but pinned by
            # a live delta child) are held by their pins alone — anything
            # else is a leaked reference, even if the version set matches.
            history_set = set(history_versions)
            over_referenced = [
                v
                for v in live
                if store.refcount(v)
                != (1 if v in history_set else 0) + pins.get(v, 0)
            ]
            if over_referenced:
                failures.append(
                    f"{label}: dangling references on {over_referenced}"
                )
            if sim.defense.profile_table.staged_count:
                failures.append(f"{label}: staged profiles leaked")
    leftovers = [
        f for f in (os.listdir("/dev/shm") if os.path.isdir("/dev/shm") else [])
        if f.startswith(store.name_prefix)
    ]
    if leftovers:
        failures.append(f"{label}: /dev/shm segments survived close: {leftovers}")
    if not failures:
        print(
            f"{label}: {rejected} forced rejections, {replays} round "
            "replays, store clean (refcount + segment audit passed)"
        )
    return failures


def tracing_overhead(args: argparse.Namespace) -> tuple[dict, list[str]]:
    """Traced vs untraced paired throughput: the ≤5% overhead gate.

    Runs a traced and an untraced sequential simulation of the same world
    in small alternating blocks and takes the median per-block
    ``untraced/traced`` wall-clock ratio — the same drift-robust paired
    estimator as :func:`timed_run`, so a loaded host's throughput curve
    cancels out of the comparison.  Gate: median ratio >= 0.95 (tracing
    may cost at most 5% of round throughput), and the two runs must
    commit bit-identical models (tracing is pure observation).
    """
    from repro.obs import Tracer

    tracer = Tracer()
    untraced_store, traced_store = InProcessModelStore(), InProcessModelStore()
    untraced_exec, traced_exec = SequentialExecutor(), SequentialExecutor()
    untraced_exec.bind(store=untraced_store)
    traced_exec.bind(store=traced_store)
    failures: list[str] = []
    with untraced_store, traced_store:
        untraced = build_sim(args, untraced_exec, untraced_store)
        traced = build_sim(args, traced_exec, traced_store, tracer=tracer)
        untraced.run_round()  # warmup both before any block is timed
        traced.run_round()
        ratios: list[float] = []
        done = 1
        while done < max(4, args.rounds):
            start = time.perf_counter()
            untraced.run(2)
            untraced_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            traced.run(2)
            traced_elapsed = time.perf_counter() - start
            ratios.append(untraced_elapsed / traced_elapsed)
            done += 2
        ratios.sort()
        mid = len(ratios) // 2
        ratio = (
            ratios[mid] if len(ratios) % 2
            else 0.5 * (ratios[mid - 1] + ratios[mid])
        )
        identical = bool(
            np.array_equal(
                untraced.global_model.get_flat(), traced.global_model.get_flat()
            )
        )
    spans = len(tracer.finalized_spans())
    if not identical:
        failures.append(
            "tracing perturbed committed weights — traced and untraced "
            "sequential runs must be bit-identical"
        )
    if ratio < 0.95:
        failures.append(
            f"tracing overhead above the 5% gate (paired untraced/traced "
            f"ratio {ratio:.3f}, floor 0.95)"
        )
    stats = {
        "paired_untraced_over_traced": round(ratio, 4),
        "spans_recorded": spans,
        "bit_identical": identical,
        "gate_floor": 0.95,
    }
    return stats, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel engines")
    parser.add_argument("--rounds", type=int, default=8,
                        help="measured rounds per engine")
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--per-round", type=int, default=32, dest="per_round")
    parser.add_argument("--validators", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--lookback", type=int, default=4,
                        help="defense look-back window (history = lookback+1 "
                             "models; stresses pipe transport, not shm)")
    parser.add_argument("--shard", type=int, default=64,
                        help="samples per client shard")
    parser.add_argument("--hidden", type=int, nargs="+", default=[64])
    parser.add_argument("--batch", type=int, default=10,
                        help="local minibatch size (FedAvg's canonical "
                             "B=10 regime: many small steps per client)")
    parser.add_argument("--pipeline-depth", type=int, default=2,
                        dest="pipeline_depth",
                        help="speculation depth of the pipelined engine")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke setting: small world, 2 workers")
    args = parser.parse_args(argv)
    if args.quick:
        args.workers = min(args.workers, 2)
        args.rounds = 6
        args.clients = 24
        args.per_round = 12
        args.validators = 4
        args.shard = 48
        args.hidden = [32]
    args.hidden = tuple(args.hidden)

    #: engine row -> (store codec, executor mode, engine kind, workers);
    #: ``workers=None`` means ``args.workers``; codec rows reuse the
    #: synchronous shared-memory pool so the codec is the only variable.
    #: The sequential row is the classic unstacked per-model loop — the
    #: pool and thread rows additionally exercise their cohort-stacking
    #: default, which is part of what those engines buy.
    ROWS = {
        "sequential": ("identity", "sequential", None, None),
        "thread": ("identity", "sync", "thread", None),
        "pool+pipes": ("identity", "sync", "process", None),
        "pool+shm": ("identity", "sync", "process", None),
        "pipelined+shm": ("identity", "pipelined", "process", None),
        "pool+shm+f16": ("float16", "sync", "process", None),
        "pool+shm+quant": ("quantized", "sync", "process", None),
        "pool+shm+topk": ("topk", "sync", "process", None),
    }
    # Worker-scaling rows: the same engines at half fan-out, so the report
    # shows throughput moving with worker count.  Redundant under --quick
    # (the smoke setting already runs 2 workers).
    scaled = max(2, args.workers // 2)
    if scaled != args.workers:
        ROWS[f"thread+w{scaled}"] = ("identity", "sync", "thread", scaled)
        ROWS[f"pool+shm+w{scaled}"] = ("identity", "sync", "process", scaled)

    def store_for(name):
        codec = ROWS[name][0]
        # The thread engine shares the caller's address space: the
        # in-process store is its natural (zero-copy) pairing.
        return (
            InProcessModelStore(codec=codec)
            if name == "sequential" or name == "pool+pipes"
            or name.startswith("thread")
            else SharedMemoryModelStore(codec=codec)
        )

    def executor_for(name, store):
        _, mode, engine, workers = ROWS[name]
        if mode == "sequential":
            executor = SequentialExecutor()
            executor.bind(store=store)
            return executor
        return make_executor(
            workers if workers is not None else args.workers,
            store=store, mode=mode,
            pipeline_depth=args.pipeline_depth, engine=engine,
        )

    results = {}
    for name in ROWS:
        store = store_for(name)
        results[name] = timed_run(args, executor_for(name, store), store)
    seq = results["sequential"]
    seq_flat = seq["flat"]
    model_bytes = seq_flat.nbytes

    # Held-out accuracy: the measured cost of lossy transport (lossless
    # rows must match the sequential figure exactly).
    eval_task = SyntheticCifar()
    eval_data = eval_task.sample(500, np.random.default_rng(999))
    template = make_mlp(
        eval_task.flat_dim, eval_task.num_classes,
        np.random.default_rng(0), hidden=args.hidden,
    )

    def accuracy_of(flat: np.ndarray) -> float:
        template.set_flat(flat)
        return float((template.predict(eval_data.x) == eval_data.y).mean())

    lines = [
        "Parallel round engine: transport paths, execution modes, codecs",
        f"world: {args.clients} clients ({args.per_round}/round, "
        f"{args.epochs} local epochs, batch={args.batch}, "
        f"shard={args.shard}), {args.validators} validators, "
        f"lookback={args.lookback}, hidden={args.hidden}, "
        f"pipeline_depth={args.pipeline_depth}",
        f"host: {os.cpu_count()} cpu core(s); measured over {args.rounds} "
        f"rounds after 1 warmup; model = {model_bytes} bytes (float64); "
        "speedups are medians of paired adjacent-in-time blocks against a "
        "private sequential reference run",
        f"{'engine':<15} {'codec':>9} {'rounds/s':>9} {'speedup':>8} "
        f"{'transport B/rd':>15} {'ratio':>6} {'mean lag':>9} "
        f"{'divergence':>11} {'acc':>6}",
    ]
    seq_acc = accuracy_of(seq_flat)
    json_rows = []
    divergence = 0.0
    for name, row in results.items():
        row_divergence = float(np.max(np.abs(seq_flat - row["flat"])))
        # Only identity-codec rows enter the zero-divergence gate: float16
        # runs are bit-identical to *each other*, not to the identity
        # baseline (the canonicalized trajectory differs), and lossy rows
        # report divergence as their measured cost.
        if row["codec"] == "identity":
            divergence = max(divergence, row_divergence)
        ratio = (
            row["raw_transport"] / row["transport"] if row["transport"] else 1.0
        )
        acc = accuracy_of(row["flat"])
        lines.append(
            f"{name:<15} {row['codec']:>9} {row['rounds_per_s']:9.3f} "
            f"{row['speedup']:7.2f}x {row['transport']:15.1f} "
            f"{ratio:5.1f}x {row['lag']:9.2f} {row_divergence:11.1e} "
            f"{acc:6.3f}"
        )
        json_rows.append(
            {
                "engine": name,
                "workers": (
                    1 if name == "sequential"
                    else ROWS[name][3] if ROWS[name][3] is not None
                    else args.workers
                ),
                "codec": row["codec"],
                "lossless": row["lossless"],
                "rounds_per_s": round(row["rounds_per_s"], 4),
                "speedup_vs_sequential": round(row["speedup"], 4),
                "transport_bytes_per_round": round(row["transport"], 1),
                "raw_bytes_per_round": round(row["raw_transport"], 1),
                "compression_ratio": round(ratio, 3),
                "mean_acceptance_lag": round(row["lag"], 3),
                "weight_divergence_vs_sequential": row_divergence,
                "accuracy": round(acc, 4),
                "accuracy_delta_vs_sequential": round(acc - seq_acc, 4),
            }
        )
    lines.append(
        f"max |seq - engine| committed-weight divergence "
        f"(identity-codec rows): {divergence:.1e}"
    )
    shm_transport = results["pool+shm"]["transport"]
    sync_speed = results["pool+shm"]["speedup"]
    pipelined_speed = results["pipelined+shm"]["speedup"]
    thread_speed = results["thread"]["speedup"]
    best_codec_row = min(
        ("pool+shm+quant", "pool+shm+topk"),
        key=lambda name: results[name]["transport"],
    )
    codec_reduction = (
        shm_transport / results[best_codec_row]["transport"]
        if results[best_codec_row]["transport"]
        else float("inf")
    )
    lines.append(
        "pool+shm ships "
        f"{shm_transport / model_bytes:.2f} models/round regardless of "
        "history length and fan-out width (O(1) new-model transport); "
        "pool+pipes re-ships candidate + history per validator and the "
        "global model per client."
    )
    lines.append(
        f"pipelined vs sync pool wall-clock: "
        f"{pipelined_speed / sync_speed:.2f}x (validation overlapped with "
        f"next-round training, mean acceptance lag "
        f"{results['pipelined+shm']['lag']:.2f} rounds)"
    )
    lines.append(
        f"thread engine: {thread_speed:.2f}x sequential with zero "
        f"transport ({results['thread']['transport']:.0f} B/round) — "
        "fan-out without IPC or serialization, cohort stacking on by "
        "default"
    )
    lines.append(
        f"codec transport reduction vs identity shm: {codec_reduction:.1f}x "
        f"via {best_codec_row} (paper Sec. VI-D budgets ~10x; gate >= 5x)"
    )
    trace_stats, trace_failures = tracing_overhead(args)
    lines.append(
        f"tracing overhead: paired untraced/traced throughput ratio "
        f"{trace_stats['paired_untraced_over_traced']:.3f} (gate >= 0.95, "
        f"i.e. tracing costs <= 5%), {trace_stats['spans_recorded']} spans "
        f"recorded, bit-identity "
        f"{'intact' if trace_stats['bit_identical'] else 'BROKEN'}"
    )
    text = "\n".join(lines)
    write_result("parallel_engine", text)
    write_json(
        "BENCH_parallel",
        {
            "benchmark": "parallel_engine",
            "world": {
                "clients": args.clients,
                "per_round": args.per_round,
                "validators": args.validators,
                "epochs": args.epochs,
                "shard": args.shard,
                "lookback": args.lookback,
                "hidden": list(args.hidden),
                "pipeline_depth": args.pipeline_depth,
                "rounds": args.rounds,
                "workers": args.workers,
                "quick": bool(args.quick),
                "model_bytes": int(model_bytes),
            },
            "rows": json_rows,
            "codec_transport_reduction_vs_identity": round(codec_reduction, 3),
            "tracing_overhead": trace_stats,
        },
    )

    failures = rollback_audit(args, codec="identity")
    failures += rollback_audit(args, codec="topk")
    failures += trace_failures
    if divergence != 0.0:
        failures.append(
            "engines diverged — sequential/parallel/pipelined equivalence "
            "broken"
        )
    if shm_transport > model_bytes + 4096:
        failures.append(
            "shared-memory transport exceeds one model per round "
            f"({shm_transport:.0f} B vs model {model_bytes} B)"
        )
    if codec_reduction < 5.0:
        failures.append(
            f"codec transport reduction {codec_reduction:.2f}x below the "
            "5x acceptance floor (paper budget ~10x)"
        )
    # Dispatch-overhead gates: batched per-worker dispatch plus the
    # cohort-stacking default must make fan-out pay for itself even on a
    # single-core host.  Quick mode keeps the floors at parity (a small
    # world on a loaded CI box measures overhead, not headroom); the full
    # setting additionally demands the thread engine's zero-IPC margin.
    pool_floor = 1.0
    thread_floor = 1.0 if args.quick else 1.2
    if sync_speed < pool_floor:
        failures.append(
            f"pool+shm lost to sequential (paired speedup {sync_speed:.3f}x;"
            f" floor {pool_floor:.1f}x): batched dispatch is not paying for "
            "process fan-out"
        )
    if thread_speed < thread_floor:
        failures.append(
            f"thread engine below its floor (paired speedup "
            f"{thread_speed:.3f}x; floor {thread_floor:.1f}x): zero-IPC "
            "fan-out should beat the sequential loop"
        )
    # Wall-clock gate: pipelined must not lose to the synchronous pool in
    # the default bench world.  Skipped under --quick (a tiny world on a
    # loaded CI box is noise) and on single-core hosts, where there is no
    # idle worker to overlap validation into — the same caveat as the
    # pool-speedup target; the gate binds on multi-core machines.
    if args.quick or (os.cpu_count() or 1) < 2:
        print(
            "note: pipelined wall-clock gate skipped "
            f"(quick={args.quick}, cpus={os.cpu_count()})"
        )
    elif pipelined_speed < 0.95 * sync_speed:
        failures.append(
            f"pipelined wall-clock regressed vs sync pool "
            f"(paired speedups {pipelined_speed:.3f}x vs {sync_speed:.3f}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
