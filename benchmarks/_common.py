"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures as text,
prints it, and archives it under ``benchmarks/results/`` so EXPERIMENTS.md
can quote the measured numbers.

Scaling knobs (environment variables):

- ``REPRO_BENCH_SEEDS`` — repetitions per cell (default 2; the paper
  averages over 5, which roughly doubles to quintuples runtimes).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The benchmark experiment scale: ~1/3 of the paper's client population,
#: synthetic data (see DESIGN.md substitution table), identical protocol
#: structure (10 contributors + 10 validators, injections at 30/35/40).
BENCH_SCALE_NOTE = (
    "scale: 30 clients, synthetic data, protocol structure as in the paper"
)


def bench_seeds(default: int = 2) -> tuple[int, ...]:
    """Seeds for repeated runs, controlled by REPRO_BENCH_SEEDS."""
    count = int(os.environ.get("REPRO_BENCH_SEEDS", default))
    return tuple(range(max(1, count)))


def write_result(name: str, text: str) -> Path:
    """Print a table/figure text and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[archived to {path}]")
    return path


def write_json(name: str, payload) -> Path:
    """Archive a machine-readable benchmark result (perf trajectory file).

    Unlike the human-readable text archives, these are meant to be
    committed (``benchmarks/results/BENCH_*.json`` is exempted from the
    results .gitignore) so the perf trajectory is tracked across PRs.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[machine-readable result archived to {path}]")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
