"""Paper Figure 2: per-class error rate of clean vs poisoned models.

The paper plots the class-conditional error rate w.r.t. one class over
training rounds, for a clean run and a run with model-replacement
injections: clean error rates stay flat while each injection produces a
visible spike.  We regenerate both series on the synthetic CIFAR task for
the backdoor's source class (cars).
"""

from __future__ import annotations

from benchmarks._common import once, write_result
from repro.experiments import ExperimentConfig, run_error_trace
from repro.experiments.reporting import format_series

INJECTIONS = (25, 30, 35)
ROUNDS = 40


def test_fig2_per_class_error(benchmark):
    config = ExperimentConfig(dataset="cifar", client_share=0.90)

    traces = once(benchmark, lambda: run_error_trace(
        config, seed=0, rounds=ROUNDS, injections=INJECTIONS
    ))
    source = int(traces["source_class"])
    clean = traces["clean"][:, source]
    poisoned = traces["poisoned"][:, source]

    text = format_series(
        f"Figure 2: per-class error rate w.r.t. class {source} "
        f"(clean vs poisoned; injections at rounds {INJECTIONS})",
        {"clean": clean.tolist(), "poisoned": poisoned.tolist()},
        x=list(range(ROUNDS)),
    )
    write_result("fig2_per_class_error", text)

    # Paper shape: injections spike the poisoned curve far above clean.
    spike = max(poisoned[r] for r in INJECTIONS)
    clean_ceiling = clean.max()
    assert spike > clean_ceiling + 0.1, (
        f"injection spike {spike:.3f} not above clean ceiling {clean_ceiling:.3f}"
    )
    # Between injections the model recovers: late clean-round errors drop back.
    assert poisoned[-1] < spike
