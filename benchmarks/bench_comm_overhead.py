"""Paper Sec. VI-D: communication overhead of the feedback loop.

Validating clients download the history of the latest ``l + 1`` accepted
models.  The paper estimates ~10 MB per ResNet18 model, ~200 MB per
selected client per round at l = 20, reducible 10x by model compression,
and amortised to ~40 MB per 20 rounds per client given selection
probability 1/10 and incremental history downloads.

We regenerate the same accounting for (a) the benchmark-scale MLP used in
the experiments and (b) an extrapolation at the paper's ResNet18 size.
"""

from __future__ import annotations

from benchmarks._common import once, write_result
from repro.experiments import ExperimentConfig
from repro.experiments.environment import build_environment
from repro.nn.serialization import PAPER_COMPRESSION_FACTOR, network_num_bytes

RESNET18_BYTES = 10 * 1024 * 1024  # the paper's ~10 MB per model
LOOKBACK = 20
SELECTION_PROB = 1 / 10


def _accounting():
    env = build_environment(ExperimentConfig(dataset="cifar"), seed=0)
    model_bytes = network_num_bytes(env.stable_model)
    rows = []
    for label, per_model in (
        ("bench MLP", model_bytes),
        ("paper ResNet18", RESNET18_BYTES),
    ):
        history = (LOOKBACK + 1) * per_model
        compressed = history / PAPER_COMPRESSION_FACTOR
        # A client is selected w.p. 1/10 and only needs the history delta
        # if re-selected within the window: the paper's conservative figure
        # is two full compressed downloads per 20 rounds.
        amortised = 2 * compressed * SELECTION_PROB * 10
        rows.append(
            f"{label:>15}: model={per_model / 1e6:8.3f} MB  "
            f"history(l=20)={history / 1e6:8.2f} MB  "
            f"compressed={compressed / 1e6:8.2f} MB  "
            f"per-client/20 rounds~{amortised / 1e6:8.2f} MB"
        )
    return "\n".join(
        ["Sec. VI-D: communication overhead of shipping the model history"]
        + rows
    ), model_bytes


def test_comm_overhead(benchmark):
    text, model_bytes = once(benchmark, _accounting)
    write_result("comm_overhead", text)

    # The paper's figures at ResNet18 scale: ~210 MB history, ~21 MB
    # compressed, ~42 MB per client per 20 rounds.
    history = (LOOKBACK + 1) * RESNET18_BYTES / 1e6
    assert 200 <= history <= 230
    assert model_bytes > 0
