"""Paper Figure 5: reject votes on adaptively poisoned models.

For each data split, record how many of the validators rejected each
adaptive injection.  The paper reads rho (the worst-case fraction of
correct honest validators) off this plot: "most of these injections were
detected by 5 or more validating clients", i.e. rho ~ 0.5.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import CIFAR_SPLITS, ExperimentConfig
from repro.experiments.reporting import format_vote_distribution
from repro.experiments.runner import run_adaptive_experiment


def _collect_votes(seeds):
    votes = {}
    for split in CIFAR_SPLITS:
        config = ExperimentConfig(
            dataset="cifar", client_share=split, adaptive_max_trials=8
        )
        result = run_adaptive_experiment(config, seeds)
        votes[split] = list(result.adaptive_reject_votes)
    return votes


def test_fig5_vote_distribution(benchmark):
    seeds = bench_seeds()
    votes = once(benchmark, lambda: _collect_votes(seeds))
    num_validators = ExperimentConfig().num_validators + 1  # clients + server
    text = format_vote_distribution(votes, num_validators)
    write_result("fig5_vote_distribution", text)

    pooled = np.concatenate([np.asarray(v) for v in votes.values()])
    # Paper shape: most adaptive injections draw >= 5 reject votes.
    assert (pooled >= 5).mean() > 0.6
