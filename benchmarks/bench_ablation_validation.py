"""Ablations of the validation function (our additions; see DESIGN.md).

Three axes the paper fixes by fiat, probed here:

1. **Feature set**: the paper's feature vector concatenates source-focused
   and target-focused error variations (v = [v_s | v_t]); we ablate to
   each half alone.
2. **Threshold slack**: the paper's literal rule is LOF > tau; our
   scaled-down substrate defaults to LOF > 1.15 tau (see the
   MisclassificationValidator docstring).  The sweep quantifies the trade.
3. **Error normalisation**: dataset-relative (the paper's literal
   definition) vs class-conditional error rates.
"""

from __future__ import annotations

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_detection_experiment

BASE = ExperimentConfig(dataset="cifar", client_share=0.90)


def _sweep(seeds):
    rows = {}
    for label, overrides in (
        ("features=both (paper)", {}),
        ("features=source-only", {"validator_features": "source"}),
        ("features=target-only", {"validator_features": "target"}),
        ("slack=1.0 (paper-literal)", {"validator_slack": 1.0}),
        ("slack=1.3", {"validator_slack": 1.3}),
        ("normalize=class", {"validator_normalize": "class"}),
    ):
        rows[label] = run_detection_experiment(BASE.with_updates(**overrides), seeds)
    return rows


def test_ablation_validation(benchmark):
    seeds = bench_seeds()
    rows = once(benchmark, lambda: _sweep(seeds))
    lines = ["Ablation: validation-function variants (CIFAR-like, 90-10, C+S)"]
    for label, stats in rows.items():
        lines.append(f"{label:>28}: {stats}")
    write_result("ablation_validation", "\n".join(lines))

    # Every variant must still catch the blatant model-replacement attack;
    # the interesting differences are on the FP side.
    for label, stats in rows.items():
        assert stats.fn_mean <= 0.35, f"{label} missed too many injections"
    # The combined feature set should not be worse than either half alone.
    assert rows["features=both (paper)"].fn_mean <= min(
        rows["features=source-only"].fn_mean,
        rows["features=target-only"].fn_mean,
    ) + 0.2
