"""Paper Figure 3 (panels a-f): detection rates vs quorum threshold q.

For each dataset and client-server split, sweep q in [3..9] for the two
feedback-loop configurations; the server-only configuration is constant in
q and plotted alongside.

Paper shape to reproduce:
- FN approaches 0 for q <= 7;
- FP grows (mildly) as q decreases;
- 5 <= q <= 7 is a near-equal-error sweet spot;
- the feedback loop outperforms server-only on FP in that range.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import bench_seeds, once, write_result
from repro.experiments import CIFAR_SPLITS, FEMNIST_SPLITS, ExperimentConfig
from repro.experiments.reporting import format_quorum_series
from repro.experiments.runner import sweep_quorum

QUORUMS = tuple(range(3, 10))


def _run(dataset: str, splits, seeds):
    base = ExperimentConfig(dataset=dataset, lookback=20)
    return sweep_quorum(base, QUORUMS, splits, seeds=seeds)


def test_fig3_cifar(benchmark):
    seeds = bench_seeds()
    results = once(benchmark, lambda: _run("cifar", CIFAR_SPLITS, seeds))
    blocks = [
        format_quorum_series(results, QUORUMS, split, "CIFAR-like")
        for split in CIFAR_SPLITS
    ]
    write_result("fig3_cifar", "\n\n".join(blocks))

    for split in CIFAR_SPLITS:
        # FN ~ 0 in the recommended 5 <= q <= 7 band.
        band_fn = [results[(q, split, "both")].fn_mean for q in (5, 6, 7)]
        assert float(np.mean(band_fn)) <= 0.2
        # Loop FP no worse than server-only FP in the band.
        assert results[(5, split, "both")].fp_mean <= (
            results[(5, split, "server")].fp_mean + 1e-9
        )


def test_fig3_femnist(benchmark):
    seeds = bench_seeds()
    results = once(benchmark, lambda: _run("femnist", FEMNIST_SPLITS, seeds))
    blocks = [
        format_quorum_series(results, QUORUMS, split, "FEMNIST-like")
        for split in FEMNIST_SPLITS
    ]
    write_result("fig3_femnist", "\n\n".join(blocks))

    # Paper: FEMNIST detection is flat in q — FN and FP ~ 0 for 3 <= q <= 9.
    band = [
        results[(q, split, "both")].fn_mean
        for q in QUORUMS
        for split in FEMNIST_SPLITS
    ]
    assert float(np.mean(band)) <= 0.2
