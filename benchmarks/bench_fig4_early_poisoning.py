"""Paper Figure 4 (panels a-d): early poisoning, defense off vs on.

The paper trains from scratch for 800 rounds, injects at rounds 100 and
300 (before the defense exists), enables BaFFLe at round 530, and keeps
injecting every 15 rounds until 680.  We run the same schedule scaled 1:5
(160 rounds, defense at 106), for both datasets, with and without the
defense.

Paper shape to reproduce:
- without the defense, every injection spikes the backdoor accuracy; early
  backdoors fade within a few rounds (the model "forgets");
- with the defense, post-enable injections are rejected: the backdoor
  accuracy stays near zero and the main-task accuracy is unharmed.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, write_result
from repro.experiments import ExperimentConfig, run_early_scenario
from repro.experiments.reporting import format_series


def _run_pair(dataset: str):
    config = ExperimentConfig(dataset=dataset, client_share=0.90)
    undefended = run_early_scenario(config, seed=0, defense_start=None)
    defended = run_early_scenario(config, seed=0, defense_start=106)
    return undefended, defended


def _check_and_report(name: str, undefended, defended):
    rounds = list(range(len(undefended.main_accuracy)))
    text = format_series(
        f"Figure 4 ({name}): accuracy over rounds "
        f"(injections at {undefended.injection_rounds}, defense at 106)",
        {
            "main_nodef": undefended.main_accuracy,
            "bd_nodef": undefended.backdoor_accuracy,
            "main_def": defended.main_accuracy,
            "bd_def": defended.backdoor_accuracy,
        },
        x=rounds,
    )
    write_result(f"fig4_{name}", text)

    bd_nodef = np.array(undefended.backdoor_accuracy)
    bd_def = np.array(defended.backdoor_accuracy)
    late = [r for r in undefended.injection_rounds if r >= 106]

    # Without the defense the late injections implant the backdoor.
    assert bd_nodef[late].max() > 0.5
    # With the defense the backdoor never sticks after enabling.
    assert bd_def[107:].max() < 0.5
    # The defense costs little main-task accuracy at the end of training.
    assert defended.main_accuracy[-1] > undefended.main_accuracy[-1] - 0.1
    # Early (pre-defense) backdoors fade on their own within ~20 rounds.
    early = undefended.injection_rounds[0]
    assert bd_nodef[early + 20] < bd_nodef[early]
    # Defended run: late injections were rejected rounds.
    rejected = {r.round_idx for r in defended.records if not r.accepted}
    detected = sum(1 for r in late if r in rejected)
    assert detected >= len(late) - 1  # paper: at most one missed injection


def test_fig4_cifar(benchmark):
    undefended, defended = once(benchmark, lambda: _run_pair("cifar"))
    _check_and_report("cifar", undefended, defended)


def test_fig4_femnist(benchmark):
    undefended, defended = once(benchmark, lambda: _run_pair("femnist"))
    _check_and_report("femnist", undefended, defended)
