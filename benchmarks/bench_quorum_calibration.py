"""Paper Sec. IV-B / VI-C: calibrating rho, q, and the tolerable n_M.

From the vote traces on known-poisoned rounds we estimate rho (worst-case
fraction of honest validators judging correctly), then evaluate the
paper's bounds: the valid quorum range and the tolerable number of
malicious validators n_M < (1 - rho) n / (2 - rho).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import bench_seeds, once, write_result
from repro.core.quorum import (
    estimate_rho_from_votes,
    max_tolerable_malicious,
    quorum_bounds,
)
from repro.experiments import ExperimentConfig
from repro.experiments.scenarios import run_stable_scenario


def _collect(seeds):
    config = ExperimentConfig(dataset="cifar", client_share=0.90)
    votes = []
    for seed in seeds:
        result = run_stable_scenario(config, seed)
        votes.extend(result.reject_votes_on_injections())
    return votes


def test_quorum_calibration(benchmark):
    seeds = bench_seeds()
    votes = once(benchmark, lambda: _collect(seeds))
    n = ExperimentConfig().num_validators
    # client votes only (exclude the server's) for the rho estimate
    client_votes = [min(v, n) for v in votes]
    rho = estimate_rho_from_votes(client_votes, n)

    lines = [
        "Sec. IV-B / VI-C: quorum calibration from injection vote traces",
        f"observed reject votes on injections: {sorted(votes)}",
        f"estimated rho (min reject share): {rho:.2f}",
        f"tolerable malicious validators: n_M < "
        f"{max_tolerable_malicious(n, rho):.2f} of n={n}",
    ]
    for n_m in (0, 1, 2, 3):
        lower, upper = quorum_bounds(n, n_m, rho)
        status = "valid" if lower < upper else "empty"
        lines.append(
            f"  n_M={n_m}: quorum range ({lower:.2f}, {upper:.2f}] ({status})"
        )
    write_result("quorum_calibration", "\n".join(lines))

    # Paper: most injections rejected by at least half the validators.
    assert np.median(client_votes) >= n / 2
