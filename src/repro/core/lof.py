"""Local Outlier Factor, from scratch (Breunig et al., SIGMOD 2000).

BaFFLe flags a model update as suspicious when its error-variation feature
vector is an outlier relative to recent history, in the LOF sense
(paper Sec. V, Algorithm 2 line 11).

Definitions (for a query point ``x`` against a reference set ``N``):

- ``k-distance(p)``: distance from ``p`` to its k-th nearest neighbour;
- reachability distance: ``reach_k(x, o) = max(k-distance(o), d(x, o))``;
- local reachability density: ``lrd_k(x) = 1 / mean_o reach_k(x, o)`` over
  the k nearest neighbours ``o`` of ``x``;
- ``LOF_k(x) = mean_o lrd_k(o) / lrd_k(x)``.

``LOF ~ 1`` means the point is as dense as its neighbours; ``LOF >> 1``
marks an outlier.  Degenerate geometry (duplicate points producing zero
reachability) is handled in two steps: densities are capped at ``1/eps``,
and a point whose own density hits the cap is defined to have ``LOF = 1``
— an infinitely dense point duplicates its neighbourhood and can never be
an outlier.  This matters in BaFFLe's regime: on small validation sets
consecutive stable models often make *identical* predictions, so
error-variation vectors frequently coincide exactly.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def _k_distance_and_neighbors(
    dists: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row k-distance and indices of the k nearest columns.

    ``dists`` is a (Q, R) matrix of query-to-reference distances where a
    query's own column (if present) has already been masked to infinity.
    """
    order = np.argsort(dists, axis=1)
    neighbors = order[:, :k]
    k_dist = np.take_along_axis(dists, neighbors, axis=1)[:, -1]
    return k_dist, neighbors


def lof_scores(points: np.ndarray, k: int) -> np.ndarray:
    """LOF of every point in ``points`` w.r.t. the other points.

    Standard "batch" LOF: each point's neighbourhood excludes itself.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    n = len(points)
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    dists = _pairwise_distances(points, points)
    np.fill_diagonal(dists, np.inf)
    k_dist, neighbors = _k_distance_and_neighbors(dists, k)
    # reach(i, j) = max(k_dist[j], d(i, j)) for j in kNN(i)
    reach = np.maximum(k_dist[neighbors], np.take_along_axis(dists, neighbors, axis=1))
    mean_reach = reach.mean(axis=1)
    lrd = 1.0 / np.maximum(mean_reach, _EPS)
    scores = (lrd[neighbors].mean(axis=1)) / lrd
    # Density-capped points duplicate their neighbourhood: define LOF = 1.
    scores[mean_reach <= _EPS] = 1.0
    return scores


def local_outlier_factor(
    query: np.ndarray, reference: np.ndarray, k: int
) -> float:
    """``LOF_k(query; reference)``: outlier-ness of one point vs a set.

    This is the form Algorithm 2 uses: the newest error-variation vector is
    scored against the recent history (the query is *not* part of the
    reference set).  Densities of the reference points are computed within
    the reference set itself.
    """
    query = np.asarray(query, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be a vector, got shape {query.shape}")
    if reference.ndim != 2 or reference.shape[1] != len(query):
        raise ValueError(
            f"reference must be (n, {len(query)}), got shape {reference.shape}"
        )
    n = len(reference)
    if n < 2:
        raise ValueError("need at least 2 reference points")
    k = min(k, n - 1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    ref_dists = _pairwise_distances(reference, reference)
    np.fill_diagonal(ref_dists, np.inf)
    ref_k_dist, ref_neighbors = _k_distance_and_neighbors(ref_dists, k)
    ref_reach = np.maximum(
        ref_k_dist[ref_neighbors], np.take_along_axis(ref_dists, ref_neighbors, axis=1)
    )
    ref_lrd = 1.0 / np.maximum(ref_reach.mean(axis=1), _EPS)

    q_dists = _pairwise_distances(query[None, :], reference)[0]
    q_neighbors = np.argsort(q_dists)[:k]
    q_reach = np.maximum(ref_k_dist[q_neighbors], q_dists[q_neighbors])
    q_mean_reach = q_reach.mean()
    if q_mean_reach <= _EPS:
        # The query coincides with a dense duplicate cluster: inlier.
        return 1.0
    q_lrd = 1.0 / q_mean_reach
    return float(ref_lrd[q_neighbors].mean() / q_lrd)
