"""Per-class error profiles and error-variation features (paper eqs. 2-3).

For a model ``f`` and dataset ``D``, the *error profile* collects the
source-focused errors ``err_D(f)_{y->}`` and target-focused errors
``err_D(f)_{->y}`` for every class ``y``.  The *error-variation vector*
between consecutive models ``f`` (older) and ``f'`` (newer) is

    v(f, f', D) = [ v_s | v_t ]  in  R^{2|Y|}

with ``v_s[y] = err_D(f)_{y->} - err_D(f')_{y->}`` (eq. 2) and
``v_t[y] = err_D(f)_{->y} - err_D(f')_{->y}`` (eq. 3).  Under benign
training these vectors stay small and mutually close round over round; a
freshly injected backdoor perturbs the misclassification structure of one
or a few classes and pushes the newest vector away from the cluster —
which the LOF test of Algorithm 2 picks up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.metrics import (
    confusion_matrix,
    source_focused_errors,
    target_focused_errors,
)
from repro.nn.network import Network


@dataclass(frozen=True)
class ErrorProfile:
    """Per-class error summary of one model on one dataset."""

    source_errors: np.ndarray
    target_errors: np.ndarray
    num_samples: int
    num_classes: int

    def __post_init__(self) -> None:
        if self.source_errors.shape != (self.num_classes,):
            raise ValueError("source_errors has wrong shape")
        if self.target_errors.shape != (self.num_classes,):
            raise ValueError("target_errors has wrong shape")


def model_error_profile(
    model: Network, dataset: Dataset, normalize: str = "dataset"
) -> ErrorProfile:
    """Evaluate ``model`` on ``dataset`` and summarise its per-class errors."""
    if len(dataset) == 0:
        raise ValueError("cannot profile a model on an empty dataset")
    predictions = model.predict(dataset.x)
    conf = confusion_matrix(dataset.y, predictions, dataset.num_classes)
    return ErrorProfile(
        source_errors=source_focused_errors(conf, normalize=normalize),
        target_errors=target_focused_errors(conf, normalize=normalize),
        num_samples=len(dataset),
        num_classes=dataset.num_classes,
    )


def error_variation_vector(older: ErrorProfile, newer: ErrorProfile) -> np.ndarray:
    """``v(f, f', D)`` of eqs. (2)-(3): older-minus-newer per-class errors."""
    if older.num_classes != newer.num_classes:
        raise ValueError(
            f"profiles disagree on classes: {older.num_classes} vs {newer.num_classes}"
        )
    v_source = older.source_errors - newer.source_errors
    v_target = older.target_errors - newer.target_errors
    return np.concatenate([v_source, v_target])
