"""Per-class error profiles and error-variation features (paper eqs. 2-3).

For a model ``f`` and dataset ``D``, the *error profile* collects the
source-focused errors ``err_D(f)_{y->}`` and target-focused errors
``err_D(f)_{->y}`` for every class ``y``.  The *error-variation vector*
between consecutive models ``f`` (older) and ``f'`` (newer) is

    v(f, f', D) = [ v_s | v_t ]  in  R^{2|Y|}

with ``v_s[y] = err_D(f)_{y->} - err_D(f')_{y->}`` (eq. 2) and
``v_t[y] = err_D(f)_{->y} - err_D(f')_{->y}`` (eq. 3).  Under benign
training these vectors stay small and mutually close round over round; a
freshly injected backdoor perturbs the misclassification structure of one
or a few classes and pushes the newest vector away from the cluster —
which the LOF test of Algorithm 2 picks up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.metrics import (
    confusion_matrix,
    source_focused_errors,
    target_focused_errors,
)
from repro.nn.network import Network

#: Stacked-profile chunk budget: one chunk's weight stack should fit the
#: per-core cache working set (conservative for typical 1-2 MB L2s).
_PROFILE_CHUNK_BYTES = 1 << 20


@dataclass(frozen=True)
class ErrorProfile:
    """Per-class error summary of one model on one dataset."""

    source_errors: np.ndarray
    target_errors: np.ndarray
    num_samples: int
    num_classes: int

    def __post_init__(self) -> None:
        if self.source_errors.shape != (self.num_classes,):
            raise ValueError("source_errors has wrong shape")
        if self.target_errors.shape != (self.num_classes,):
            raise ValueError("target_errors has wrong shape")


def model_error_profile(
    model: Network, dataset: Dataset, normalize: str = "dataset"
) -> ErrorProfile:
    """Evaluate ``model`` on ``dataset`` and summarise its per-class errors."""
    if len(dataset) == 0:
        raise ValueError("cannot profile a model on an empty dataset")
    predictions = model.predict(dataset.x)
    conf = confusion_matrix(dataset.y, predictions, dataset.num_classes)
    return ErrorProfile(
        source_errors=source_focused_errors(conf, normalize=normalize),
        target_errors=target_focused_errors(conf, normalize=normalize),
        num_samples=len(dataset),
        num_classes=dataset.num_classes,
    )


def stacked_error_profiles(
    models: "list[Network]", dataset: Dataset, normalize: str = "dataset"
) -> list[ErrorProfile]:
    """Error profiles for many same-architecture models in one stacked pass.

    A cold validator needs the candidate's profile plus up to ``l + 1``
    history profiles; computing them one
    :func:`model_error_profile` at a time pays the full per-model
    dispatch cost per model.  This fans all models through one
    :class:`~repro.nn.stacked.StackedNetwork` forward (bit-identical
    predictions — see that module's contract) and builds every confusion
    matrix from a single ``bincount`` over the joint
    ``(model, true, predicted)`` index, then derives the error vectors
    with exactly the per-model functions — so each returned profile is
    bit-for-bit what :func:`model_error_profile` would have produced.

    Callers guard with :func:`repro.nn.stacked.supports_stacking` and fall
    back to the per-model path for unstackable architectures.
    """
    from repro.nn.stacked import stacked_predict

    if not models:
        return []
    if len(dataset) == 0:
        raise ValueError("cannot profile a model on an empty dataset")
    # Chunk the stack so one chunk's weights stay cache-resident: a full
    # 21-model stack of even a small MLP spills the L2 working set that
    # model-at-a-time evaluation enjoys, and per-slice GEMMs are
    # bit-identical under any chunking, so this is a free throughput knob.
    model_bytes = max(1, models[0].num_parameters * 8)
    chunk = max(2, min(len(models), _PROFILE_CHUNK_BYTES // model_bytes))
    predictions = np.concatenate(
        [
            stacked_predict(models[start : start + chunk], dataset.x)
            for start in range(0, len(models), chunk)
        ],
        axis=0,
    )
    num_models = len(models)
    num_classes = dataset.num_classes
    y = np.asarray(dataset.y, dtype=np.int64)
    joint = (
        np.arange(num_models, dtype=np.int64)[:, None] * num_classes + y[None, :]
    ) * num_classes + predictions
    confusions = np.bincount(
        joint.ravel(), minlength=num_models * num_classes * num_classes
    ).reshape(num_models, num_classes, num_classes)
    # Error vectors for the whole stack at once.  The integer marginals are
    # exact regardless of evaluation order, and the normalizing division
    # pairs the same operands per element as the per-model
    # source/target_focused_errors calls — bit-identical results.
    diag = confusions[:, np.arange(num_classes), np.arange(num_classes)]
    source_wrong = confusions.sum(axis=2) - diag
    target_wrong = confusions.sum(axis=1) - diag
    if normalize == "dataset":
        totals = confusions.sum(axis=(1, 2))
        source = source_wrong / totals[:, None]
        target = target_wrong / totals[:, None]
    elif normalize == "class":
        class_counts = confusions.sum(axis=2)
        source = np.zeros(source_wrong.shape)
        target = np.zeros(target_wrong.shape)
        nonzero = class_counts > 0
        source[nonzero] = source_wrong[nonzero] / class_counts[nonzero]
        target[nonzero] = target_wrong[nonzero] / class_counts[nonzero]
    else:
        raise ValueError(f"unknown normalize mode {normalize!r}")
    return [
        ErrorProfile(
            source_errors=source[m],
            target_errors=target[m],
            num_samples=len(dataset),
            num_classes=num_classes,
        )
        for m in range(num_models)
    ]


def error_variation_vector(older: ErrorProfile, newer: ErrorProfile) -> np.ndarray:
    """``v(f, f', D)`` of eqs. (2)-(3): older-minus-newer per-class errors."""
    if older.num_classes != newer.num_classes:
        raise ValueError(
            f"profiles disagree on classes: {older.num_classes} vs {newer.num_classes}"
        )
    v_source = older.source_errors - newer.source_errors
    v_target = older.target_errors - newer.target_errors
    return np.concatenate([v_source, v_target])
