"""The BaFFLe defense: feedback loop + quorum decision (Algorithm 1).

Every round the server:

1. selects ``num_validators`` validating clients uniformly at random;
2. ships them the candidate global model and the history of the latest
   ``lookback + 1`` accepted models;
3. collects their binary verdicts (1 = "poisoned");
4. in the ``server`` and ``both`` configurations, additionally runs the
   validation function on its own held-out data;
5. rejects the candidate iff at least ``quorum`` reject verdicts arrived
   (the server's own vote counts towards the quorum in the ``both``
   configuration, per paper Sec. VI-A).

On rejection the simulation keeps the previous global model (Algorithm 1:
``G_{r+1} <- G_{r-1}``) and the candidate is **not** added to the history.

Asynchronous (pipelined) reviews
--------------------------------
The paper's feedback loop is naturally asynchronous: validators report in
the round *after* the update was aggregated (Sec. IV).  The synchronous
:meth:`BaffleDefense.review` compresses that into one blocking call; the
pipelined engine instead splits it:

1. :meth:`BaffleDefense.review_async` makes every server-side random draw
   (validator sampling, dropout) *now* — keeping the sequential RNG stream
   byte-identical to a synchronous run — stages the candidate and submits
   the votes without waiting;
2. :meth:`BaffleDefense.commit_optimistic` adopts the candidate into the
   history provisionally, so training continues on it immediately;
3. when the quorum resolves (:meth:`BaffleDefense.resolve_review`, rounds
   resolve strictly in FIFO order), the round is either promoted
   (:meth:`finalize_review`) or withdrawn (:meth:`rollback_review`, which
   unwinds the provisional history suffix, invalidates staged and cached
   profiles of the withdrawn versions, and leaves in-flight straggler
   validators to the store's refcounts); speculative successors of a
   withdrawn round are cancelled (:meth:`cancel_review`) and replayed by
   the simulation.

The three paper configurations map to ``mode``:

- ``"clients"``  -> BaFFLe-C  (feedback loop only),
- ``"server"``   -> BaFFLe-S  (server-only validation; the quorum is
  irrelevant — the server's single vote decides),
- ``"both"``     -> BaFFLe    (feedback loop + server vote).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.history import ModelHistory
from repro.core.validation import (
    MisclassificationValidator,
    ValidationContext,
    Validator,
)
from repro.data.dataset import Dataset
from repro.fl.faults import QUORUM_POLICIES, QuorumStallError
from repro.fl.model_store import ModelStore, ValidatorProfileTable
from repro.fl.parallel import PendingVotes, RoundExecutor
from repro.fl.rng import RngStreams
from repro.fl.simulation import DefenseDecision
from repro.nn.network import Network
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

_MODES = ("clients", "server", "both")


@dataclass(frozen=True)
class BaffleConfig:
    """BaFFLe hyper-parameters (paper Sec. IV-B, VI-A).

    Attributes
    ----------
    lookback:
        The look-back window size ``l``; the history holds ``l + 1`` models.
        The paper sweeps 10/20/30 and settles on 20.
    quorum:
        Reject threshold ``q``: minimum number of "poisoned" verdicts that
        reject the round.  The paper sweeps 3..9 and recommends 5..7.
    num_validators:
        Validating clients ``n`` consulted per round (paper: 10).
    mode:
        ``"clients"`` (BaFFLe-C), ``"server"`` (BaFFLe-S) or ``"both"``.
    start_round:
        Rounds before this index are auto-accepted (but still extend the
        trusted history) — the paper's "we enable the defense after the
        first 20 rounds in order to build a look-back window of decent
        size" (Sec. VI-B).
    dropout_rate:
        Probability that a selected validating client never responds.
        Footnote 1 of the paper: the server "accepts the model by default
        unless q many clients suggest rejection", so silent validators
        simply contribute no vote.
    quorum_policy:
        What to do when a *requested* vote goes missing (a dropped-vote
        fault, a validator that died after sampling): ``"strict"`` stalls
        the round (raises :class:`~repro.fl.faults.QuorumStallError`),
        ``"degrade"`` decides over the reduced quorum once at least
        ``quorum_min`` votes arrived.  Server-side dropout drawn by
        ``dropout_rate`` is *not* a missing vote — those validators were
        never asked (paper footnote 1).
    quorum_min:
        Minimum arrived client votes the ``degrade`` policy accepts as a
        decidable quorum.
    """

    lookback: int = 20
    quorum: int = 5
    num_validators: int = 10
    mode: str = "both"
    start_round: int = 0
    dropout_rate: float = 0.0
    quorum_policy: str = "strict"
    quorum_min: int = 1

    def __post_init__(self) -> None:
        if self.lookback < 4:
            raise ValueError(f"lookback must be >= 4, got {self.lookback}")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError(
                f"dropout_rate must be in [0, 1), got {self.dropout_rate}"
            )
        if self.quorum_policy not in QUORUM_POLICIES:
            raise ValueError(
                f"quorum_policy must be one of {QUORUM_POLICIES}, "
                f"got {self.quorum_policy!r}"
            )
        if self.quorum_min < 1:
            raise ValueError(
                f"quorum_min must be >= 1, got {self.quorum_min}"
            )
        if self.mode != "server" and self.quorum_min > self.num_validators:
            raise ValueError(
                f"quorum_min must be <= num_validators "
                f"({self.num_validators}), got {self.quorum_min}"
            )
        if self.mode != "server":
            if self.num_validators < 1:
                raise ValueError("need at least one validating client")
            max_votes = self.num_validators + (1 if self.mode == "both" else 0)
            if not 1 <= self.quorum <= max_votes:
                raise ValueError(
                    f"quorum must be in [1, {max_votes}], got {self.quorum}"
                )


class ValidatorPool:
    """The population of validation-capable clients, indexed by client id."""

    def __init__(self, validators: dict[int, Validator]) -> None:
        if not validators:
            raise ValueError("validator pool cannot be empty")
        self._validators = dict(validators)
        self._ids = sorted(self._validators)

    @classmethod
    def from_datasets(
        cls, datasets: dict[int, Dataset], **validator_kwargs
    ) -> "ValidatorPool":
        """Build a pool of honest misclassification validators from data shards.

        ``validator_kwargs`` are forwarded to every
        :class:`~repro.core.validation.MisclassificationValidator`
        (``normalize``, ``threshold_slack``, ``features``, ...).
        """
        return cls(
            {
                cid: MisclassificationValidator(ds, **validator_kwargs)
                for cid, ds in datasets.items()
            }
        )

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._validators

    def sample_ids(self, count: int, rng: np.random.Generator) -> list[int]:
        """Choose ``count`` distinct validating clients uniformly at random."""
        if count > len(self._ids):
            raise ValueError(f"cannot sample {count} validators from {len(self._ids)}")
        chosen = rng.choice(len(self._ids), size=count, replace=False)
        return [self._ids[i] for i in chosen]

    def get(self, client_id: int) -> Validator:
        return self._validators[client_id]

    def as_dict(self) -> dict[int, Validator]:
        """The ``{client_id: validator}`` population (a copy)."""
        return dict(self._validators)


@dataclass
class PendingReview:
    """One round's in-flight review: draws are done, votes are not.

    Created by :meth:`BaffleDefense.review_async`.  ``active_ids`` records
    the sampled (post-dropout) validating clients of this round (a replay
    re-derives the same sample from its restored RNG snapshot);
    ``epoch`` is the history's rollback generation at submission, letting
    consumers detect that the context this review was built on has been
    withdrawn.  ``override_accept`` is a fault-injection seam
    (:class:`ForcedRejectDefense`, chaos tests, the rollback benchmark):
    when set, it replaces the quorum outcome after the votes resolved.
    """

    round_idx: int
    candidate: Network
    context: ValidationContext
    candidate_version: int
    active_ids: list[int] = field(default_factory=list)
    votes: PendingVotes | None = None
    epoch: int = 0
    #: The newest history version preceding this round's optimistic commit
    #: — the rollback anchor (set by :meth:`BaffleDefense.commit_optimistic`).
    prev_version: int | None = None
    override_accept: bool | None = None


class BaffleDefense:
    """Implements :class:`repro.fl.simulation.Defense` with Algorithm 1.

    Parameters
    ----------
    config:
        Quorum / look-back / mode settings.
    validator_pool:
        The client-side validators (ignored in ``server`` mode but still
        accepted, so experiments can switch modes over one setup).
    server_validator:
        The server's own validator (required for ``server`` and ``both``).
    """

    def __init__(
        self,
        config: BaffleConfig,
        validator_pool: ValidatorPool | None = None,
        server_validator: Validator | None = None,
    ) -> None:
        if config.mode in ("clients", "both") and validator_pool is None:
            raise ValueError(f"mode {config.mode!r} needs a validator pool")
        if config.mode in ("server", "both") and server_validator is None:
            raise ValueError(f"mode {config.mode!r} needs a server validator")
        self.config = config
        self.validator_pool = validator_pool
        self.server_validator = server_validator
        self.history = ModelHistory(max_models=config.lookback + 1)
        #: Shared ``(validator, version) -> ErrorProfile`` table: collects
        #: the profiles worker processes compute so commit-time reuse
        #: (:meth:`record_outcome`) reaches them next round.  Evicted in
        #: lock-step with the history so stale versions never accumulate.
        self.profile_table = ValidatorProfileTable()
        self.history.add_eviction_listener(self.profile_table.evict_version)
        self._executor: RoundExecutor | None = None
        self._streams: RngStreams | None = None
        self._tracer: Tracer | NullTracer = NULL_TRACER

    def bind_tracer(self, tracer: "Tracer | NullTracer") -> None:
        """Attach the run's tracer (pure instrumentation, rebindable).

        Called by :class:`~repro.fl.simulation.FederatedSimulation` when it
        runs traced, so review resolution (vote collection, the server's
        own vote) shows up as spans on the shared timeline.
        """
        self._tracer = tracer

    def bind_runtime(
        self,
        executor: RoundExecutor,
        streams: RngStreams,
        store: ModelStore | None = None,
    ) -> None:
        """Attach the round executor, keyed rng streams and model store.

        :class:`~repro.fl.simulation.FederatedSimulation` calls this at
        construction so validator votes draw from per-``(round, validator)``
        streams and fan out through the same executor as client training.
        When the simulation supplies its :class:`ModelStore`, the history
        migrates onto it — workers then resolve candidate and history
        version keys from one arena.  Unbound (standalone) defenses fall
        back to consuming the ``rng`` passed to :meth:`review`
        sequentially, preserving the historical behavior.
        """
        self._executor = executor
        self._streams = streams
        if store is not None:
            self.history.bind_store(store)
        # Server-only mode never fans out client votes, so don't ship the
        # validator population (each holding a data shard) to the workers.
        if self.validator_pool is not None and self.config.mode in ("clients", "both"):
            executor.bind(
                validator_pool=self.validator_pool,
                profile_table=self.profile_table,
            )

    # ------------------------------------------------------------------
    # Defense protocol
    # ------------------------------------------------------------------
    def review(
        self, candidate: Network, round_idx: int, rng: np.random.Generator
    ) -> DefenseDecision:
        """Algorithm 1: collect verdicts and apply the quorum rule."""
        if round_idx < self.config.start_round:
            return DefenseDecision(accepted=True)
        # Stage the candidate in the store before fanning out: a
        # shared-memory executor then ships only this version key to the
        # workers, and an accepting commit adopts the already-stored vector
        # instead of copying the weights again.
        context = ValidationContext(
            candidate=candidate,
            history=self.history.entries(),
            candidate_version=self.history.stage_candidate(candidate),
        )

        client_votes: dict[int, int] = {}
        active: list[int] = []
        if self.config.mode in ("clients", "both"):
            assert self.validator_pool is not None
            active = self._sample_active(rng)
            with self._tracer.span(
                "validate.collect", round_idx=round_idx,
                validators=len(active),
            ):
                if self._streams is not None:
                    assert self._executor is not None  # set with _streams in bind_runtime
                    client_votes = self._executor.run_validators(
                        self.validator_pool, active, context, round_idx,
                        self._streams,
                    )
                else:  # standalone defense: classic sequential stream
                    for cid in active:
                        client_votes[cid] = self.validator_pool.get(cid).vote(
                            context, rng
                        )

        server_vote: int | None = None
        if self.config.mode in ("server", "both"):
            assert self.server_validator is not None
            server_rng = (
                self._streams.server_rng(round_idx)
                if self._streams is not None
                else rng
            )
            with self._tracer.span(
                "validate.server_vote", round_idx=round_idx
            ):
                server_vote = self.server_validator.vote(context, server_rng)
        return self._decide(
            client_votes, server_vote, expected=len(active),
            round_idx=round_idx,
        )

    def _sample_active(self, rng: np.random.Generator) -> list[int]:
        """Draw this round's validating clients (sampling + dropout).

        Sampling and dropout are server-side decisions drawn from the
        sequential rng; the votes themselves are order-independent.
        """
        assert self.validator_pool is not None
        active: list[int] = []
        for cid in self.validator_pool.sample_ids(self.config.num_validators, rng):
            if (
                self.config.dropout_rate
                and rng.random() < self.config.dropout_rate
            ):
                continue  # silent validator: no vote (paper footnote 1)
            active.append(cid)
        return active

    def _decide(
        self,
        client_votes: dict[int, int],
        server_vote: int | None,
        expected: int | None = None,
        round_idx: int | None = None,
    ) -> DefenseDecision:
        """Apply the quorum rule to the collected votes.

        ``expected`` is how many client votes were *requested* this round
        (the post-dropout active sample).  Fewer arriving — a dropped-vote
        fault, a validator that died after sampling — triggers the
        configured quorum policy: ``strict`` stalls the round with
        :class:`~repro.fl.faults.QuorumStallError`; ``degrade`` shrinks
        the quorum and decides over the votes that did arrive, provided
        at least ``quorum_min`` of them did.
        """
        degraded = False
        if expected is not None and len(client_votes) < expected:
            arrived = len(client_votes)
            if self.config.quorum_policy == "strict":
                raise QuorumStallError(
                    f"round {round_idx}: {expected - arrived} of {expected} "
                    "validator votes missing and quorum_policy='strict'; "
                    "use quorum_policy='degrade' to decide over the "
                    "reduced quorum"
                )
            if arrived < self.config.quorum_min:
                raise QuorumStallError(
                    f"round {round_idx}: only {arrived} of {expected} votes "
                    f"arrived, below quorum_min={self.config.quorum_min}"
                )
            degraded = True
            self._note_degradation(round_idx, expected, arrived)
        reject_votes = sum(client_votes.values()) + (server_vote or 0)
        if self.config.mode == "server":
            accepted = server_vote == 0
        else:
            accepted = reject_votes < self.config.quorum
        return DefenseDecision(
            accepted=accepted,
            reject_votes=reject_votes,
            num_validators=len(client_votes) + (0 if server_vote is None else 1),
            client_votes=client_votes,
            server_vote=server_vote,
            quorum_degraded=degraded,
        )

    def _note_degradation(
        self, round_idx: int | None, expected: int, arrived: int
    ) -> None:
        """Record one reduced-quorum decision (ledger + traced mirror)."""
        if self._executor is not None:
            self._executor.resilience.inc("quorum_degradations")
        if self._tracer.enabled:
            self._tracer.metrics.counter(
                "resilience.quorum_degradations"
            ).inc()
            self._tracer.event(
                "resilience.quorum_degradations", cat="resilience",
                round_idx=round_idx, expected=expected, arrived=arrived,
            )

    def record_outcome(self, candidate: Network, accepted: bool) -> None:
        """Accepted models extend the trusted history; rejected ones do not.

        On acceptance every validator that just profiled this candidate is
        told its committed history version, so the profile computed during
        :meth:`review` is reused instead of recomputed next round — and the
        shared profile table files the worker-computed profiles the same
        way, so the reuse also reaches process-pool validators.
        """
        if not accepted:
            self.history.discard_staged()
            self.profile_table.discard_staged()
            return
        if self.history.staged_version is not None:
            version = self.history.commit_staged()
        else:  # pre-``start_round`` rounds are accepted without review
            version = self.history.append(candidate)
        self.profile_table.commit_staged(version)
        self._note_committed(candidate, version)

    def _validators(self) -> list[Validator]:
        validators: list[Validator] = []
        if self.validator_pool is not None:
            validators.extend(self.validator_pool.as_dict().values())
        if self.server_validator is not None:
            validators.append(self.server_validator)
        return validators

    def _note_committed(self, candidate: Network, version: int) -> None:
        for validator in self._validators():
            note = getattr(validator, "note_committed", None)
            if callable(note):
                note(candidate, version)

    # ------------------------------------------------------------------
    # Asynchronous (pipelined) review protocol
    # ------------------------------------------------------------------
    def review_async(
        self,
        candidate: Network,
        round_idx: int,
        rng: np.random.Generator,
    ) -> "PendingReview | DefenseDecision":
        """Draw, stage and submit — but do not wait for the quorum.

        Consumes exactly the server-side random draws the synchronous
        :meth:`review` would (validator sampling and dropout), so a
        pipelined run's sequential RNG stream stays byte-identical to a
        synchronous run's.  The rollback-replay path passes a detached
        generator restored to the original round's state as ``rng``, so a
        replay re-derives the same sample without consuming fresh
        randomness.  Pre-``start_round`` rounds return their
        :class:`DefenseDecision` directly (nothing to await); the caller
        then applies :meth:`record_outcome` as usual.
        """
        if round_idx < self.config.start_round:
            return DefenseDecision(accepted=True)
        if self._executor is None or self._streams is None:
            raise RuntimeError(
                "review_async needs bind_runtime(...); pipelined execution "
                "runs through FederatedSimulation"
            )
        context = ValidationContext(
            candidate=candidate,
            history=self.history.entries(),
            candidate_version=self.history.stage_candidate(candidate),
        )
        active: list[int] = []
        votes: PendingVotes | None = None
        if self.config.mode in ("clients", "both"):
            assert self.validator_pool is not None
            active = self._sample_active(rng)
            votes = self._executor.submit_validators(
                self.validator_pool, active, context, round_idx, self._streams
            )
        assert context.candidate_version is not None
        return PendingReview(
            round_idx=round_idx,
            candidate=candidate,
            context=context,
            candidate_version=context.candidate_version,
            active_ids=active,
            votes=votes,
            epoch=self.history.epoch,
        )

    def commit_optimistic(self, pending: PendingReview) -> int:
        """Adopt the pending round's candidate provisionally.

        Records the rollback anchor (the newest history version preceding
        this commit) on the pending review, then commits the staged
        candidate optimistically — subsequent rounds train on it while its
        quorum is still open.
        """
        pending.prev_version = self.history.newest_version()
        version = self.history.commit_optimistic()
        assert version == pending.candidate_version
        return version

    def resolve_review(self, pending: PendingReview) -> DefenseDecision:
        """Collect the votes and apply the quorum rule (blocks).

        Rounds must resolve in FIFO order — the server validator's vote is
        computed here, and its per-version profile caching assumes the
        same monotonically advancing history a synchronous run sees.
        """
        if pending.epoch != self.history.epoch:
            raise RuntimeError(
                f"stale pending review for round {pending.round_idx}: its "
                "history snapshot was rolled back (epoch "
                f"{pending.epoch} != {self.history.epoch}); cancel and "
                "replay instead of resolving"
            )
        with self._tracer.span(
            "validate.collect", round_idx=pending.round_idx,
            validators=len(pending.active_ids),
        ):
            client_votes = (
                pending.votes.collect() if pending.votes is not None else {}
            )
        server_vote: int | None = None
        if self.config.mode in ("server", "both"):
            assert self.server_validator is not None
            assert self._streams is not None
            with self._tracer.span(
                "validate.server_vote", round_idx=pending.round_idx
            ):
                server_vote = self.server_validator.vote(
                    pending.context, self._streams.server_rng(pending.round_idx)
                )
        decision = self._decide(
            client_votes, server_vote, expected=len(pending.active_ids),
            round_idx=pending.round_idx,
        )
        if pending.override_accept is not None:
            decision = replace(decision, accepted=pending.override_accept)
        return decision

    def finalize_review(self, pending: PendingReview) -> None:
        """Promote an accepted round's optimistic commit (FIFO)."""
        self.history.finalize(pending.candidate_version)
        self.profile_table.commit_staged(pending.candidate_version)
        self._note_committed(pending.candidate, pending.candidate_version)

    def rollback_review(self, pending: PendingReview) -> list[int]:
        """Withdraw a rejected round's commit and every commit after it.

        Returns the withdrawn versions.  The history rollback fires the
        eviction listeners (clearing the shared profile table); staged
        profiles of the rejected candidate and validator-local caches of
        every withdrawn version are invalidated here.  Store references
        held by in-flight validator tasks keep the withdrawn versions
        resolvable until those stragglers finish.
        """
        rolled_back = self.history.rollback_to(pending.prev_version)
        self.profile_table.discard_staged(pending.candidate_version)
        for validator in self._validators():
            invalidate = getattr(validator, "invalidate_profiles", None)
            if callable(invalidate):
                invalidate(rolled_back)
        return rolled_back

    def cancel_review(self, pending: PendingReview) -> None:
        """Abandon a speculative successor of a rolled-back round.

        Its in-flight votes are discarded (references released when the
        straggler tasks finish) and its staged profiles dropped; the
        simulation replays the round against the rolled-back history.
        """
        if pending.votes is not None:
            pending.votes.abandon()
        self.profile_table.discard_staged(pending.candidate_version)

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------
    def prime(self, model: Network) -> None:
        """Seed the history with a model accepted before the defense started.

        The paper enables the defense only once the global model has
        stabilised ("we enable the defense after the first 20 rounds in
        order to build a look-back window of decent size"); priming lets
        experiments replay those pre-defense models into the history.
        """
        self.history.append(model)


class ForcedRejectDefense(BaffleDefense):
    """A :class:`BaffleDefense` whose quorum outcome is scripted per round.

    Fault injection for rollback testing and the pipelined benchmark's
    refcount audit: rounds in ``reject_rounds`` are rejected regardless of
    the collected votes (the votes still flow — sampling, transport and
    profile bookkeeping are exercised unchanged), so a rollback can be
    forced at a known round in both execution modes and the resulting
    trajectories compared.  Synchronous and pipelined runs with the same
    ``reject_rounds`` commit bit-identical models: the pipelined engine
    replays the speculative suffix a forced rejection invalidates.
    """

    def __init__(self, *args, reject_rounds: Sequence[int] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reject_rounds = frozenset(reject_rounds)

    def review(
        self, candidate: Network, round_idx: int, rng: np.random.Generator
    ) -> DefenseDecision:
        decision = super().review(candidate, round_idx, rng)
        if round_idx in self.reject_rounds:
            return replace(decision, accepted=False)
        return decision

    def review_async(
        self,
        candidate: Network,
        round_idx: int,
        rng: np.random.Generator,
    ) -> "PendingReview | DefenseDecision":
        pending = super().review_async(candidate, round_idx, rng)
        if round_idx in self.reject_rounds:
            if isinstance(pending, DefenseDecision):
                return replace(pending, accepted=False)
            pending.override_accept = False
        return pending
