"""BaFFLe: the paper's primary contribution.

Two composable pieces:

1. **Model validation** (paper Sec. V, Algorithm 2): given the candidate
   global model, a history of previously *accepted* models, and a local
   validation dataset, compute per-class error-variation feature vectors
   (eqs. 2-3) and flag the candidate when its Local Outlier Factor against
   recent history exceeds the empirical mean LOF of trusted rounds.
   Implemented by :class:`~repro.core.validation.MisclassificationValidator`
   on top of :func:`repro.core.lof.local_outlier_factor` (Breunig et al.,
   SIGMOD 2000 — implemented from scratch).

2. **Feedback loop** (paper Sec. IV, Algorithm 1): every round the server
   ships the candidate and the model history to randomly chosen validating
   clients; each returns a binary verdict from its private data; the server
   rejects when at least ``q`` (quorum threshold) clients vote "poisoned".
   Implemented by :class:`~repro.core.baffle.BaffleDefense`, which supports
   the paper's three configurations: clients-only (BaFFLe-C), server-only
   (BaFFLe-S), and both (BaFFLe).

:mod:`repro.core.quorum` carries the vote-robustness analysis of Sec. IV-B
(bounds on the quorum threshold ``q`` and the tolerable number of malicious
validators ``n_M`` as a function of the honest-accuracy fraction ``rho``).
"""

from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.errors import (
    ErrorProfile,
    error_variation_vector,
    model_error_profile,
    stacked_error_profiles,
)
from repro.core.history import ModelHistory
from repro.core.lof import local_outlier_factor, lof_scores
from repro.core.quorum import (
    estimate_rho_from_votes,
    max_tolerable_malicious,
    quorum_bounds,
    recommended_quorum,
)
from repro.core.validation import (
    ConstantVoteValidator,
    MisclassificationValidator,
    ValidationContext,
    ValidationReport,
    Validator,
)

__all__ = [
    "BaffleConfig",
    "BaffleDefense",
    "ConstantVoteValidator",
    "ErrorProfile",
    "MisclassificationValidator",
    "ModelHistory",
    "ValidationContext",
    "ValidationReport",
    "Validator",
    "ValidatorPool",
    "error_variation_vector",
    "estimate_rho_from_votes",
    "local_outlier_factor",
    "lof_scores",
    "max_tolerable_malicious",
    "model_error_profile",
    "stacked_error_profiles",
    "quorum_bounds",
    "recommended_quorum",
]
