"""Rolling history of accepted global models (Algorithm 1, line 3-4).

The server keeps the latest ``l + 1`` *accepted* models and ships them,
together with the candidate, to every validating client.  Each model gets a
monotonically increasing ``version`` tag so validators can cache their
(expensive) prediction profiles per model.

Storage lives in a :class:`~repro.fl.model_store.ModelStore`: the history
is a *view* over store versions, not an owner of ``Network.clone()``
snapshots.  Appending publishes the model's flat weight vector; eviction
releases the store reference (unlinking the shared-memory segment when the
store is a :class:`~repro.fl.model_store.SharedMemoryModelStore` and no
other consumer holds it).  ``entries()`` materializes ``Network`` views
lazily from the stored vectors — parameter state only, matching what the
transport path has always shipped between processes.

The candidate round-trip uses the staging API: :meth:`stage_candidate`
publishes the candidate once at review time (so a shared-memory executor
ships only its version key to workers), then :meth:`commit_staged` adopts
that exact stored vector into the history — commit is a refcount transfer,
not another copy — or :meth:`discard_staged` releases it on rejection.
Rollback-aware histories (the async-validation follow-up) slot naturally
into this version API: an optimistic commit is ``commit_staged`` plus a
deferred ``release`` of the overwritten suffix.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.fl.model_store import InProcessModelStore, ModelStore
from repro.nn.network import Network


class ModelHistory:
    """A bounded FIFO of store-backed ``(version, model)`` pairs, oldest first."""

    def __init__(self, max_models: int, store: ModelStore | None = None) -> None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        self.max_models = max_models
        self.store = store or InProcessModelStore()
        self._versions: deque[int] = deque()
        self._materialized: dict[int, Network] = {}
        self._template: Network | None = None
        self._staged: int | None = None
        self._evict_listeners: list[Callable[[int], None]] = []

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def is_full(self) -> bool:
        return len(self._versions) == self.max_models

    # ------------------------------------------------------------------
    # Appending / staging
    # ------------------------------------------------------------------
    def append(self, model: Network) -> int:
        """Record an accepted model (published to the store); returns its version."""
        self._ensure_template(model)
        version = self.store.publish_new(model.get_flat())
        return self._commit(version)

    def stage_candidate(self, model: Network) -> int:
        """Publish a candidate for validation without committing it.

        The returned version is live in the store (executors may ship it to
        workers by key) until :meth:`commit_staged` adopts it into the
        history or :meth:`discard_staged` drops it.  Staging over an
        unresolved earlier stage releases the earlier candidate.
        """
        if self._staged is not None:
            self.store.release(self._staged)
        self._ensure_template(model)
        self._staged = self.store.publish_new(model.get_flat())
        return self._staged

    @property
    def staged_version(self) -> int | None:
        return self._staged

    def commit_staged(self) -> int:
        """Adopt the staged candidate as an accepted model (no data copy)."""
        if self._staged is None:
            raise RuntimeError("no candidate is staged")
        version, self._staged = self._staged, None
        return self._commit(version)

    def discard_staged(self) -> None:
        """Release the staged candidate (rejected round)."""
        if self._staged is None:
            return
        version, self._staged = self._staged, None
        self.store.release(version)

    def _commit(self, version: int) -> int:
        self._versions.append(version)
        while len(self._versions) > self.max_models:
            evicted = self._versions.popleft()
            self._materialized.pop(evicted, None)
            self.store.release(evicted)
            for listener in self._evict_listeners:
                listener(evicted)
        return version

    def _ensure_template(self, model: Network) -> None:
        if self._template is None:
            self._template = model.clone()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple[int, Network]]:
        """The retained ``(version, model)`` pairs, oldest first."""
        return [(version, self._model_for(version)) for version in self._versions]

    def versions(self) -> list[int]:
        """Versions currently retained, oldest first."""
        return list(self._versions)

    def latest(self) -> tuple[int, Network]:
        """The most recently accepted model."""
        if not self._versions:
            raise LookupError("history is empty")
        version = self._versions[-1]
        return version, self._model_for(version)

    def _model_for(self, version: int) -> Network:
        model = self._materialized.get(version)
        if model is None:
            assert self._template is not None  # set by the append that stored it
            model = self._template.clone()
            model.set_flat(self.store.get(version))
            self._materialized[version] = model
        return model

    # ------------------------------------------------------------------
    # Store binding / eviction hooks
    # ------------------------------------------------------------------
    def bind_store(self, store: ModelStore) -> None:
        """Move the history onto a different store, keeping version numbers.

        Called when a simulation hands a defense its (possibly
        shared-memory) store: entries accepted before the hand-off — e.g.
        via :meth:`~repro.core.baffle.BaffleDefense.prime` — migrate so
        workers can resolve every history version from one arena.
        """
        if store is self.store:
            return
        if self._staged is not None:
            raise RuntimeError("cannot rebind the store while a candidate is staged")
        for version in self._versions:
            store.adopt(version, self.store.get(version))
            self.store.release(version)
        self.store = store

    def add_eviction_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(version)`` whenever a version leaves the history."""
        self._evict_listeners.append(listener)
