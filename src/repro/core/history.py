"""Rolling history of accepted global models (Algorithm 1, line 3-4).

The server keeps the latest ``l + 1`` *accepted* models and ships them,
together with the candidate, to every validating client.  Each model gets a
monotonically increasing ``version`` tag so validators can cache their
(expensive) prediction profiles per model.

Storage lives in a :class:`~repro.fl.model_store.ModelStore`: the history
is a *view* over store versions, not an owner of ``Network.clone()``
snapshots.  Appending publishes the model's flat weight vector; eviction
releases the store reference (unlinking the shared-memory segment when the
store is a :class:`~repro.fl.model_store.SharedMemoryModelStore` and no
other consumer holds it).  ``entries()`` materializes ``Network`` views
lazily from the stored vectors — parameter state only, matching what the
transport path has always shipped between processes.  Stores may compress
at the publish seam (:mod:`repro.fl.compression`): ``store.get`` returns
the *decoded* vector, so with a lossy codec the history view is exactly
what workers decode from the arena — server-side and worker-side
validation always judge the same bytes.

The candidate round-trip uses the staging API: :meth:`stage_candidate`
publishes the candidate once at review time (so a shared-memory executor
ships only its version key to workers), then :meth:`commit_staged` adopts
that exact stored vector into the history — commit is a refcount transfer,
not another copy — or :meth:`discard_staged` releases it on rejection.

Optimistic commits (pipelined execution)
----------------------------------------
The pipelined round loop commits a candidate *before* its validator quorum
resolves: :meth:`commit_optimistic` adopts the staged vector provisionally,
:meth:`finalize` promotes it once the quorum accepts, and
:meth:`rollback_to` withdraws the provisional suffix when a late rejection
arrives.  Two properties make the rollback safe:

- **Deferred eviction**: an entry displaced from the look-back window by a
  provisional commit is *parked*, not released — if the displacing commit
  rolls back, the parked entry is restored to the window bit-for-bit; only
  :meth:`finalize` actually releases it (and fires eviction listeners).
- **Epoch tags**: every rollback bumps :attr:`epoch`; each retained version
  remembers the epoch it was committed under (:meth:`version_epoch`), so
  consumers holding pre-rollback state (in-flight validator votes, cached
  contexts) can detect that their snapshot was withdrawn.

Store refcounts carry the rest: a rolled-back version stays resolvable for
in-flight validators (who hold their own store references, see
:class:`~repro.fl.parallel.PendingVotes`) until the last reference drops.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.fl.model_store import InProcessModelStore, ModelStore
from repro.nn.network import Network


class ModelHistory:
    """A bounded FIFO of store-backed ``(version, model)`` pairs, oldest first."""

    def __init__(self, max_models: int, store: ModelStore | None = None) -> None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        self.max_models = max_models
        self.store = store or InProcessModelStore()
        self._versions: deque[int] = deque()
        self._materialized: dict[int, Network] = {}
        self._template: Network | None = None
        self._staged: int | None = None
        self._evict_listeners: list[Callable[[int], None]] = []
        #: Optimistically committed versions awaiting quorum, oldest first.
        self._provisional: list[int] = []
        #: ``provisional version -> entries its commit displaced`` (their
        #: eviction is deferred until that commit is finalized).
        self._parked: dict[int, list[int]] = {}
        self._epoch = 0
        self._version_epoch: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def is_full(self) -> bool:
        return len(self._versions) == self.max_models

    # ------------------------------------------------------------------
    # Appending / staging
    # ------------------------------------------------------------------
    def append(self, model: Network) -> int:
        """Record an accepted model (published to the store); returns its version."""
        self._ensure_template(model)
        version = self.store.publish_new(model.get_flat())
        return self._commit(version)

    def stage_candidate(self, model: Network) -> int:
        """Publish a candidate for validation without committing it.

        The returned version is live in the store (executors may ship it to
        workers by key) until :meth:`commit_staged` adopts it into the
        history or :meth:`discard_staged` drops it.  Staging over an
        unresolved earlier stage releases the earlier candidate.
        """
        if self._staged is not None:
            self.store.release(self._staged)
        self._ensure_template(model)
        self._staged = self.store.publish_new(model.get_flat())
        return self._staged

    @property
    def staged_version(self) -> int | None:
        return self._staged

    def commit_staged(self) -> int:
        """Adopt the staged candidate as an accepted model (no data copy)."""
        if self._staged is None:
            raise RuntimeError("no candidate is staged")
        version, self._staged = self._staged, None
        return self._commit(version)

    def discard_staged(self) -> None:
        """Release the staged candidate (rejected round)."""
        if self._staged is None:
            return
        version, self._staged = self._staged, None
        self.store.release(version)

    def _commit(self, version: int, provisional: bool = False) -> int:
        if not provisional and self._provisional:
            raise RuntimeError(
                "cannot mix plain commits with unresolved optimistic commits; "
                "finalize or roll back the provisional suffix first"
            )
        self._versions.append(version)
        self._version_epoch[version] = self._epoch
        if provisional:
            self._provisional.append(version)
            self._parked[version] = []
        while len(self._versions) > self.max_models:
            evicted = self._versions.popleft()
            if provisional:
                # Deferred eviction: the displaced entry must be restorable
                # if this commit rolls back; finalize() releases it.
                self._parked[version].append(evicted)
            else:
                self._evict(evicted)
        return version

    def _evict(self, version: int) -> None:
        self._materialized.pop(version, None)
        self._version_epoch.pop(version, None)
        self.store.release(version)
        for listener in self._evict_listeners:
            listener(version)

    def _ensure_template(self, model: Network) -> None:
        if self._template is None:
            self._template = model.clone()

    # ------------------------------------------------------------------
    # Optimistic commits / rollback (pipelined execution)
    # ------------------------------------------------------------------
    def commit_optimistic(self) -> int:
        """Adopt the staged candidate *provisionally* (quorum still open).

        The version enters the window immediately — subsequent rounds'
        validation contexts see it, exactly as they would after a regular
        commit — but any entry it displaces is parked rather than released,
        and the commit can be withdrawn by :meth:`rollback_to` until
        :meth:`finalize` promotes it.
        """
        if self._staged is None:
            raise RuntimeError("no candidate is staged")
        version, self._staged = self._staged, None
        return self._commit(version, provisional=True)

    def finalize(self, version: int) -> None:
        """Promote the oldest provisional commit after quorum acceptance.

        Finalization is FIFO (quorums resolve in round order): ``version``
        must be the oldest outstanding optimistic commit.  The entries its
        commit displaced are released now — this is the deferred half of
        the optimistic eviction — and eviction listeners fire for them.
        """
        if not self._provisional or self._provisional[0] != version:
            raise RuntimeError(
                f"version {version} is not the oldest provisional commit "
                f"(outstanding: {self._provisional})"
            )
        self._provisional.pop(0)
        for evicted in self._parked.pop(version):
            self._evict(evicted)

    def rollback_to(self, version: int | None) -> list[int]:
        """Withdraw every provisional commit newer than ``version``.

        ``version`` is the newest entry that should survive (``None``
        withdraws the whole provisional suffix).  Withdrawn versions leave
        the window, their parked (displaced) entries are restored in place,
        their history references are released — refcounts keep them alive
        in the store for any in-flight consumer holding its own reference —
        and eviction listeners fire for them.  Bumps :attr:`epoch` when
        anything was withdrawn.  Returns the withdrawn versions, ascending.
        """
        rolled_back: list[int] = []
        while self._provisional and (
            version is None or self._provisional[-1] > version
        ):
            withdrawn = self._provisional.pop()
            self._versions.remove(withdrawn)
            for parked in reversed(self._parked.pop(withdrawn)):
                self._versions.appendleft(parked)
            self._materialized.pop(withdrawn, None)
            self._version_epoch.pop(withdrawn, None)
            self.store.release(withdrawn)
            for listener in self._evict_listeners:
                listener(withdrawn)
            rolled_back.append(withdrawn)
        if rolled_back:
            self._epoch += 1
        return rolled_back[::-1]

    @property
    def epoch(self) -> int:
        """Rollback generation counter (bumped by every :meth:`rollback_to`)."""
        return self._epoch

    def version_epoch(self, version: int) -> int:
        """The epoch a retained version was committed under."""
        return self._version_epoch[version]

    def provisional_versions(self) -> list[int]:
        """Optimistic commits still awaiting their quorum, oldest first."""
        return list(self._provisional)

    def newest_version(self) -> int | None:
        """The newest retained version (rollback anchor), if any."""
        return self._versions[-1] if self._versions else None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple[int, Network]]:
        """The retained ``(version, model)`` pairs, oldest first."""
        return [(version, self._model_for(version)) for version in self._versions]

    def versions(self) -> list[int]:
        """Versions currently retained, oldest first."""
        return list(self._versions)

    def latest(self) -> tuple[int, Network]:
        """The most recently accepted model."""
        if not self._versions:
            raise LookupError("history is empty")
        version = self._versions[-1]
        return version, self._model_for(version)

    def _model_for(self, version: int) -> Network:
        model = self._materialized.get(version)
        if model is None:
            assert self._template is not None  # set by the append that stored it
            model = self._template.clone()
            model.set_flat(self.store.get(version))
            self._materialized[version] = model
        return model

    # ------------------------------------------------------------------
    # Store binding / eviction hooks
    # ------------------------------------------------------------------
    def bind_store(self, store: ModelStore) -> None:
        """Move the history onto a different store, keeping version numbers.

        Called when a simulation hands a defense its (possibly
        shared-memory) store: entries accepted before the hand-off — e.g.
        via :meth:`~repro.core.baffle.BaffleDefense.prime` — migrate so
        workers can resolve every history version from one arena.
        """
        if store is self.store:
            return
        if self._staged is not None:
            raise RuntimeError("cannot rebind the store while a candidate is staged")
        if self._provisional:
            raise RuntimeError(
                "cannot rebind the store while optimistic commits are unresolved"
            )
        for version in self._versions:
            store.adopt(version, self.store.get(version))
            self.store.release(version)
        self.store = store

    def add_eviction_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(version)`` whenever a version leaves the history."""
        self._evict_listeners.append(listener)
