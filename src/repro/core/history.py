"""Rolling history of accepted global models (Algorithm 1, line 3-4).

The server keeps the latest ``l + 1`` *accepted* models and ships them,
together with the candidate, to every validating client.  Each model gets a
monotonically increasing ``version`` tag so validators can cache their
(expensive) prediction profiles per model.
"""

from __future__ import annotations

from collections import deque

from repro.nn.network import Network


class ModelHistory:
    """A bounded FIFO of ``(version, model)`` pairs, oldest first."""

    def __init__(self, max_models: int) -> None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        self.max_models = max_models
        self._entries: deque[tuple[int, Network]] = deque(maxlen=max_models)
        self._next_version = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) == self.max_models

    def append(self, model: Network) -> int:
        """Record an accepted model (stored as a snapshot); returns its version."""
        version = self._next_version
        self._next_version += 1
        self._entries.append((version, model.clone()))
        return version

    def entries(self) -> list[tuple[int, Network]]:
        """The retained ``(version, model)`` pairs, oldest first."""
        return list(self._entries)

    def versions(self) -> list[int]:
        """Versions currently retained, oldest first."""
        return [version for version, _ in self._entries]

    def latest(self) -> tuple[int, Network]:
        """The most recently accepted model."""
        if not self._entries:
            raise LookupError("history is empty")
        return self._entries[-1]
