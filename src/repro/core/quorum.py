"""Vote-robustness calibration (paper Sec. IV-B and VI-C).

With ``n`` validating clients of which ``n_M`` are malicious, and a
fraction ``rho`` of the honest validators assessing the model *correctly*
(non-IID data makes some honest validators err), the paper derives:

- valid quorum range:
  ``n_M + (1 - rho) * (n - n_M)  <  q  <=  rho * (n - n_M)``
  so that wrong voters (malicious or naive) cannot reject a clean model and
  aware honest voters can reject a poisoned one;
- recommended setting: ``q := rho * (n - n_M)``;
- tolerable malicious validators: requiring the correct honest voters to
  outnumber the malicious ones, ``(1 - rho) * (n - n_M) > n_M`` gives
  ``n_M < (1 - rho) * n / (2 - rho)``.

The functions below evaluate these formulas and also estimate ``rho``
empirically from recorded vote traces (paper Fig. 5 estimates
``rho ~ 0.5`` from the distribution of reject votes on adaptively poisoned
models).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def quorum_bounds(n: int, n_malicious: int, rho: float) -> tuple[float, float]:
    """``(lower, upper)`` of the valid quorum range; valid iff lower < upper.

    ``q`` must satisfy ``lower < q <= upper``.
    """
    _check_args(n, n_malicious, rho)
    honest = n - n_malicious
    lower = n_malicious + (1.0 - rho) * honest
    upper = rho * honest
    return lower, upper


def recommended_quorum(n: int, n_malicious: int, rho: float) -> int:
    """The paper's setting ``q := rho * (n - n_M)``, floored to an integer.

    Raises ``ValueError`` when the valid range is empty (the deployment
    cannot distinguish malicious from erring-honest votes).
    """
    lower, upper = quorum_bounds(n, n_malicious, rho)
    if lower >= upper:
        raise ValueError(
            f"no valid quorum for n={n}, n_M={n_malicious}, rho={rho}: "
            f"range ({lower:.2f}, {upper:.2f}] is empty"
        )
    return int(np.floor(upper))


def max_tolerable_malicious(n: int, rho: float) -> float:
    """Upper bound on tolerable malicious validators: ``(1-rho)n / (2-rho)``.

    E.g. ``n = 10, rho = 0.5`` gives ``n_M < 3.33`` (paper Sec. VI-C).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    return (1.0 - rho) * n / (2.0 - rho)


def estimate_rho_from_votes(
    reject_vote_counts: Sequence[int], num_validators: int
) -> float:
    """Estimate ``rho`` from reject-vote counts on *known-poisoned* rounds.

    ``rho`` is read as the worst-case fraction of honest validators that
    judged a poisoned model correctly: the minimum observed reject share.
    The paper reads Fig. 5 the same way ("most of these injections were
    detected by 5 or more validating clients ... i.e. rho = 0.5").
    """
    if not reject_vote_counts:
        raise ValueError("need at least one poisoned-round vote count")
    if num_validators < 1:
        raise ValueError(f"num_validators must be >= 1, got {num_validators}")
    counts = np.asarray(reject_vote_counts, dtype=np.float64)
    if counts.min() < 0 or counts.max() > num_validators:
        raise ValueError("vote counts must lie in [0, num_validators]")
    return float(counts.min() / num_validators)


def _check_args(n: int, n_malicious: int, rho: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= n_malicious < n:
        raise ValueError(f"n_malicious must be in [0, {n}), got {n_malicious}")
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
