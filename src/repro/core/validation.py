"""Model validation via per-class misclassification analysis (Algorithm 2).

Given the candidate global model ``G``, the history of the latest ``l + 1``
accepted models ``(G_0, ..., G_l)``, and a local dataset ``D``, the
validator:

1. computes the error-variation vectors ``v_i = v(G_{i-1}, G_i, D)`` for the
   accepted pairs (the *trusted* metric values) and
   ``v_new = v(G_l, G, D)`` for the candidate;
2. sets ``k = ceil(l / 2)`` and ``h = ceil(3 * l / 4)``;
3. scores each trusted index ``i in [h .. l]`` with
   ``phi_i = LOF_k(v_i; v_{i-h+1}, ..., v_{i-1})`` — the LOF of that round's
   variation against the ``h - 1`` variations preceding it;
4. sets the rejection threshold ``tau`` to the mean of those trusted LOFs
   (the last ~``l/4`` trusted updates, as the paper prescribes);
5. votes "suspicious" (1) iff the candidate's LOF, computed the same way
   against the ``h - 1`` most recent trusted variations, exceeds ``tau``.

Note on the paper's pseudocode: Algorithm 2 computes the candidate's vector
``v_{l+1}`` but then indexes the decision at ``phi_l`` with threshold
``mean(phi_h .. phi_{l-1})``.  Read literally, the candidate's vector would
never be used.  We follow the self-consistent reading (also matching the
paper's prose): the newest vector is scored like every trusted vector and
compared against the mean LOF of the trusted tail.

A validator instance is bound to one dataset and caches per-model
prediction profiles by model version, so re-validating against overlapping
histories costs one forward pass per *new* model only.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.errors import (
    ErrorProfile,
    error_variation_vector,
    model_error_profile,
    stacked_error_profiles,
)
from repro.core.lof import local_outlier_factor
from repro.data.dataset import Dataset
from repro.nn.network import Network
from repro.nn.stacked import supports_stacking

#: Fewer accepted models than this and Algorithm 2 lacks the trusted-LOF
#: window it needs; the validator then abstains (votes "accept").
MIN_HISTORY_FOR_VOTE = 6


@dataclass(frozen=True)
class ValidationContext:
    """What the server ships to a validating client each round.

    ``history`` holds ``(version, model)`` for the latest accepted models,
    oldest first; ``candidate`` is the round's aggregated global model.
    ``candidate_version`` is the candidate's key in the round's
    :class:`~repro.fl.model_store.ModelStore` when the server staged it
    there (see :meth:`~repro.core.history.ModelHistory.stage_candidate`);
    shared-memory executors ship that key to workers instead of the
    weights.  Validation itself never reads it.
    """

    candidate: Network
    history: Sequence[tuple[int, Network]]
    candidate_version: int | None = None


@runtime_checkable
class Validator(Protocol):
    """Anything that can turn a :class:`ValidationContext` into a vote."""

    def vote(self, context: ValidationContext, rng: np.random.Generator) -> int: ...


@dataclass(frozen=True)
class ValidationReport:
    """Diagnostic detail of one Algorithm 2 evaluation."""

    vote: int
    candidate_lof: float | None
    threshold: float | None
    trusted_lofs: tuple[float, ...]
    abstained: bool


class MisclassificationValidator:
    """Algorithm 2 bound to one validation dataset.

    Parameters
    ----------
    dataset:
        The validator's private labelled data ``D``.
    normalize:
        ``"dataset"`` (paper definition) or ``"class"`` error normalisation;
        see :mod:`repro.nn.metrics`.
    min_history:
        Minimum number of accepted models required before casting real
        votes; smaller histories abstain (vote 0).
    threshold_slack:
        Multiplicative tolerance on the rejection threshold: the vote is
        "suspicious" iff ``LOF > threshold_slack * tau``.  The paper's
        literal rule is ``threshold_slack = 1.0``; the default adds 15%
        because the scaled-down substrate produces a narrower natural LOF
        spread than GPU-scale training, which makes the literal rule
        knife-edged for validators with large (non-quantised) validation
        sets.  Backdoor injections overshoot the threshold by 10-100x, so
        the slack costs no detection power (see EXPERIMENTS.md).
    features:
        Which error views feed the LOF feature vector: ``"both"`` (the
        paper's ``v = [v_s | v_t]``), ``"source"`` (eq. 2 only) or
        ``"target"`` (eq. 3 only).  Used by the ablation benchmarks.
    stack_profiles:
        Compute the profiles this validation is missing (cold cache: the
        candidate plus up to ``l + 1`` history models) in one stacked
        forward (:func:`repro.core.errors.stacked_error_profiles`) instead
        of one per-model pass each.  Profiles — and therefore votes — are
        bit-identical either way; unstackable architectures fall back to
        the per-model path automatically, so this is a pure throughput
        knob (on by default).
    """

    #: Algorithm 2 is a pure function of (context, dataset); the profile
    #: caches are per-process performance details, so worker processes may
    #: evaluate this validator (see :mod:`repro.fl.parallel`).
    parallel_safe = True

    def __init__(
        self,
        dataset: Dataset,
        normalize: str = "dataset",
        min_history: int = MIN_HISTORY_FOR_VOTE,
        threshold_slack: float = 1.15,
        features: str = "both",
        stack_profiles: bool = True,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("validator needs a non-empty dataset")
        if min_history < 4:
            raise ValueError("min_history must be >= 4 for the LOF windows to exist")
        if threshold_slack < 1.0:
            raise ValueError(f"threshold_slack must be >= 1, got {threshold_slack}")
        if features not in ("both", "source", "target"):
            raise ValueError(
                f"features must be 'both', 'source' or 'target', got {features!r}"
            )
        self.dataset = dataset
        self.normalize = normalize
        self.min_history = min_history
        self.threshold_slack = threshold_slack
        self.features = features
        self.stack_profiles = stack_profiles
        self._profile_cache: dict[int, ErrorProfile] = {}
        #: The last candidate this validator profiled, kept one round so an
        #: accepted candidate's profile can be re-filed under its committed
        #: history version instead of being recomputed from scratch.
        self._pending_candidate: tuple[Network, ErrorProfile] | None = None

    # ------------------------------------------------------------------
    # Voting (Algorithm 2)
    # ------------------------------------------------------------------
    def vote(self, context: ValidationContext, rng: np.random.Generator) -> int:
        """Binary verdict for the candidate: 1 = suspicious, 0 = looks fine."""
        del rng  # the misclassification analysis is deterministic
        return self.explain(context).vote

    def explain(self, context: ValidationContext) -> ValidationReport:
        """Run Algorithm 2 and return the full diagnostic report."""
        history = list(context.history)
        lookback = len(history) - 1  # l: number of consecutive accepted pairs
        self._pending_candidate = None
        if len(history) < self.min_history:
            return ValidationReport(0, None, None, (), abstained=True)

        candidate_profile = self._fill_profiles_stacked(context, history)
        profiles = [self._profile_for(version, model) for version, model in history]
        if candidate_profile is None:
            candidate_profile = model_error_profile(
                context.candidate, self.dataset, normalize=self.normalize
            )
        self._pending_candidate = (context.candidate, candidate_profile)
        variations = [
            self._select_features(
                error_variation_vector(profiles[i - 1], profiles[i])
            )
            for i in range(1, len(profiles))
        ]
        new_variation = self._select_features(
            error_variation_vector(profiles[-1], candidate_profile)
        )

        k = max(1, int(np.ceil(lookback / 2)))
        h = int(np.ceil(lookback * 3 / 4))
        window = h - 1  # reference-set size for every LOF evaluation
        if window < 2 or h > lookback:
            return ValidationReport(0, None, None, (), abstained=True)
        k = min(k, window - 1)

        points = np.stack(variations)  # v_1 .. v_l (1-indexed as v[i-1])
        trusted_lofs = [
            local_outlier_factor(points[i - 1], points[i - window - 1 : i - 1], k)
            for i in range(h, lookback + 1)
        ]
        threshold = float(np.mean(trusted_lofs))
        candidate_lof = local_outlier_factor(new_variation, points[-window:], k)
        vote = 1 if candidate_lof > self.threshold_slack * threshold else 0
        self._prune_cache(min(version for version, _ in history))
        return ValidationReport(
            vote=vote,
            candidate_lof=candidate_lof,
            threshold=threshold,
            trusted_lofs=tuple(trusted_lofs),
            abstained=False,
        )

    def _select_features(self, variation: np.ndarray) -> np.ndarray:
        """Slice ``[v_s | v_t]`` according to the feature-ablation setting."""
        if self.features == "both":
            return variation
        half = len(variation) // 2
        if self.features == "source":
            return variation[:half]
        return variation[half:]

    def _fill_profiles_stacked(
        self, context: ValidationContext, history: Sequence[tuple[int, Network]]
    ) -> ErrorProfile | None:
        """Profile every model this validation is missing in one stacked pass.

        Fills the per-version cache for uncached history entries and
        returns the candidate's profile — or ``None`` when stacking is
        disabled, unsupported for this architecture, or there is nothing
        to batch (warm cache: only the candidate is missing, where a
        stack of one would be pure overhead).
        """
        if not self.stack_profiles:
            return None
        missing = [
            (version, model)
            for version, model in history
            if version not in self._profile_cache
        ]
        if not missing or not supports_stacking(context.candidate):
            return None
        stacked = stacked_error_profiles(
            [model for _, model in missing] + [context.candidate],
            self.dataset,
            normalize=self.normalize,
        )
        for (version, _), profile in zip(missing, stacked):
            self._profile_cache[version] = profile
        return stacked[-1]

    # ------------------------------------------------------------------
    # Profile caching
    # ------------------------------------------------------------------
    def note_committed(self, candidate: Network, version: int) -> None:
        """Record that ``candidate`` entered the history as ``version``.

        When this validator just profiled that exact candidate in
        :meth:`explain`, the profile is re-filed under the committed
        version, saving the full forward pass the next round would
        otherwise spend recomputing it (the history entry is a clone of
        the candidate, so the profile carries over unchanged).
        """
        pending = self._pending_candidate
        self._pending_candidate = None
        if pending is not None and pending[0] is candidate:
            self._profile_cache[version] = pending[1]

    def seed_profile_cache(self, profiles: Mapping[int, ErrorProfile]) -> None:
        """Inject externally known ``{version: profile}`` entries.

        The parallel engine ships profiles from the server's shared
        :class:`~repro.fl.model_store.ValidatorProfileTable` to whichever
        worker evaluates this validator, so a profile computed in one
        process is never recomputed in another.  Locally computed entries
        win on conflict (they are identical anyway — profiles are a
        deterministic function of model and dataset).
        """
        for version, profile in profiles.items():
            self._profile_cache.setdefault(version, profile)

    def cached_profiles(self, versions: Sequence[int]) -> dict[int, ErrorProfile]:
        """The subset of ``versions`` this validator has profiles for."""
        return {
            version: self._profile_cache[version]
            for version in versions
            if version in self._profile_cache
        }

    def take_pending_profile(self) -> ErrorProfile | None:
        """The profile of the most recently explained candidate, if any."""
        pending = self._pending_candidate
        return pending[1] if pending is not None else None

    def invalidate_profiles(self, versions: Sequence[int]) -> None:
        """Drop cached profiles of versions withdrawn by a history rollback.

        Version numbers are never reused, so a stale entry could not be
        *mis*used — but a rolled-back optimistic commit's version would
        otherwise linger in the cache until the look-back window's minimum
        passed it.  The defense calls this from its rollback path.
        """
        for version in versions:
            self._profile_cache.pop(version, None)

    def _profile_for(self, version: int, model: Network) -> ErrorProfile:
        profile = self._profile_cache.get(version)
        if profile is None:
            profile = model_error_profile(model, self.dataset, normalize=self.normalize)
            self._profile_cache[version] = profile
        return profile

    def _prune_cache(self, oldest_needed: int) -> None:
        stale = [v for v in self._profile_cache if v < oldest_needed]
        for version in stale:
            del self._profile_cache[version]


class ConstantVoteValidator:
    """A validator that ignores the model: malicious vote strategies.

    ``vote_value = 1`` models a denial-of-service voter (always "poisoned");
    ``vote_value = 0`` models a colluding voter shielding the attacker.
    """

    parallel_safe = True

    def __init__(self, vote_value: int) -> None:
        if vote_value not in (0, 1):
            raise ValueError(f"vote_value must be 0 or 1, got {vote_value}")
        self.vote_value = vote_value

    def vote(self, context: ValidationContext, rng: np.random.Generator) -> int:
        del context, rng
        return self.vote_value
