"""Classification metrics, including the per-class error views BaFFLe uses.

The paper's validation function (Sec. V) is built on two per-class error
quantities computed over a fixed dataset ``D``:

- the *source-focused* error ``err_D(f)_{y->}``: the fraction of samples in
  ``D`` which belong to class ``y`` and are misclassified by ``f``;
- the *target-focused* error ``err_D(f)_{->y}``: the fraction of samples in
  ``D`` which ``f`` wrongly assigns to class ``y``.

Both are fractions of the *whole* dataset (the paper's literal definition),
which keeps them well-defined on non-IID client shards where some classes may
be absent.  Class-conditional variants (normalising by the class count, as
plotted in the paper's Figure 2) are available via ``normalize="class"``.
"""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Empirical accuracy ``acc_D(f)``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("accuracy of an empty dataset is undefined")
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class ``i`` predicted as ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if len(y_true) and (y_true.min() < 0 or y_true.max() >= num_classes):
        raise ValueError("true labels out of range")
    if len(y_pred) and (y_pred.min() < 0 or y_pred.max() >= num_classes):
        raise ValueError("predicted labels out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def source_focused_errors(
    conf: np.ndarray, normalize: str = "dataset"
) -> np.ndarray:
    """Vector of ``err_D(f)_{y->}`` for every class ``y`` from a confusion matrix.

    ``normalize="dataset"`` divides by ``|D|`` (the paper's definition);
    ``normalize="class"`` divides by the per-class sample count (0 for empty
    classes), matching the paper's Figure 2 plot.
    """
    conf = _check_confusion(conf)
    wrong = conf.sum(axis=1) - np.diag(conf)
    return _normalize(wrong, conf, conf.sum(axis=1), normalize)


def target_focused_errors(
    conf: np.ndarray, normalize: str = "dataset"
) -> np.ndarray:
    """Vector of ``err_D(f)_{->y}`` for every class ``y`` from a confusion matrix."""
    conf = _check_confusion(conf)
    wrong = conf.sum(axis=0) - np.diag(conf)
    return _normalize(wrong, conf, conf.sum(axis=1), normalize)


def per_class_error_rates(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int, normalize: str = "dataset"
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: ``(source_focused, target_focused)`` error vectors."""
    conf = confusion_matrix(y_true, y_pred, num_classes)
    return (
        source_focused_errors(conf, normalize=normalize),
        target_focused_errors(conf, normalize=normalize),
    )


def _check_confusion(conf: np.ndarray) -> np.ndarray:
    conf = np.asarray(conf)
    if conf.ndim != 2 or conf.shape[0] != conf.shape[1]:
        raise ValueError(f"confusion matrix must be square, got {conf.shape}")
    return conf


def _normalize(
    wrong: np.ndarray, conf: np.ndarray, class_counts: np.ndarray, normalize: str
) -> np.ndarray:
    if normalize == "dataset":
        total = conf.sum()
        if total == 0:
            raise ValueError("confusion matrix is empty")
        return wrong / total
    if normalize == "class":
        out = np.zeros(len(wrong), dtype=np.float64)
        nonzero = class_counts > 0
        out[nonzero] = wrong[nonzero] / class_counts[nonzero]
        return out
    raise ValueError(f"unknown normalize mode {normalize!r}")
