"""Batch normalisation for dense activations.

FL caveat: the learned scale/shift (``gamma``/``beta``) are ordinary
parameters and participate in federated averaging, but the *running
statistics* are local state — plain FedAvg does not aggregate them, which
is a known source of drift for normalisation layers in FL (one reason the
experiment harness defaults to plain MLPs).  The layer is provided for
centralised training and substrate completeness.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.nn.precision import active_dtype


class BatchNorm1d(Layer):
    """Normalise ``(N, features)`` activations per feature."""

    def __init__(
        self, num_features: int, momentum: float = 0.9, eps: float = 1e-5
    ) -> None:
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        dtype = active_dtype()
        self.gamma = Parameter(np.ones(num_features, dtype=dtype), "bn.gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=dtype), "bn.beta")
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (N, {self.num_features}) input, got {x.shape}"
            )
        if train:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean) * inv_std
            self._cache = (x_hat, inv_std, x - mean)
        else:
            inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
            x_hat = (x - self.running_mean) * inv_std
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_hat, inv_std, _ = self._cache
        n = len(grad_out)
        self.gamma.grad += (grad_out * x_hat).sum(axis=0)
        self.beta.grad += grad_out.sum(axis=0)
        # Standard batch-norm input gradient (through batch mean and var).
        g = grad_out * self.gamma.value
        return (
            inv_std
            / n
            * (n * g - g.sum(axis=0) - x_hat * (g * x_hat).sum(axis=0))
        )
