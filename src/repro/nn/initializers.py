"""Weight initializers.

Each initializer takes the parameter shape and a ``numpy.random.Generator``
and returns a freshly allocated array in the active precision-policy dtype
(:func:`repro.nn.precision.active_dtype`).  Random draws always happen in
float64 — the generator's native output — and are cast afterwards, so the
RNG stream consumption is identical under every policy.  Keeping the
generator explicit makes every network construction reproducible from a
single seed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.precision import active_dtype


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional shapes.

    Dense weights are ``(in, out)``; convolution kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialization, suited for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(active_dtype())


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier (Glorot) uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(active_dtype())


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (biases)."""
    del rng  # deterministic; generator accepted for interface uniformity
    return np.zeros(shape, dtype=active_dtype())
