"""Adam optimizer (Kingma & Ba, 2015).

The paper's clients train with SGD; Adam is provided for users adapting
the substrate to harder tasks (and exercised by the test suite).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Parameter


class Adam:
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._step_count = 0

    def step(self) -> None:
        """Apply one Adam update using accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
