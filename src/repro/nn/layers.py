"""Neural-network layers with explicit forward/backward passes.

Conventions
-----------
- Image tensors are ``(N, C, H, W)`` (PyTorch layout), dense activations are
  ``(N, features)``.
- ``forward(x, train)`` caches whatever the matching ``backward`` needs on
  the layer instance; a layer therefore processes one batch at a time (which
  is all SGD training needs).
- ``backward(grad_out)`` returns the gradient w.r.t. the layer input and
  *accumulates* parameter gradients into ``Parameter.grad``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.precision import active_dtype

Initializer = Callable[[tuple[int, ...], np.random.Generator], np.ndarray]


class Parameter:
    """A trainable array together with its accumulated gradient.

    Values are stored in the active precision-policy dtype
    (:func:`repro.nn.precision.active_dtype`): float64 by default,
    float32 when the ``float32`` policy is in force.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=active_dtype())
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Layer:
    """Base class for all layers."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (possibly empty)."""
        return []

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: Initializer = he_normal,
        bias: bool = True,
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng), "dense.weight")
        self.bias = Parameter(zeros_init((out_features,), rng), "dense.bias") if bias else None
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        self.weight.grad += self._x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._mask


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, features)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # The random draw stays float64 (the generator's native stream —
        # reproducibility), but the mask is built in the input dtype so a
        # float32 activation is not upcast by the multiply.
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.dtype(np.float64)
        self._mask = (self._rng.random(x.shape) < keep).astype(dtype) / dtype.type(keep)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into column matrix for convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided sliding-window view: (N, C, out_h, out_w, kh, kw)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Fold column gradients back into an image tensor (adjoint of _im2col).

    The scratch buffer inherits ``cols``' dtype so a float32 gradient stays
    float32 end to end instead of silently upcasting.
    """
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols6[:, :, :, :, i, j]
            )
    if pad > 0:
        return padded[:, :, pad : pad + h, pad : pad + w]
    return padded


class Conv2D(Layer):
    """2-D convolution (cross-correlation) via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        weight_init: Initializer = he_normal,
        bias: bool = True,
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(weight_init(shape, rng), "conv.weight")
        self.bias = Parameter(zeros_init((out_channels,), rng), "conv.bias") if bias else None
        self._cache: tuple[np.ndarray, tuple[int, int, int, int], int, int] | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out = out + self.bias.value
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if train:
            self._cache = (cols, x.shape, out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        cols, x_shape, out_h, out_w = self._cache
        k = self.kernel_size
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.weight.grad += (grad_mat.T @ cols).reshape(self.weight.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ self.weight.value.reshape(self.out_channels, -1)
        return _col2im(grad_cols, x_shape, k, k, self.stride, self.padding, out_h, out_w)


class MaxPool2D(Layer):
    """Max pooling with square window and matching stride."""

    def __init__(self, pool_size: int) -> None:
        self.pool_size = pool_size
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"input {h}x{w} not divisible by pool size {p}")
        view = x.reshape(n, c, h // p, p, w // p, p)
        out = view.max(axis=(3, 5))
        if train:
            mask = view == out[:, :, :, None, :, None]
            # Break ties: keep only the first max per window so the gradient
            # is routed to exactly one input element.
            flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // p, w // p, p * p)
            first = np.cumsum(flat, axis=-1) == 1
            flat = flat & first
            mask = flat.reshape(n, c, h // p, w // p, p, p).transpose(0, 1, 2, 4, 3, 5)
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        mask, x_shape = self._cache
        n, c, h, w = x_shape
        p = self.pool_size
        grad = mask * grad_out[:, :, :, None, :, None]
        return grad.reshape(n, c, h // p, p, w // p, p).reshape(x_shape)


class GlobalAvgPool(Layer):
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        n, c, h, w = self._shape
        grad = grad_out[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._shape).copy()


class Residual(Layer):
    """Residual container: ``y = x + f(x)`` where ``f`` is a layer stack.

    This is the ResNet-style skip connection the paper's ResNet18 relies on;
    the inner stack must preserve the input shape.
    """

    def __init__(self, inner: Sequence[Layer]) -> None:
        self.inner = list(inner)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.inner for p in layer.parameters()]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = x
        for layer in self.inner:
            out = layer.forward(out, train=train)
        if out.shape != x.shape:
            raise ValueError(
                f"residual branch changed shape {x.shape} -> {out.shape}; "
                "inner layers must be shape-preserving"
            )
        return x + out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.inner):
            grad = layer.backward(grad)
        return grad + grad_out
