"""Model parameter serialization.

Used by checkpointing, by the secure-aggregation simulation (masks operate on
serialized vectors), and by the communication-overhead benchmark (Sec. VI-D
of the paper estimates ~10 MB per ResNet18 model and a history of ``l + 1``
models shipped to each validating client).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.nn.network import Network

# Compression factor achievable with standard model-compression techniques;
# the paper (Sec. VI-D, citing Caldas et al.) assumes a factor of 10.
PAPER_COMPRESSION_FACTOR = 10.0


def params_to_bytes(network: Network, dtype: type = np.float32) -> bytes:
    """Serialize network parameters to a compact binary blob.

    The default ``float32`` matches the paper's on-the-wire size estimates
    (Sec. VI-D).  The parallel round engine passes ``float64`` instead: its
    sequential/parallel equivalence guarantee needs lossless weight
    transport between the server and worker processes.
    """
    buffer = io.BytesIO()
    np.save(buffer, network.get_flat().astype(dtype), allow_pickle=False)
    return buffer.getvalue()


def params_from_bytes(network: Network, blob: bytes) -> None:
    """Load parameters serialized by :func:`params_to_bytes` into ``network``."""
    buffer = io.BytesIO(blob)
    flat = np.load(buffer, allow_pickle=False)
    network.set_flat(flat)  # set_flat casts to the active policy dtype


def network_num_bytes(network: Network, dtype: type = np.float32) -> int:
    """Raw on-the-wire size of the network's parameters in ``dtype``."""
    return network.num_parameters * np.dtype(dtype).itemsize


def save_network_params(network: Network, path: str | Path) -> None:
    """Save parameters to ``path`` (npz with one array per parameter)."""
    arrays = {f"param_{i}": p.value for i, p in enumerate(network.parameters())}
    np.savez(path, **arrays)


def load_network_params(network: Network, path: str | Path) -> None:
    """Load parameters saved by :func:`save_network_params`."""
    with np.load(path) as data:
        params = network.parameters()
        if len(data.files) != len(params):
            raise ValueError(
                f"checkpoint has {len(data.files)} arrays, network has {len(params)}"
            )
        for i, p in enumerate(params):
            stored = data[f"param_{i}"]
            if stored.shape != p.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: checkpoint {stored.shape}, "
                    f"network {p.shape}"
                )
            p.value[...] = stored
