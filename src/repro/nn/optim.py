"""Optimizers and learning-rate schedules.

The paper trains clients with plain SGD (lr 0.1, 2 local epochs).  We provide
SGD with optional momentum, weight decay, and Nesterov lookahead, plus simple
learning-rate schedules for longer runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Parameter


class ConstantSchedule:
    """Always return the base learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def __call__(self, step: int) -> float:
        del step
        return self.lr


class StepSchedule:
    """Decay the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self, lr: float | None = None) -> None:
        """Apply one update using accumulated gradients."""
        eta = self.lr if lr is None else lr
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                vel *= self.momentum
                vel += grad
                update = grad + self.momentum * vel if self.nesterov else vel
            else:
                update = grad
            p.value -= eta * update

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
