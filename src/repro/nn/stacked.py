"""Stacked execution: run ``M`` same-architecture models as one batched op.

BaFFLe's round cost is dominated by many *small* same-architecture model
executions: every selected client trains a clone of the global model on its
shard, and every cold validator forwards the candidate plus up to ``l``
history models over its data.  Dispatching those through ``M`` independent
:class:`~repro.nn.network.Network` objects pays the full Python/numpy
per-call overhead ``M`` times per layer per step, which dwarfs the actual
FLOPs at this substrate's scale.

This module provides a *stacked* substrate: every tensor carries a leading
model axis ``M``, so ``M`` forwards/backwards collapse into single batched
``np.matmul`` calls (NumPy loops the per-slice GEMMs in C, not in Python).

Bit-identity contract
---------------------
The repo's engine-equivalence guarantee (sequential == parallel ==
pipelined, bit-identical committed models) extends to stacking: a stacked
pass must produce **bit-identical** floats to the per-model pass.  Two
empirical properties of the BLAS backend make this possible, and the test
suite re-verifies both on every host (``tests/nn/test_stacked.py``):

1. ``np.matmul`` on stacked operands equals the per-slice 2-D matmul
   *of the same shape* bit-for-bit (the batch loop runs the identical
   GEMM kernel per slice).
2. Reductions over the trailing axes (softmax sums/maxes, squared-norm
   sums) associate identically for equal trailing shapes.

What does **not** hold is shape invariance: a GEMM over ``b`` rows
zero-padded to ``b' > b`` rows may take a different kernel path and round
differently.  Stacked execution therefore never pads batches — callers
group models by *exact* batch shape (see :mod:`repro.fl.cohort`) and pass
a model-index subset ``idx`` per call; any op whose batched form would
reorder floating-point accumulation must instead fall back to per-slice
evaluation.  Scalar bookkeeping that the per-model path performs in Python
floats (gradient-norm clipping) is mirrored in Python floats here, not
vectorized, for the same reason.

Layer coverage maps :mod:`repro.nn.layers`: ``Dense``, ``ReLU``,
``Flatten``, ``Dropout`` (per-model generator streams), ``Conv2D``
(batched im2col), ``MaxPool2D``, ``GlobalAvgPool``, ``BatchNorm1d``
(per-model running statistics), ``Residual`` (recursively stacked inner
stacks — so ``make_resnet_lite`` worlds ride the cohort engine), softmax
cross-entropy, and SGD with momentum / weight decay / gradient clipping.
Anything else (the exotic activations) raises
:class:`StackingUnsupportedError`; callers probe with
:func:`supports_stacking` and keep the per-model path.
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

import numpy as np

from repro.nn.batchnorm import BatchNorm1d
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Residual,
)
from repro.nn.losses import log_softmax
from repro.nn.network import Network
from repro.nn.precision import active_dtype


class StackingUnsupportedError(TypeError):
    """The network contains a layer without a stacked counterpart."""


class StackedParameter:
    """A trainable array stack ``(M, *shape)`` with accumulated gradients.

    The gradient buffer is allocated lazily: inference-only stacks (the
    validation path) never touch it, so building one costs a single weight
    copy.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.ascontiguousarray(value, dtype=active_dtype())
        self._grad: np.ndarray | None = None
        self.name = name

    @property
    def grad(self) -> np.ndarray:
        if self._grad is None:
            self._grad = np.zeros_like(self.value)
        return self._grad

    @property
    def num_models(self) -> int:
        return self.value.shape[0]

    def zero_grad(self) -> None:
        if self._grad is not None:
            self._grad.fill(0.0)

    def accumulate(self, idx: np.ndarray | None, grad: np.ndarray) -> None:
        """Add ``grad`` into the rows selected by ``idx`` (all when None)."""
        buffer = self.grad
        if idx is None:
            buffer += grad
        else:
            # Model indices are unique within a call, so fancy-index
            # read-modify-write accumulates correctly.
            buffer[idx] += grad

    def __repr__(self) -> str:
        return f"StackedParameter(name={self.name!r}, shape={self.value.shape})"


def _select(value: np.ndarray, idx: np.ndarray | None) -> np.ndarray:
    return value if idx is None else value[idx]


class StackedLayer:
    """Base class: forward/backward over ``(m, batch, ...)`` tensors.

    ``idx`` selects the model subset a call runs over (``None`` = the full
    stack); ``forward(train=True)`` caches what the matching ``backward``
    needs, exactly like :class:`repro.nn.layers.Layer`.
    """

    def parameters(self) -> list[StackedParameter]:
        return []

    def forward(
        self, x: np.ndarray, idx: np.ndarray | None, train: bool = False
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class StackedDense(StackedLayer):
    """``y[m] = x[m] @ W[m] + b[m]`` in one batched matmul.

    A shared input (``x`` broadcast along the model axis — the validation
    case) flows through the same batched matmul: NumPy runs the identical
    per-slice GEMM against the zero-stride view, so no per-model copies of
    ``x`` are ever materialized.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None) -> None:
        self.weight = StackedParameter(weight, "dense.weight")
        self.bias = StackedParameter(bias, "dense.bias") if bias is not None else None
        #: Set by the network on its first parameter layer: the gradient
        #: w.r.t. the input is never consumed there, so backward skips it.
        self.skip_input_grad = False
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray | None] | None = None

    def parameters(self) -> list[StackedParameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x, idx, train=False):
        w = _select(self.weight.value, idx)
        if train:
            self._cache = (x, w, idx)
        out = np.matmul(x, w)
        if self.bias is not None:
            # In-place into the fresh matmul buffer: same scalar adds as
            # the per-model ``out + bias``, one less allocation.
            np.add(out, _select(self.bias.value, idx)[:, None, :], out=out)
        return out

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x, w, idx = self._cache
        self.weight.accumulate(idx, np.matmul(x.transpose(0, 2, 1), grad_out))
        if self.bias is not None:
            self.bias.accumulate(idx, grad_out.sum(axis=1))
        if self.skip_input_grad:
            return grad_out  # unused upstream of the first parameter layer
        return np.matmul(grad_out, w.transpose(0, 2, 1))


class StackedReLU(StackedLayer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x, idx, train=False):
        del idx  # parameter-free: the subset is implicit in x
        if train:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out):
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._mask


class StackedFlatten(StackedLayer):
    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x, idx, train=False):
        del idx
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out):
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out.reshape(self._shape)


class StackedDropout(StackedLayer):
    """Inverted dropout with one private generator per stacked model.

    Each model's generator is a deep copy of the template layer's, so model
    ``m`` draws exactly the mask sequence its per-model clone would have
    drawn — same shapes, same order — and the streams stay independent
    across models.
    """

    def __init__(self, rate: float, rngs: Sequence[np.random.Generator]) -> None:
        self.rate = rate
        self._rngs = list(rngs)
        self._mask: np.ndarray | None = None

    def forward(self, x, idx, train=False):
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        models = range(len(self._rngs)) if idx is None else idx
        # Mirror the per-model layer exactly: draw in float64 (the
        # generator's native stream), then round the boolean mask and the
        # keep divisor into the activation dtype *before* dividing —
        # dividing in float64 and rounding afterwards differs in the last
        # ulp under float32 and would break stacked-vs-per-model identity.
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.dtype(np.float64)
        mask = np.empty(x.shape, dtype=dtype)
        for row, model_index in enumerate(models):
            draw = self._rngs[model_index].random(x.shape[1:]) < keep
            mask[row] = draw.astype(dtype) / dtype.type(keep)
        self._mask = mask
        return x * mask

    def backward(self, grad_out):
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


def _im2col_stacked(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Batched :func:`repro.nn.layers._im2col` over a leading model axis.

    ``x`` is ``(m, n, c, h, w)``; returns ``(cols, out_h, out_w)`` with
    ``cols`` shaped ``(m, n * out_h * out_w, c * kh * kw)`` — slice ``i``
    is element-for-element the per-model column matrix.
    """
    m, n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (0, 0), (pad, pad), (pad, pad)))
    s0, s1, s2, s3, s4 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(m, n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2, s3 * stride, s4 * stride, s3, s4),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 3, 4, 2, 5, 6).reshape(
        m, n * out_h * out_w, c * kh * kw
    )
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im_stacked(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col_stacked`, accumulating in the same
    ``(i, j)`` order as the per-model ``_col2im`` so overlapping-window
    sums associate identically."""
    m, n, c, h, w = x_shape
    padded = np.zeros((m, n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols7 = cols.reshape(m, n, out_h, out_w, c, kh, kw).transpose(0, 1, 4, 2, 3, 5, 6)
    for i in range(kh):
        for j in range(kw):
            padded[
                :, :, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride
            ] += cols7[:, :, :, :, :, i, j]
    if pad > 0:
        return padded[:, :, :, pad : pad + h, pad : pad + w]
    return padded


class StackedConv2D(StackedLayer):
    """Batched-im2col convolution: one matmul carries all stacked kernels."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: int,
        padding: int,
    ) -> None:
        self.weight = StackedParameter(weight, "conv.weight")
        self.bias = StackedParameter(bias, "conv.bias") if bias is not None else None
        self.out_channels = weight.shape[1]
        self.kernel_size = weight.shape[3]
        self.stride = stride
        self.padding = padding
        #: Set by the network on its first layer (see StackedDense).
        self.skip_input_grad = False
        self._cache = None

    def parameters(self) -> list[StackedParameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x, idx, train=False):
        m, n = x.shape[0], x.shape[1]
        k = self.kernel_size
        cols, out_h, out_w = _im2col_stacked(x, k, k, self.stride, self.padding)
        w = _select(self.weight.value, idx)
        w_mat = w.reshape(m, self.out_channels, -1)
        out = np.matmul(cols, w_mat.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + _select(self.bias.value, idx)[:, None, :]
        out = out.reshape(m, n, out_h, out_w, self.out_channels).transpose(
            0, 1, 4, 2, 3
        )
        if train:
            self._cache = (cols, w_mat, idx, x.shape, out_h, out_w)
        return out

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        cols, w_mat, idx, x_shape, out_h, out_w = self._cache
        m = grad_out.shape[0]
        k = self.kernel_size
        grad_mat = grad_out.transpose(0, 1, 3, 4, 2).reshape(m, -1, self.out_channels)
        self.weight.accumulate(
            idx,
            np.matmul(grad_mat.transpose(0, 2, 1), cols).reshape(
                m, *self.weight.value.shape[1:]
            ),
        )
        if self.bias is not None:
            self.bias.accumulate(idx, grad_mat.sum(axis=1))
        if self.skip_input_grad:
            return grad_out  # unused upstream of the first parameter layer
        grad_cols = np.matmul(grad_mat, w_mat)
        return _col2im_stacked(
            grad_cols, x_shape, k, k, self.stride, self.padding, out_h, out_w
        )


class StackedMaxPool2D(StackedLayer):
    def __init__(self, pool_size: int) -> None:
        self.pool_size = pool_size
        self._cache = None

    def forward(self, x, idx, train=False):
        del idx
        m, n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"input {h}x{w} not divisible by pool size {p}")
        view = np.asarray(x).reshape(m, n, c, h // p, p, w // p, p)
        out = view.max(axis=(4, 6))
        if train:
            mask = view == out[:, :, :, :, None, :, None]
            # First-max tie-break, mirroring the per-model layer exactly.
            flat = mask.transpose(0, 1, 2, 3, 5, 4, 6).reshape(
                m, n, c, h // p, w // p, p * p
            )
            first = np.cumsum(flat, axis=-1) == 1
            flat = flat & first
            mask = flat.reshape(m, n, c, h // p, w // p, p, p).transpose(
                0, 1, 2, 3, 5, 4, 6
            )
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        mask, x_shape = self._cache
        m, n, c, h, w = x_shape
        p = self.pool_size
        grad = mask * grad_out[:, :, :, :, None, :, None]
        return grad.reshape(m, n, c, h // p, p, w // p, p).reshape(x_shape)


class StackedGlobalAvgPool(StackedLayer):
    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x, idx, train=False):
        del idx
        if train:
            self._shape = x.shape
        return x.mean(axis=(3, 4))

    def backward(self, grad_out):
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        m, n, c, h, w = self._shape
        grad = grad_out[:, :, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._shape).copy()


class StackedBatchNorm1d(StackedLayer):
    """Per-feature normalisation with per-model running statistics.

    ``gamma``/``beta`` are ordinary stacked parameters (rows of the flat
    layout); the running mean/variance are *local state*, mirrored here as
    one ``(M, F)`` array pair seeded from the per-model layers (exactly
    what ``M`` ``Network.clone()`` calls carry) and updated per selected
    model.  All arithmetic is elementwise per feature plus batch-axis
    reductions — the same per-slice shapes the per-model layer reduces
    over — so outputs and gradients stay bit-identical.
    """

    def __init__(
        self,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        momentum: float,
        eps: float,
    ) -> None:
        self.gamma = StackedParameter(gamma, "bn.gamma")
        self.beta = StackedParameter(beta, "bn.beta")
        self.running_mean = np.ascontiguousarray(running_mean, dtype=active_dtype())
        self.running_var = np.ascontiguousarray(running_var, dtype=active_dtype())
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray | None] | None = None

    def parameters(self) -> list[StackedParameter]:
        return [self.gamma, self.beta]

    def forward(self, x, idx, train=False):
        if train:
            mean = x.mean(axis=1)
            var = x.var(axis=1)
            new_mean = self.momentum * _select(self.running_mean, idx) + (
                1 - self.momentum
            ) * mean
            new_var = self.momentum * _select(self.running_var, idx) + (
                1 - self.momentum
            ) * var
            if idx is None:
                self.running_mean = new_mean
                self.running_var = new_var
            else:
                self.running_mean[idx] = new_mean
                self.running_var[idx] = new_var
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean[:, None, :]) * inv_std[:, None, :]
            self._cache = (x_hat, inv_std, idx)
        else:
            inv_std = 1.0 / np.sqrt(_select(self.running_var, idx) + self.eps)
            x_hat = (x - _select(self.running_mean, idx)[:, None, :]) * inv_std[
                :, None, :
            ]
        return (
            _select(self.gamma.value, idx)[:, None, :] * x_hat
            + _select(self.beta.value, idx)[:, None, :]
        )

    def backward(self, grad_out):
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_hat, inv_std, idx = self._cache
        n = grad_out.shape[1]
        self.gamma.accumulate(idx, (grad_out * x_hat).sum(axis=1))
        self.beta.accumulate(idx, grad_out.sum(axis=1))
        g = grad_out * _select(self.gamma.value, idx)[:, None, :]
        return (
            inv_std[:, None, :]
            / n
            * (
                n * g
                - g.sum(axis=1)[:, None, :]
                - x_hat * (g * x_hat).sum(axis=1)[:, None, :]
            )
        )


class StackedResidual(StackedLayer):
    """Stacked skip connection: ``y = x + f(x)`` over a stacked inner stack."""

    def __init__(self, inner: Sequence[StackedLayer]) -> None:
        self.inner = list(inner)

    def parameters(self) -> list[StackedParameter]:
        return [p for layer in self.inner for p in layer.parameters()]

    def forward(self, x, idx, train=False):
        out = x
        for layer in self.inner:
            out = layer.forward(out, idx, train=train)
        if out.shape != x.shape:
            raise ValueError(
                f"residual branch changed shape {x.shape} -> {out.shape}; "
                "inner layers must be shape-preserving"
            )
        return x + out

    def backward(self, grad_out):
        grad = grad_out
        for layer in reversed(self.inner):
            grad = layer.backward(grad)
        return grad + grad_out


# ----------------------------------------------------------------------
# Template -> stacked-layer builders
# ----------------------------------------------------------------------
def _consume(flats: np.ndarray, offset: int, shape: tuple[int, ...]) -> tuple[np.ndarray, int]:
    size = int(np.prod(shape, dtype=np.int64))
    block = flats[:, offset : offset + size].reshape(flats.shape[0], *shape)
    return np.ascontiguousarray(block), offset + size


def _build_dense(layer: Dense, flats: np.ndarray, offset: int):
    weight, offset = _consume(flats, offset, layer.weight.shape)
    bias = None
    if layer.bias is not None:
        bias, offset = _consume(flats, offset, layer.bias.shape)
    return StackedDense(weight, bias), offset


def _build_conv(layer: Conv2D, flats: np.ndarray, offset: int):
    weight, offset = _consume(flats, offset, layer.weight.shape)
    bias = None
    if layer.bias is not None:
        bias, offset = _consume(flats, offset, layer.bias.shape)
    return StackedConv2D(weight, bias, layer.stride, layer.padding), offset


def _build_dropout(layer: Dropout, flats: np.ndarray, offset: int):
    # One independent generator per model, each starting from the template
    # layer's current state — exactly what M ``Network.clone()`` calls
    # would give the per-model path.
    rngs = [copy.deepcopy(layer._rng) for _ in range(flats.shape[0])]
    return StackedDropout(layer.rate, rngs), offset


def _build_batchnorm(layer: BatchNorm1d, flats: np.ndarray, offset: int):
    gamma, offset = _consume(flats, offset, layer.gamma.value.shape)
    beta, offset = _consume(flats, offset, layer.beta.value.shape)
    # Running statistics are local state, not parameters: every model in
    # the stack starts from the template layer's current values — exactly
    # what M ``Network.clone()`` + ``set_flat(row)`` calls would carry.
    m = flats.shape[0]
    return (
        StackedBatchNorm1d(
            gamma,
            beta,
            np.tile(layer.running_mean, (m, 1)),
            np.tile(layer.running_var, (m, 1)),
            layer.momentum,
            layer.eps,
        ),
        offset,
    )


def _build_residual(layer: Residual, flats: np.ndarray, offset: int):
    # The flat layout of a Residual is its inner layers' parameters in
    # order (``Residual.parameters`` chains them), so the inner builders
    # consume the same blocks the per-model ``set_flat`` walk assigns.
    inner: list[StackedLayer] = []
    for sub in layer.inner:
        builder = _BUILDERS.get(type(sub))
        if builder is None:
            raise StackingUnsupportedError(
                f"no stacked counterpart for {type(sub).__name__} inside "
                "Residual; use the per-model path (supports_stacking() "
                "probes this)"
            )
        stacked, offset = builder(sub, flats, offset)
        inner.append(stacked)
    return StackedResidual(inner), offset


_BUILDERS = {
    Dense: _build_dense,
    Conv2D: _build_conv,
    Dropout: _build_dropout,
    BatchNorm1d: _build_batchnorm,
    Residual: _build_residual,
    ReLU: lambda layer, flats, offset: (StackedReLU(), offset),
    Flatten: lambda layer, flats, offset: (StackedFlatten(), offset),
    MaxPool2D: lambda layer, flats, offset: (StackedMaxPool2D(layer.pool_size), offset),
    GlobalAvgPool: lambda layer, flats, offset: (StackedGlobalAvgPool(), offset),
}

#: Per-model input ndim (without the model axis) implied by a layer type,
#: used to tell a shared sample batch from an already-stacked input.
_INPUT_NDIM = {Dense: 2, Conv2D: 4, MaxPool2D: 4, GlobalAvgPool: 4, BatchNorm1d: 2}


def _infer_input_ndim(layers: Sequence) -> int | None:
    """Per-model input ndim implied by the first shape-typed layer.

    Recurses into ``Residual`` containers: a residual stack's input shape
    is its first inner layer's.
    """
    for layer in layers:
        if type(layer) is Residual:
            ndim = _infer_input_ndim(layer.inner)
            if ndim is not None:
                return ndim
        elif type(layer) in _INPUT_NDIM:
            return _INPUT_NDIM[type(layer)]
    return None


def _layer_stackable(layer: object) -> bool:
    """Exact-type stackability of one layer, recursing into containers."""
    if type(layer) is Residual:
        return all(_layer_stackable(sub) for sub in layer.inner)
    return type(layer) in _BUILDERS


def supports_stacking(network: Network) -> bool:
    """Whether every layer of ``network`` has a stacked counterpart.

    Exact-type matching on purpose: a subclass overriding ``forward`` would
    silently diverge from its stacked stand-in, so subclasses fall back to
    the per-model path unless registered themselves.  ``Residual``
    containers are stackable iff every inner layer is.
    """
    return all(_layer_stackable(layer) for layer in network.layers)


def _stack_peer_layer(layer, peers: Sequence) -> StackedLayer:
    """One stacked layer from ``M`` existing per-model peer layers.

    ``layer`` is the template's instance (structure source), ``peers`` the
    same-position layer of every stacked model (weight/state sources).
    Each stacked parameter is one ``np.stack`` over the per-model arrays —
    cheaper than a flat-vector detour (see :meth:`StackedNetwork.from_models`).
    """
    kind = type(layer)
    if kind is Residual:
        return StackedResidual(
            [
                _stack_peer_layer(sub, [peer.inner[i] for peer in peers])
                for i, sub in enumerate(layer.inner)
            ]
        )
    if kind not in _BUILDERS:
        raise StackingUnsupportedError(
            f"no stacked counterpart for {kind.__name__}; "
            "use the per-model path (supports_stacking() probes this)"
        )
    if kind in (Dense, Conv2D):
        weight = np.stack([peer.weight.value for peer in peers])
        bias = (
            np.stack([peer.bias.value for peer in peers])
            if layer.bias is not None
            else None
        )
        if kind is Dense:
            return StackedDense(weight, bias)
        return StackedConv2D(weight, bias, layer.stride, layer.padding)
    if kind is BatchNorm1d:
        return StackedBatchNorm1d(
            np.stack([peer.gamma.value for peer in peers]),
            np.stack([peer.beta.value for peer in peers]),
            np.stack([peer.running_mean for peer in peers]),
            np.stack([peer.running_var for peer in peers]),
            layer.momentum,
            layer.eps,
        )
    if kind is Dropout:
        return StackedDropout(
            layer.rate, [copy.deepcopy(peer._rng) for peer in peers]
        )
    if kind is ReLU:
        return StackedReLU()
    if kind is Flatten:
        return StackedFlatten()
    if kind is MaxPool2D:
        return StackedMaxPool2D(layer.pool_size)
    return StackedGlobalAvgPool()


class StackedNetwork:
    """``M`` same-architecture models executing as one batched network.

    Built from a structural *template* :class:`~repro.nn.network.Network`
    plus an ``(M, P)`` array of flat weight vectors (``P`` =
    ``template.num_parameters``); the flat layout matches
    :meth:`Network.set_flat`, so row ``m`` of :meth:`get_flat` is
    bit-for-bit what a per-model clone carrying those weights would report.
    """

    def __init__(self, layers: Sequence[StackedLayer], num_models: int, input_ndim: int | None) -> None:
        self.layers = list(layers)
        self.num_models = num_models
        self._input_ndim = input_ndim

    @classmethod
    def from_network(cls, template: Network, flats: np.ndarray) -> "StackedNetwork":
        """Stack ``M`` copies of ``template``'s architecture carrying the
        given ``(M, P)`` flat weight rows (layout of ``Network.set_flat``)."""
        flats = np.ascontiguousarray(flats, dtype=active_dtype())
        if flats.ndim != 2 or flats.shape[1] != template.num_parameters:
            raise ValueError(
                f"expected flats of shape (M, {template.num_parameters}), "
                f"got {flats.shape}"
            )
        layers: list[StackedLayer] = []
        offset = 0
        for layer in template.layers:
            builder = _BUILDERS.get(type(layer))
            if builder is None:
                raise StackingUnsupportedError(
                    f"no stacked counterpart for {type(layer).__name__}; "
                    "use the per-model path (supports_stacking() probes this)"
                )
            stacked, offset = builder(layer, flats, offset)
            layers.append(stacked)
        return cls._finalize(layers, template, flats.shape[0])

    @classmethod
    def from_models(cls, models: Sequence[Network]) -> "StackedNetwork":
        """Stack existing same-architecture models without a flat detour.

        Each stacked parameter is one ``np.stack`` over the per-model
        arrays — cheaper than concatenating every model into a flat vector
        and re-slicing it (the validation hot path builds a fresh stack
        per cold pass, so construction cost matters).
        """
        if not models:
            raise ValueError("need at least one model to stack")
        template = models[0]
        num_params = template.num_parameters
        for model in models[1:]:
            if model.num_parameters != num_params or len(model.layers) != len(
                template.layers
            ):
                raise ValueError("models must share one architecture to stack")
        layers = [
            _stack_peer_layer(layer, [model.layers[i] for model in models])
            for i, layer in enumerate(template.layers)
        ]
        return cls._finalize(layers, template, len(models))

    @classmethod
    def _finalize(
        cls, layers: list[StackedLayer], template: Network, num_models: int
    ) -> "StackedNetwork":
        if layers and isinstance(layers[0], (StackedConv2D, StackedDense)):
            # Nothing upstream consumes the first layer's input gradient;
            # skipping it drops one batched matmul (and for conv the whole
            # col2im fold) from every backward pass.
            layers[0].skip_input_grad = True
        return cls(layers, num_models, _infer_input_ndim(template.layers))

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        train: bool = False,
        idx: Sequence[int] | np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched forward over the models selected by ``idx``.

        ``x`` is either ``(m, batch, *sample)`` — one batch per selected
        model — or a shared ``(batch, *sample)`` array evaluated by every
        selected model (broadcast along the model axis without copying).
        """
        if idx is not None:
            idx = np.asarray(idx, dtype=np.intp)
        m = self.num_models if idx is None else len(idx)
        x = np.asarray(x, dtype=active_dtype())
        if self._input_ndim is not None and x.ndim == self._input_ndim:
            x = np.broadcast_to(x, (m, *x.shape))
        for layer in self.layers:
            x = layer.forward(x, idx, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self) -> list[StackedParameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def get_flat(self) -> np.ndarray:
        """``(M, P)`` flat weight matrix (rows match ``Network.get_flat``)."""
        params = self.parameters()
        if not params:
            return np.zeros((self.num_models, 0), dtype=active_dtype())
        return np.concatenate(
            [p.value.reshape(self.num_models, -1) for p in params], axis=1
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """``(M, N)`` predicted labels, mirroring ``Network.predict``.

        Same 512-sample batching and the same per-row argmax as the
        per-model path, so predictions are bit-identical — the property
        the stacked validation profiles rely on.
        """
        x = np.asarray(x, dtype=active_dtype())
        if len(x) == 0:
            raise ValueError("cannot iterate over an empty input array")
        chunks = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start : start + batch_size])
            chunks.append(logits.argmax(axis=-1))
        return np.concatenate(chunks, axis=1)


def stacked_predict(
    models: Sequence[Network], x: np.ndarray, batch_size: int = 512
) -> np.ndarray:
    """Predict labels for ``x`` under every model: ``(len(models), N)``.

    One batched forward replaces ``len(models)`` Python-dispatched passes;
    callers guard with :func:`supports_stacking` on the first model.
    """
    if not models:
        raise ValueError("need at least one model to predict with")
    return StackedNetwork.from_models(models).predict(x, batch_size)


# ----------------------------------------------------------------------
# Training pieces
# ----------------------------------------------------------------------
def stacked_softmax_ce_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of mean softmax cross-entropy per stacked model.

    ``logits`` is ``(m, b, C)``, ``targets`` ``(m, b)``; every model in the
    call shares the batch size ``b``, so the ``/ b`` scaling matches the
    per-model :class:`~repro.nn.losses.SoftmaxCrossEntropy` exactly.
    """
    targets = np.asarray(targets, dtype=np.int64)
    m, b, _ = logits.shape
    if targets.shape != (m, b):
        raise ValueError(f"targets shape {targets.shape} != {(m, b)}")
    grad = np.exp(log_softmax(logits))
    grad[
        np.arange(m, dtype=np.intp)[:, None], np.arange(b, dtype=np.intp)[None, :], targets
    ] -= 1.0
    np.divide(grad, b, out=grad)
    return grad


def clip_gradients_stacked(
    params: Sequence[StackedParameter],
    max_norm: float,
    active: np.ndarray | None = None,
) -> None:
    """Per-model global-norm clipping, mirroring ``fl.client.clip_gradients``.

    The squared sums are vectorized, but the norm / comparison / scale
    arithmetic runs in Python floats per model — the exact scalar ops the
    per-model path performs — so clipped gradients stay bit-identical.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    if not params:
        return
    num_models = params[0].num_models
    totals = [0.0] * num_models
    for p in params:
        sums = (p.grad**2).reshape(num_models, -1).sum(axis=1)
        for m in range(num_models):
            totals[m] += float(sums[m])
    # Scales live in the gradient dtype: the per-model path multiplies by
    # a Python float that numpy first casts to the array dtype, so the
    # stacked multiply must round each scale the same way before applying.
    scales = np.ones(num_models, dtype=params[0].grad.dtype)
    any_clipped = False
    for m in range(num_models):
        if active is not None and not active[m]:
            continue
        norm = totals[m] ** 0.5
        if norm > max_norm:
            scales[m] = max_norm / norm
            any_clipped = True
    if not any_clipped:
        return
    for p in params:
        buffer = p.grad
        buffer *= scales.reshape(num_models, *([1] * (buffer.ndim - 1)))


class StackedSGD:
    """SGD with momentum/weight-decay over stacked parameters.

    ``step(active=...)`` applies the update only to models that took a
    batch this step (unequal shard sizes leave some models idle on the
    tail steps); idle models keep their weights *and* velocities
    bit-untouched, exactly as if their per-model optimizer never stepped.
    """

    def __init__(
        self,
        params: Sequence[StackedParameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self, active: np.ndarray | None = None, lr: float | None = None) -> None:
        eta = self.lr if lr is None else lr
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if active is None:
                # Full-stack step: the exact in-place update sequence the
                # per-model SGD performs (same ops, same order, no
                # intermediate copies).
                if self.momentum:
                    vel *= self.momentum
                    vel += grad
                    update = grad + self.momentum * vel if self.nesterov else vel
                else:
                    update = grad
                p.value -= eta * update
                continue
            if self.momentum:
                vel_new = self.momentum * vel + grad
                update = grad + self.momentum * vel_new if self.nesterov else vel_new
            else:
                vel_new = vel
                update = grad
            # Masked step: idle models keep weights and velocity
            # bit-untouched, as if their per-model optimizer never ran.
            mask = np.asarray(active, dtype=bool).reshape(
                -1, *([1] * (p.value.ndim - 1))
            )
            if self.momentum:
                vel[...] = np.where(mask, vel_new, vel)
            p.value[...] = np.where(mask, p.value - eta * update, p.value)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


__all__ = [
    "StackedBatchNorm1d",
    "StackedConv2D",
    "StackedDense",
    "StackedDropout",
    "StackedFlatten",
    "StackedGlobalAvgPool",
    "StackedLayer",
    "StackedMaxPool2D",
    "StackedNetwork",
    "StackedParameter",
    "StackedReLU",
    "StackedResidual",
    "StackedSGD",
    "StackingUnsupportedError",
    "clip_gradients_stacked",
    "stacked_predict",
    "stacked_softmax_ce_grad",
    "supports_stacking",
]
