"""From-scratch numpy neural-network substrate.

The BaFFLe paper trains ResNet18 with PyTorch; this environment has neither
PyTorch nor a GPU, so ``repro.nn`` provides the minimal-but-complete training
stack the reproduction needs: layers with exact analytic gradients, losses,
SGD with momentum and weight decay, flat-vector parameter views (used by the
federated-averaging code in :mod:`repro.fl`), classification metrics, and
model serialization (used by the communication-overhead benchmark).

Design notes
------------
- Layers implement explicit ``forward``/``backward`` passes; there is no
  tape-based autograd.  This keeps the substrate small, auditable, and easy
  to property-test against numerical gradients.
- All parameters of a :class:`~repro.nn.network.Network` can be read and
  written as one flat policy-dtype vector (:meth:`Network.get_flat` /
  :meth:`Network.set_flat`).  Federated aggregation, model-replacement
  attacks, and norm-based baseline defenses all operate on these vectors.
- Every stochastic operation takes an explicit ``numpy.random.Generator``.
"""

from repro.nn.activations import LeakyReLU, Sigmoid, Tanh
from repro.nn.adam import Adam
from repro.nn.batchnorm import BatchNorm1d
from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    Residual,
)
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    per_class_error_rates,
    source_focused_errors,
    target_focused_errors,
)
from repro.nn.models import make_cnn, make_mlp, make_resnet_lite
from repro.nn.network import Network
from repro.nn.optim import SGD, ConstantSchedule, StepSchedule
from repro.nn.stacked import (
    StackedNetwork,
    StackedParameter,
    StackedSGD,
    StackingUnsupportedError,
    clip_gradients_stacked,
    stacked_predict,
    stacked_softmax_ce_grad,
    supports_stacking,
)
from repro.nn.serialization import (
    load_network_params,
    network_num_bytes,
    params_from_bytes,
    params_to_bytes,
    save_network_params,
)

__all__ = [
    "Adam",
    "BatchNorm1d",
    "Conv2D",
    "ConstantSchedule",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "LeakyReLU",
    "MSELoss",
    "MaxPool2D",
    "Network",
    "Parameter",
    "ReLU",
    "Residual",
    "SGD",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "StackedNetwork",
    "StackedParameter",
    "StackedSGD",
    "StackingUnsupportedError",
    "StepSchedule",
    "Tanh",
    "accuracy",
    "clip_gradients_stacked",
    "confusion_matrix",
    "he_normal",
    "load_network_params",
    "make_cnn",
    "make_mlp",
    "make_resnet_lite",
    "network_num_bytes",
    "params_from_bytes",
    "params_to_bytes",
    "per_class_error_rates",
    "save_network_params",
    "source_focused_errors",
    "stacked_predict",
    "stacked_softmax_ce_grad",
    "supports_stacking",
    "target_focused_errors",
    "xavier_uniform",
    "zeros_init",
]
