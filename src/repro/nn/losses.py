"""Loss functions.

Each loss exposes ``forward(logits_or_pred, targets) -> float`` and
``backward() -> np.ndarray`` returning the gradient w.r.t. the first
argument, averaged over the batch (so learning rates are batch-size
independent).
"""

from __future__ import annotations

import numpy as np


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    return np.exp(log_softmax(logits))


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy with integer class targets."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, classes), got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(f"targets shape {targets.shape} != ({logits.shape[0]},)")
        log_probs = log_softmax(logits)
        self._probs = np.exp(log_probs)
        self._targets = targets
        return float(-log_probs[np.arange(len(targets), dtype=np.intp), targets].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._targets), dtype=np.intp), self._targets] -= 1.0
        return grad / len(self._targets)


class MSELoss:
    """Mean squared error (used mainly in substrate tests)."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if pred.shape != targets.shape:
            raise ValueError(f"shape mismatch {pred.shape} vs {targets.shape}")
        self._diff = pred - targets
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
