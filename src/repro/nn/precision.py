"""Execution precision policy: float64 (default) or float32, process-wide.

The repo's bit-identity contract is scoped *per policy*: under the default
``float64`` policy every run is bit-identical to the seed baseline; under
the opt-in ``float32`` policy runs are bit-identical to each other across
every engine/store/mode combination, but not to float64 runs (they are a
different numerical trajectory by construction).

The active policy lives in the ``REPRO_DTYPE_POLICY`` environment variable
rather than a module global, mirroring :mod:`repro.analysis.sanitize`: a
process-pool worker forked (or spawned) inside a :func:`dtype_policy` block
inherits the environment and therefore the policy, with no extra plumbing
through initializers.  Reading one environment variable per allocation site
is far below the cost of the allocations themselves.

This module imports nothing from the rest of ``repro`` so every layer of
the stack (nn, fl, data, analysis) can import it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

#: Environment variable holding the active policy name.
ENV_POLICY = "REPRO_DTYPE_POLICY"

#: Recognised policy names, in preference order (first is the default).
DTYPE_POLICIES = ("float64", "float32")

_POLICY_DTYPES = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


def get_dtype_policy() -> str:
    """The active policy name (``"float64"`` unless overridden)."""
    name = os.environ.get(ENV_POLICY, "").strip().lower()
    return name if name in _POLICY_DTYPES else "float64"


def set_dtype_policy(name: str) -> None:
    """Set the process-wide policy (and that of future forked workers)."""
    if name not in _POLICY_DTYPES:
        raise ValueError(
            f"unknown dtype policy {name!r}; expected one of {DTYPE_POLICIES}"
        )
    os.environ[ENV_POLICY] = name


def active_dtype() -> np.dtype:
    """The numpy dtype of the active policy."""
    return _POLICY_DTYPES[get_dtype_policy()]


def itemsize() -> int:
    """Bytes per scalar under the active policy (8 or 4)."""
    return active_dtype().itemsize


@contextmanager
def dtype_policy(name: str):
    """Run a block under the given policy, restoring the previous one.

    Like :func:`repro.analysis.sanitize.scope`, this mutates the
    environment so pool workers created inside the block inherit the
    policy.  Passing the current policy is a cheap no-op.
    """
    if name not in _POLICY_DTYPES:
        raise ValueError(
            f"unknown dtype policy {name!r}; expected one of {DTYPE_POLICIES}"
        )
    previous = os.environ.get(ENV_POLICY)
    os.environ[ENV_POLICY] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_POLICY, None)
        else:
            os.environ[ENV_POLICY] = previous


__all__ = [
    "DTYPE_POLICIES",
    "ENV_POLICY",
    "active_dtype",
    "dtype_policy",
    "get_dtype_policy",
    "itemsize",
    "set_dtype_policy",
]
