"""Sequential network container with flat-parameter views.

Federated learning treats a model as one big weight vector: FedAvg averages
vectors, model replacement rescales vector differences, and norm-clipping
baselines bound vector norms.  :class:`Network` therefore exposes its
parameters both as structured per-layer arrays and as a single flat
vector in the active precision-policy dtype (float64 by default).
"""

from __future__ import annotations

import copy
import os
from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.nn.losses import softmax
from repro.nn.precision import active_dtype


def _sanitizer():
    """The :mod:`repro.analysis.sanitize` module when sanitizing is on, else None.

    Imported lazily at call time: ``repro.analysis`` imports back into
    ``repro.fl`` (which imports this module), so a module-level import
    here would be cyclic.  The cheap env-var check keeps the disabled
    path free of any import machinery.
    """
    if not os.environ.get("REPRO_SANITIZE"):
        return None
    from repro.analysis import sanitize

    return sanitize if sanitize.enabled() else None


class Network:
    """A feed-forward stack of :class:`~repro.nn.layers.Layer` objects."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=active_dtype())
        sanitize = _sanitizer()
        for index, layer in enumerate(self.layers):
            out = layer.forward(out, train=train)
            if sanitize is not None:
                sanitize.assert_dtype(
                    out, f"forward[{index}:{type(layer).__name__}]"
                )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        sanitize = _sanitizer()
        for index, layer in zip(
            range(len(self.layers) - 1, -1, -1), reversed(self.layers)
        ):
            grad = layer.backward(grad)
            if sanitize is not None:
                sanitize.assert_dtype(
                    grad, f"backward[{index}:{type(layer).__name__}]"
                )
        return grad

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def get_flat(self) -> np.ndarray:
        """Concatenate all parameter values into one flat vector (a copy)."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=active_dtype())
        return np.concatenate([p.value.ravel() for p in params])

    def set_flat(self, vector: np.ndarray) -> None:
        """Write a flat vector back into the structured parameters."""
        vector = np.asarray(vector, dtype=active_dtype())
        expected = self.num_parameters
        if vector.shape != (expected,):
            raise ValueError(f"expected flat vector of length {expected}, got {vector.shape}")
        offset = 0
        for p in self.parameters():
            p.value[...] = vector[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_grad_flat(self) -> np.ndarray:
        """Concatenate all parameter gradients into one flat vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=active_dtype())
        return np.concatenate([p.grad.ravel() for p in params])

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Predicted class labels, evaluated in mini-batches."""
        return np.concatenate(
            [self.forward(xb).argmax(axis=1) for xb in _batches(x, batch_size)]
        )

    def predict_proba(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Predicted class probabilities (softmax of the logits)."""
        return np.concatenate([softmax(self.forward(xb)) for xb in _batches(x, batch_size)])

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def clone(self) -> "Network":
        """Deep copy of the network (weights included, caches discarded)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        names = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Network([{names}], params={self.num_parameters})"


def _batches(x: np.ndarray, batch_size: int):
    x = np.asarray(x, dtype=active_dtype())
    if len(x) == 0:
        raise ValueError("cannot iterate over an empty input array")
    for start in range(0, len(x), batch_size):
        yield x[start : start + batch_size]
