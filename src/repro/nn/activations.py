"""Additional activation layers (beyond ReLU in :mod:`repro.nn.layers`)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if train:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500.0, 500.0)))
        if train:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * self._out * (1.0 - self._out)


class LeakyReLU(Layer):
    """Leaky rectified linear unit: ``x if x > 0 else alpha * x``."""

    def __init__(self, alpha: float = 0.01) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._mask = x > 0
        return np.where(x > 0, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return grad_out * np.where(self._mask, 1.0, self.alpha)
