"""Model factories.

The paper trains ResNet18; here we provide three architectures of increasing
cost, all exposing the same :class:`~repro.nn.network.Network` interface:

- :func:`make_mlp` — the workhorse for experiments and benchmarks.  BaFFLe
  validates a model only through its *predictions*, so a small MLP on the
  synthetic tasks exercises exactly the same defense code path at a tiny
  fraction of the training cost.
- :func:`make_cnn` — a LeNet-style convolutional network for image-shaped
  inputs.
- :func:`make_resnet_lite` — a small residual CNN (the closest structural
  analogue of the paper's ResNet18 that is trainable on CPU in seconds).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Residual,
)
from repro.nn.network import Network


def make_mlp(
    input_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden: Sequence[int] = (64, 32),
    dropout: float = 0.0,
) -> Network:
    """Multi-layer perceptron with ReLU activations."""
    if input_dim <= 0 or num_classes <= 0:
        raise ValueError("input_dim and num_classes must be positive")
    layers: list = []
    prev = input_dim
    for width in hidden:
        layers.append(Dense(prev, width, rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng))
        prev = width
    layers.append(Dense(prev, num_classes, rng))
    return Network(layers)


def make_cnn(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    channels: Sequence[int] = (8, 16),
) -> Network:
    """LeNet-style CNN for ``(C, H, W)`` inputs.

    Each stage is Conv(3x3, pad 1) + ReLU + MaxPool(2); spatial dimensions
    must be divisible by ``2 ** len(channels)``.
    """
    c, h, w = input_shape
    stages = len(channels)
    if h % (2**stages) or w % (2**stages):
        raise ValueError(f"spatial dims {h}x{w} not divisible by {2 ** stages}")
    layers: list = []
    prev_c = c
    for out_c in channels:
        layers.append(Conv2D(prev_c, out_c, kernel_size=3, rng=rng, padding=1))
        layers.append(ReLU())
        layers.append(MaxPool2D(2))
        prev_c = out_c
    layers.append(Flatten())
    feat = prev_c * (h // 2**stages) * (w // 2**stages)
    layers.append(Dense(feat, num_classes, rng))
    return Network(layers)


def make_resnet_lite(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    num_blocks: int = 2,
) -> Network:
    """Small residual CNN: stem conv, ``num_blocks`` residual blocks, GAP head.

    A structural miniature of ResNet18 (conv stem, identity skip connections,
    global average pooling before the classifier).
    """
    c, h, w = input_shape
    del h, w  # residual blocks are shape-preserving; GAP handles any spatial size
    layers: list = [Conv2D(c, width, kernel_size=3, rng=rng, padding=1), ReLU()]
    for _ in range(num_blocks):
        layers.append(
            Residual(
                [
                    Conv2D(width, width, kernel_size=3, rng=rng, padding=1),
                    ReLU(),
                    Conv2D(width, width, kernel_size=3, rng=rng, padding=1),
                ]
            )
        )
        layers.append(ReLU())
    layers.append(GlobalAvgPool())
    layers.append(Dense(width, num_classes, rng))
    return Network(layers)
