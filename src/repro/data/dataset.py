"""The labelled-dataset container used across the library."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class Dataset:
    """A labelled dataset ``D = {(x, y)}`` with a fixed class universe.

    ``x`` is ``(N, ...)`` float features (flattened vectors for MLPs, or
    ``(N, C, H, W)`` images), ``y`` is ``(N,)`` integer labels in
    ``[0, num_classes)``.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, num_classes: int) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} samples but y has {len(y)}")
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {num_classes}")
        if len(y) and (y.min() < 0 or y.max() >= num_classes):
            raise ValueError(
                f"labels must lie in [0, {num_classes}), got range "
                f"[{y.min()}, {y.max()}]"
            )
        self.x = x
        self.y = y
        self.num_classes = num_classes

    def __len__(self) -> int:
        return len(self.y)

    def __repr__(self) -> str:
        return (
            f"Dataset(n={len(self)}, num_classes={self.num_classes}, "
            f"x_shape={self.x.shape[1:]})"
        )

    # ------------------------------------------------------------------
    # Slicing and combination
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """New dataset restricted to ``indices`` (copies the data)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.x[indices].copy(), self.y[indices].copy(), self.num_classes)

    def filter_by_class(self, classes: Iterable[int]) -> "Dataset":
        """New dataset keeping only samples whose label is in ``classes``."""
        wanted = np.isin(self.y, np.fromiter(classes, dtype=np.int64))
        return self.subset(np.flatnonzero(wanted))

    def split(self, fraction: float, rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random split into ``(first, second)`` with ``first`` ~ ``fraction``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Copy of the dataset with rows in random order."""
        return self.subset(rng.permutation(len(self)))

    def take(self, n: int, rng: np.random.Generator | None = None) -> "Dataset":
        """First ``n`` samples, or ``n`` random samples when ``rng`` given."""
        if n > len(self):
            raise ValueError(f"cannot take {n} samples from dataset of size {len(self)}")
        if rng is None:
            return self.subset(np.arange(n, dtype=np.intp))
        return self.subset(rng.choice(len(self), size=n, replace=False))

    @staticmethod
    def concat(datasets: Sequence["Dataset"]) -> "Dataset":
        """Concatenate datasets sharing one class universe."""
        if not datasets:
            raise ValueError("cannot concatenate an empty list of datasets")
        num_classes = datasets[0].num_classes
        if any(d.num_classes != num_classes for d in datasets):
            raise ValueError("datasets disagree on num_classes")
        return Dataset(
            np.concatenate([d.x for d in datasets]),
            np.concatenate([d.y for d in datasets]),
            num_classes,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def class_counts(self) -> np.ndarray:
        """Per-class sample counts, length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)

    def class_distribution(self) -> np.ndarray:
        """Per-class sample fractions (zeros for an empty dataset)."""
        counts = self.class_counts()
        total = counts.sum()
        if total == 0:
            return np.zeros(self.num_classes, dtype=np.float64)
        return counts / total

    def with_labels(self, y: np.ndarray) -> "Dataset":
        """Copy of this dataset with labels replaced (used by poisoning)."""
        return Dataset(self.x.copy(), y, self.num_classes)
