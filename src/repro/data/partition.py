"""Federated data partitioning.

Implements the client-data assignments of the paper's evaluation:

- :func:`dirichlet_partition` — the non-IID split used for CIFAR-10
  ("we assign data to clients according to the Dirichlet distribution with
  hyper parameter 0.9", Sec. VI-A);
- :func:`writer_partition` — FEMNIST's natural one-client-per-writer split;
- :func:`iid_partition` — the uniform baseline;
- :func:`split_client_server` — the C-S% validation-data splits of Table I
  (clients jointly hold C% of the data, the server holds S%).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples: int = 1,
) -> list[np.ndarray]:
    """Split sample indices across clients with per-class Dirichlet weights.

    For every class, client shares are drawn from ``Dirichlet(alpha * 1)``;
    low ``alpha`` concentrates a class on few clients (more non-IID).  The
    paper uses ``alpha = 0.9``.  Clients left with fewer than ``min_samples``
    samples are topped up by moving samples from the largest clients, so all
    clients can participate in training.

    Returns a list of ``num_clients`` index arrays (a partition of
    ``range(len(labels))``).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if len(labels) < num_clients * min_samples:
        raise ValueError(
            f"{len(labels)} samples cannot give {num_clients} clients "
            f">= {min_samples} samples each"
        )
    buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls in np.unique(labels):
        cls_idx = np.flatnonzero(labels == cls)
        rng.shuffle(cls_idx)
        shares = rng.dirichlet(np.full(num_clients, alpha, dtype=np.float64))
        # Convert shares to integer counts that sum to len(cls_idx).
        counts = np.floor(shares * len(cls_idx)).astype(np.int64)
        remainder = len(cls_idx) - counts.sum()
        if remainder:
            extra = rng.choice(num_clients, size=remainder, replace=True, p=shares)
            np.add.at(counts, extra, 1)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        for client in range(num_clients):
            buckets[client].append(cls_idx[offsets[client] : offsets[client + 1]])
    parts = [
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        for chunks in buckets
    ]
    _rebalance_small_clients(parts, min_samples, rng)
    for part in parts:
        rng.shuffle(part)
    return parts


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniform random partition of ``range(num_samples)`` into equal shards."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if num_samples < num_clients:
        raise ValueError(f"{num_samples} samples < {num_clients} clients")
    perm = rng.permutation(num_samples)
    return [np.sort(shard) for shard in np.array_split(perm, num_clients)]


def writer_partition(writer_ids: np.ndarray) -> list[np.ndarray]:
    """One client per writer: group sample indices by their writer id."""
    writer_ids = np.asarray(writer_ids, dtype=np.int64)
    if writer_ids.ndim != 1:
        raise ValueError(f"writer_ids must be 1-D, got shape {writer_ids.shape}")
    return [np.flatnonzero(writer_ids == w) for w in np.unique(writer_ids)]


def split_client_server(
    dataset: Dataset, client_share: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Split validation data between clients (jointly) and the server.

    Mirrors the paper's C-S% splits: ``client_share = 0.9`` gives clients
    90% of the data and the server 10%.
    """
    if not 0.0 < client_share < 1.0:
        raise ValueError(f"client_share must be in (0, 1), got {client_share}")
    return dataset.split(client_share, rng)


def _rebalance_small_clients(
    parts: list[np.ndarray], min_samples: int, rng: np.random.Generator
) -> None:
    """Move samples from the largest clients to any below ``min_samples``."""
    for client, part in enumerate(parts):
        while len(parts[client]) < min_samples:
            donor = max(range(len(parts)), key=lambda c: len(parts[c]))
            if donor == client or len(parts[donor]) <= min_samples:
                raise ValueError("cannot satisfy min_samples; too little data")
            take = rng.integers(0, len(parts[donor]))
            moved = parts[donor][take]
            parts[donor] = np.delete(parts[donor], take)
            parts[client] = np.append(parts[client], moved)
        del part
