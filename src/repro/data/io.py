"""Dataset save/load (npz).

Lets experiments freeze the exact data a run used (e.g. to hand a
colleague a failing case) and swap real CIFAR-10/FEMNIST dumps into the
same pipeline later.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` as a compressed npz archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        x=dataset.x,
        y=dataset.y,
        num_classes=np.array(dataset.num_classes),
    )
    # np.savez appends .npz when missing; normalise the reported path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`."""
    with np.load(path) as archive:
        missing = {"x", "y", "num_classes"} - set(archive.files)
        if missing:
            raise ValueError(f"archive is missing arrays: {sorted(missing)}")
        return Dataset(
            archive["x"], archive["y"], int(archive["num_classes"])
        )
