"""Synthetic FEMNIST-like task: handwritten glyphs with per-writer styles.

FEMNIST's defining property for the paper is *writer-induced non-IID-ness*:
each client corresponds to one writer, and writers differ systematically
(slant, stroke thickness, pressure).  The paper's FEMNIST attack is
label-flipping an entire source class to a target class.

This generator reproduces that structure:

- each class has a base glyph pattern (fixed by a structure seed);
- each *writer* has persistent style parameters: slant (horizontal shear),
  thickness (non-linear stroke gain), intensity, a writer-specific smudge
  field, and a writer-specific class usage distribution (some writers rarely
  produce some characters);
- samples are the class glyph rendered in the writer's style plus noise.

Clients built from :func:`repro.data.partition.writer_partition` over this
data inherit exactly the heterogeneity BaFFLe's evaluation leans on ("data
unpredictability against adaptive attacks").
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


class SyntheticFemnist:
    """Procedural many-class glyph distribution with writer styles.

    Parameters
    ----------
    structure_seed:
        Seed fixing class glyphs and writer styles.
    num_classes:
        Number of glyph classes.  FEMNIST has 62; the default of 10 keeps
        CPU experiments fast while preserving the many-class structure
        (pass 62 for a full-scale run).
    num_writers:
        Number of distinct writers (clients map 1:1 to writers).
    image_size:
        Side length of the square single-channel glyph images.
    noise:
        Standard deviation of the per-pixel noise.
    class_concentration:
        Dirichlet concentration of each writer's class-usage distribution
        (lower = more skewed writers).
    """

    def __init__(
        self,
        structure_seed: int = 4242,
        num_classes: int = 10,
        num_writers: int = 50,
        image_size: int = 8,
        noise: float = 0.55,
        class_concentration: float = 0.9,
    ) -> None:
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        if num_classes < 2:
            raise ValueError("need at least 2 classes")
        if num_writers < 1:
            raise ValueError("need at least one writer")
        self.num_classes = num_classes
        self.num_writers = num_writers
        self.image_size = image_size
        self.noise = noise
        structure_rng = np.random.default_rng(structure_seed)
        self._glyphs = self._make_glyphs(structure_rng)
        self._writer_slant = structure_rng.integers(-1, 2, size=num_writers)
        self._writer_gain = structure_rng.uniform(0.7, 1.4, size=num_writers)
        self._writer_intensity = structure_rng.uniform(0.8, 1.1, size=num_writers)
        self._writer_smudge = structure_rng.normal(
            0.0, 0.05, size=(num_writers, image_size, image_size)
        )
        self._writer_class_probs = structure_rng.dirichlet(
            np.full(num_classes, class_concentration, dtype=np.float64),
            size=num_writers,
        )

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    @property
    def image_shape(self) -> tuple[int, int, int]:
        """Shape of a single glyph image, ``(1, H, W)``."""
        return (1, self.image_size, self.image_size)

    @property
    def flat_dim(self) -> int:
        """Length of a flattened glyph vector."""
        return self.image_size * self.image_size

    def writer_class_distribution(self, writer: int) -> np.ndarray:
        """The class-usage distribution of one writer."""
        self._check_writer(writer)
        return self._writer_class_probs[writer].copy()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_for_writer(
        self, writer: int, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` samples produced by one writer (their class skew applies)."""
        self._check_writer(writer)
        labels = rng.choice(self.num_classes, size=n, p=self._writer_class_probs[writer])
        images = self._render(labels, np.full(n, writer, dtype=np.int64), rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes)

    def sample(
        self, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` samples from random writers (the pooled distribution)."""
        dataset, _ = self.sample_with_writers(n, rng, flat=flat)
        return dataset

    def sample_with_writers(
        self, n: int, rng: np.random.Generator, flat: bool = True
    ) -> tuple[Dataset, np.ndarray]:
        """Like :meth:`sample` but also return the per-sample writer ids."""
        writers = rng.integers(0, self.num_writers, size=n)
        probs = self._writer_class_probs[writers]
        # Vectorized per-row categorical sampling via inverse CDF.
        cdf = probs.cumsum(axis=1)
        u = rng.random(n)[:, None]
        labels = (u > cdf).sum(axis=1)
        images = self._render(labels, writers, rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes), writers

    def sample_class_for_writer(
        self, writer: int, label: int, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` samples of a specific class from a specific writer."""
        self._check_writer(writer)
        labels = np.full(n, label, dtype=np.int64)
        images = self._render(labels, np.full(n, writer, dtype=np.int64), rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes)

    # ------------------------------------------------------------------
    # Rendering internals
    # ------------------------------------------------------------------
    def _make_glyphs(self, rng: np.random.Generator) -> np.ndarray:
        """Per-class stroke patterns in [0, 1], shape (K, H, W)."""
        coarse = (rng.random((self.num_classes, 4, 4)) < 0.45).astype(np.float64)
        # Guarantee every glyph has at least a minimal stroke.
        for k in range(self.num_classes):
            if coarse[k].sum() < 3:
                flat_idx = rng.choice(16, size=3, replace=False)
                coarse[k].ravel()[flat_idx] = 1.0
        factor = self.image_size // 4
        glyphs = np.kron(coarse, np.ones((factor, factor), dtype=np.float64))
        return 0.9 * glyphs

    def _render(
        self, labels: np.ndarray, writers: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        images = self._glyphs[labels].copy()
        for writer in np.unique(writers):
            rows = writers == writer
            batch = images[rows]
            slant = int(self._writer_slant[writer])
            if slant:
                batch = np.roll(batch, slant, axis=2)
            batch = np.clip(batch * self._writer_gain[writer], 0.0, 1.0)
            batch = batch * self._writer_intensity[writer] + self._writer_smudge[writer]
            images[rows] = batch
        images += rng.normal(0.0, self.noise, size=images.shape)
        return np.clip(images, 0.0, 1.0)[:, None, :, :]

    def _check_writer(self, writer: int) -> None:
        if not 0 <= writer < self.num_writers:
            raise ValueError(f"writer {writer} out of range [0, {self.num_writers})")


def _maybe_flatten(images: np.ndarray, flat: bool) -> np.ndarray:
    if flat:
        return images.reshape(len(images), -1)
    return images
