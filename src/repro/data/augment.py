"""Data augmentation for image-shaped inputs.

Light augmentation is standard for CIFAR-scale training; the functions
here operate on ``(N, C, H, W)`` tensors, take explicit generators, and
return new arrays (inputs are never mutated).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


def random_horizontal_flip(
    x: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    x = _check_images(x).copy()
    flip = rng.random(len(x)) < probability
    x[flip] = x[flip, :, :, ::-1]
    return x


def random_shift(
    x: np.ndarray, rng: np.random.Generator, max_shift: int = 1
) -> np.ndarray:
    """Translate each image by up to ``max_shift`` pixels (zero padding)."""
    if max_shift < 0:
        raise ValueError(f"max_shift must be >= 0, got {max_shift}")
    x = _check_images(x)
    if max_shift == 0:
        return x.copy()
    out = np.zeros_like(x)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(len(x), 2))
    for i, (dy, dx) in enumerate(shifts):
        shifted = np.roll(x[i], (dy, dx), axis=(1, 2))
        if dy > 0:
            shifted[:, :dy, :] = 0.0
        elif dy < 0:
            shifted[:, dy:, :] = 0.0
        if dx > 0:
            shifted[:, :, :dx] = 0.0
        elif dx < 0:
            shifted[:, :, dx:] = 0.0
        out[i] = shifted
    return out


def gaussian_noise(
    x: np.ndarray, rng: np.random.Generator, std: float = 0.05
) -> np.ndarray:
    """Add clipped Gaussian pixel noise."""
    if std < 0:
        raise ValueError(f"std must be >= 0, got {std}")
    x = np.asarray(x, dtype=np.float64)
    return np.clip(x + rng.normal(0.0, std, size=x.shape), 0.0, 1.0)


def augment_dataset(
    dataset: Dataset,
    rng: np.random.Generator,
    flip_probability: float = 0.5,
    max_shift: int = 1,
    noise_std: float = 0.0,
) -> Dataset:
    """Apply the standard augmentation stack to an image dataset."""
    x = dataset.x
    x = random_horizontal_flip(x, rng, flip_probability)
    x = random_shift(x, rng, max_shift)
    if noise_std > 0:
        x = gaussian_noise(x, rng, noise_std)
    return Dataset(x, dataset.y.copy(), dataset.num_classes)


def _check_images(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) images, got shape {x.shape}")
    return x
