"""Synthetic CIFAR-10-like task with a semantic-backdoor sub-population.

The paper's CIFAR-10 attack (following Bagdasaryan et al.) relabels *cars
with a striped background* as *birds*: a naturally occurring minority
feature sub-population of one class.  This generator reproduces that
structure procedurally:

- each of the 10 classes has a smooth colour *prototype* (fixed by a
  structure seed, shared by train/test/backdoor sampling);
- a sample is its class prototype under brightness/contrast jitter plus
  pixel noise — learnable to high accuracy, but not trivially separable;
- a configurable fraction of class-1 ("car") samples additionally carry a
  *striped background*: alternating bright rows on the image border.  These
  are the backdoor instances ``X*`` of the paper's Sec. III-A.

The striped feature is visible to any classifier (it changes border
pixels), so a model-replacement attacker can teach the global model
"striped car -> bird" while an honest model keeps classifying striped cars
correctly.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

# Class indices mirror CIFAR-10 semantics: 1 = automobile, 2 = bird.
CIFAR_BACKDOOR_SOURCE_CLASS = 1
CIFAR_BACKDOOR_TARGET_CLASS = 2


class SyntheticCifar:
    """Procedural 10-class colour-image distribution.

    Parameters
    ----------
    structure_seed:
        Seed fixing the class prototypes (the "ground truth").  Two
        generators built with the same structure seed define the same task.
    image_size:
        Side length of the square images (channels fixed at 3).
    num_classes:
        Number of classes (10 to mirror CIFAR-10).
    noise:
        Standard deviation of the per-pixel Gaussian noise.
    striped_fraction:
        Fraction of *car* samples that naturally carry the striped
        background (the backdoor sub-population).
    """

    def __init__(
        self,
        structure_seed: int = 2021,
        image_size: int = 8,
        num_classes: int = 10,
        noise: float = 0.6,
        striped_fraction: float = 0.08,
    ) -> None:
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        if num_classes < 3:
            raise ValueError("need at least 3 classes (source, target, rest)")
        if not 0.0 <= striped_fraction < 1.0:
            raise ValueError(f"striped_fraction must be in [0, 1), got {striped_fraction}")
        self.image_size = image_size
        self.num_classes = num_classes
        self.noise = noise
        self.striped_fraction = striped_fraction
        structure_rng = np.random.default_rng(structure_seed)
        self._prototypes = self._make_prototypes(structure_rng)
        self._stripe_pattern = self._make_stripe_pattern()
        self._border_mask = self._make_border_mask()

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    @property
    def image_shape(self) -> tuple[int, int, int]:
        """Shape of a single image, ``(C, H, W)``."""
        return (3, self.image_size, self.image_size)

    @property
    def flat_dim(self) -> int:
        """Length of a flattened image vector."""
        return 3 * self.image_size * self.image_size

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` samples from the natural distribution.

        Labels are uniform over classes; the striped sub-population appears
        inside the car class at rate ``striped_fraction`` and keeps its
        *correct* label (honest clients are not assumed to hold relabelled
        backdoor data — the paper's worst-case setting).
        """
        labels = rng.integers(0, self.num_classes, size=n)
        striped = (labels == CIFAR_BACKDOOR_SOURCE_CLASS) & (
            rng.random(n) < self.striped_fraction
        )
        images = self._render(labels, striped, rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes)

    def sample_class(
        self, label: int, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` samples of one class (no striped feature)."""
        labels = np.full(n, label, dtype=np.int64)
        images = self._render(labels, np.zeros(n, dtype=bool), rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes)

    def sample_backdoor_instances(
        self, n: int, rng: np.random.Generator, flat: bool = True
    ) -> Dataset:
        """Draw ``n`` backdoor instances: striped cars, *correctly* labelled.

        The attacker relabels these to the target class for poisoning; the
        evaluation harness uses them (with the target label) to measure the
        backdoor accuracy of eq. (1).
        """
        labels = np.full(n, CIFAR_BACKDOOR_SOURCE_CLASS, dtype=np.int64)
        images = self._render(labels, np.ones(n, dtype=bool), rng)
        return Dataset(_maybe_flatten(images, flat), labels, self.num_classes)

    # ------------------------------------------------------------------
    # Rendering internals
    # ------------------------------------------------------------------
    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """Smooth per-class colour patterns in [0, 1], shape (K, 3, H, W)."""
        coarse = rng.uniform(0.0, 1.0, size=(self.num_classes, 3, 4, 4))
        factor = self.image_size // 4
        smooth = np.kron(coarse, np.ones((1, 1, factor, factor), dtype=np.float64))
        # Add a class-specific base colour so classes differ in both texture
        # and hue (keeps the task learnable at small image sizes).
        base = rng.uniform(0.2, 0.8, size=(self.num_classes, 3, 1, 1))
        return 0.6 * smooth + 0.4 * base

    def _make_stripe_pattern(self) -> np.ndarray:
        """Alternating bright rows, shape (1, H, W) broadcast over channels."""
        rows = (np.arange(self.image_size, dtype=np.intp) % 2 == 0).astype(np.float64)
        return np.broadcast_to(rows[:, None], (self.image_size, self.image_size)).copy()

    def _make_border_mask(self) -> np.ndarray:
        """Background region: the 1-pixel image border plus corners band."""
        mask = np.zeros((self.image_size, self.image_size), dtype=np.float64)
        border = max(1, self.image_size // 8)
        mask[:border, :] = 1.0
        mask[-border:, :] = 1.0
        mask[:, :border] = 1.0
        mask[:, -border:] = 1.0
        return mask

    def _render(
        self, labels: np.ndarray, striped: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = len(labels)
        images = self._prototypes[labels].copy()
        # Per-sample brightness and contrast jitter.
        brightness = rng.uniform(-0.1, 0.1, size=(n, 1, 1, 1))
        contrast = rng.uniform(0.9, 1.1, size=(n, 1, 1, 1))
        images = images * contrast + brightness
        if striped.any():
            blend = self._stripe_pattern * self._border_mask
            images[striped] = images[striped] * (1.0 - blend) + 0.95 * blend
        images += rng.normal(0.0, self.noise, size=images.shape)
        return np.clip(images, 0.0, 1.0)


def _maybe_flatten(images: np.ndarray, flat: bool) -> np.ndarray:
    if flat:
        return images.reshape(len(images), -1)
    return images
