"""Lightweight feature transforms shared by examples and experiments."""

from __future__ import annotations

import numpy as np


def flatten_images(x: np.ndarray) -> np.ndarray:
    """Reshape ``(N, C, H, W)`` images to ``(N, C*H*W)`` feature vectors."""
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError(f"expected at least 2-D input, got shape {x.shape}")
    return x.reshape(len(x), -1)


def normalize_features(
    x: np.ndarray, mean: np.ndarray | None = None, std: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standardize features to zero mean / unit variance.

    When ``mean``/``std`` are omitted they are estimated from ``x`` (fit on
    train, apply to test).  Returns ``(normalized, mean, std)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if mean is None:
        mean = x.mean(axis=0)
    if std is None:
        std = x.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    return (x - mean) / std, mean, std
