"""Data substrate: synthetic datasets and federated partitioning.

The paper evaluates on CIFAR-10 and FEMNIST.  This environment has no
network access, so :mod:`repro.data` provides procedural generators that
reproduce the *structure* those experiments rely on:

- :mod:`repro.data.synthetic_cifar` — a 10-class colour-image task with a
  minority "striped background" sub-population of the car class, hosting the
  paper's semantic backdoor (striped cars -> "bird");
- :mod:`repro.data.synthetic_femnist` — a many-class glyph task whose
  samples carry per-writer style parameters, reproducing FEMNIST's
  writer-induced non-IID-ness;
- :mod:`repro.data.partition` — the Dirichlet(alpha) client partitioner the
  paper uses (alpha = 0.9), writer-based partitioning, and the client/server
  validation-data splits of Table I.

All generators take explicit ``numpy.random.Generator`` objects and are
fully deterministic given a seed.
"""

from repro.data.augment import (
    augment_dataset,
    gaussian_noise,
    random_horizontal_flip,
    random_shift,
)
from repro.data.dataset import Dataset
from repro.data.io import load_dataset, save_dataset
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    split_client_server,
    writer_partition,
)
from repro.data.synthetic_cifar import (
    CIFAR_BACKDOOR_SOURCE_CLASS,
    CIFAR_BACKDOOR_TARGET_CLASS,
    SyntheticCifar,
)
from repro.data.synthetic_femnist import SyntheticFemnist
from repro.data.transforms import flatten_images, normalize_features

__all__ = [
    "CIFAR_BACKDOOR_SOURCE_CLASS",
    "CIFAR_BACKDOOR_TARGET_CLASS",
    "Dataset",
    "augment_dataset",
    "SyntheticCifar",
    "SyntheticFemnist",
    "dirichlet_partition",
    "flatten_images",
    "gaussian_noise",
    "iid_partition",
    "load_dataset",
    "normalize_features",
    "random_horizontal_flip",
    "random_shift",
    "save_dataset",
    "split_client_server",
    "writer_partition",
]
