"""The CIFAR-10 semantic backdoor: striped-background cars -> "bird".

Semantic backdoors (Bagdasaryan et al.) relabel a *naturally occurring*
feature sub-population — no pixel trigger is added at inference time, so
input-filtering defenses cannot see the attack.  The synthetic CIFAR task
(:class:`repro.data.SyntheticCifar`) exposes exactly such a sub-population:
cars rendered over a striped background.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorTask
from repro.data.dataset import Dataset
from repro.data.synthetic_cifar import CIFAR_BACKDOOR_TARGET_CLASS, SyntheticCifar


class SemanticBackdoor(BackdoorTask):
    """Striped cars classified as the target class (default: bird).

    Parameters
    ----------
    task:
        The data distribution backdoor instances are drawn from.
    target_label:
        The attacker's target class ``y_t``.
    """

    def __init__(
        self,
        task: SyntheticCifar,
        target_label: int = CIFAR_BACKDOOR_TARGET_CLASS,
    ) -> None:
        if not 0 <= target_label < task.num_classes:
            raise ValueError(f"target label {target_label} out of range")
        self.task = task
        self._target_label = target_label

    @property
    def target_label(self) -> int:
        return self._target_label

    def poisoned_training_data(self, n: int, rng: np.random.Generator) -> Dataset:
        """Striped cars relabelled to the target class."""
        instances = self.task.sample_backdoor_instances(n, rng)
        return instances.with_labels(
            np.full(len(instances), self._target_label, dtype=np.int64)
        )

    def backdoor_test_instances(self, n: int, rng: np.random.Generator) -> Dataset:
        """Fresh striped cars with their true (car) label."""
        return self.task.sample_backdoor_instances(n, rng)
