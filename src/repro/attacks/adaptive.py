"""The defense-aware adaptive attacker (paper Sec. VI-C).

This attacker knows everything the paper grants it: the validation method,
the global parameters ``l`` and ``q``, and the history of accepted models.
Before submitting a poisoned update it runs BaFFLe's own Algorithm 2 on its
*local* data against that history, and tunes the attack (progressively
lowering the poison ratio, i.e. training the backdoored model to keep all
of its own clean data correctly classified) until its self-check accepts
the candidate — a rejection-sampling search for a stealthy injection.

Injections that pass the attacker's self-check are the paper's *adaptive
injections*: "poisoned injections which remain below the rejection
threshold — in the view of the adversary".  BaFFLe's claim, which Table II
confirms, is that the validators' *unknown, diverse* data still exposes
them: self-stealth does not transfer across datasets.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.attacks.base import BackdoorTask
from repro.attacks.model_replacement import ModelReplacementClient, ReplacementConfig
from repro.core.validation import MisclassificationValidator, ValidationContext
from repro.data.dataset import Dataset
from repro.fl.client import LocalTrainingConfig
from repro.nn.network import Network

HistoryProvider = Callable[[], Sequence[tuple[int, Network]]]


class AdaptiveReplacementClient(ModelReplacementClient):
    """Model replacement with a self-run BaFFLe check before submission.

    Not ``parallel_safe``: the self-check reads the *live* defense history
    through ``history_provider`` and records per-round outcomes the
    experiment harness inspects, so this client always executes in the
    parent process.

    Parameters
    ----------
    history_provider:
        Callable returning the current accepted-model history (the paper's
        adaptive adversary is assumed to know it; experiments wire this to
        the defense's own history object).
    max_trials:
        Rejection-sampling budget per injection round.
    ratio_decay:
        Multiplicative decay of the poison ratio after each failed
        self-check (more clean data -> better-behaved local predictions).
    boost_decay:
        Multiplicative decay of the *replacement fraction* after each
        failed self-check.  Submitting a fraction ``alpha`` of the full
        boost drives the global model to ``G + alpha (X - G)`` — a weaker
        backdoor but a much smaller prediction footprint.  The attacker
        self-validates exactly that interpolated model.
    """

    parallel_safe = False

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        backdoor: BackdoorTask,
        replacement: ReplacementConfig,
        attack_rounds: frozenset[int] | set[int],
        history_provider: HistoryProvider,
        max_trials: int = 6,
        ratio_decay: float = 0.6,
        boost_decay: float = 0.75,
    ) -> None:
        super().__init__(client_id, dataset, backdoor, replacement, attack_rounds)
        if max_trials < 1:
            raise ValueError(f"max_trials must be >= 1, got {max_trials}")
        if not 0.0 < ratio_decay < 1.0:
            raise ValueError(f"ratio_decay must be in (0, 1), got {ratio_decay}")
        if not 0.0 < boost_decay <= 1.0:
            raise ValueError(f"boost_decay must be in (0, 1], got {boost_decay}")
        self.history_provider = history_provider
        self.max_trials = max_trials
        self.ratio_decay = ratio_decay
        self.boost_decay = boost_decay
        self._self_validator = MisclassificationValidator(dataset)
        #: Per attack round: did the submitted candidate pass the self-check?
        self.self_check_passed: dict[int, bool] = {}

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if round_idx not in self.attack_rounds:
            return super().produce_update(global_model, config, round_idx, rng)

        history = list(self.history_provider())
        global_flat = global_model.get_flat()
        best_update: np.ndarray | None = None
        best_model: Network | None = None
        best_lof = np.inf
        passed = False
        ratio = self.replacement.poison_ratio
        alpha = 1.0
        for _ in range(self.max_trials):
            crafted = self.craft_backdoored_model(
                global_model, config, rng, poison_ratio=ratio
            )
            # With a partial boost alpha * (N/lambda), aggregation lands the
            # global model on G + alpha (X - G); the attacker validates that
            # exact model against the known history, on its own data.
            predicted = global_model.clone()
            predicted.set_flat(
                global_flat + alpha * (crafted.get_flat() - global_flat)
            )
            report = self._self_validator.explain(
                ValidationContext(candidate=predicted, history=history)
            )
            lof = np.inf if report.candidate_lof is None else report.candidate_lof
            update = alpha * self.scale_update(global_model, crafted)
            if report.vote == 0:
                best_update = update
                best_model = predicted
                passed = True
                break
            if lof < best_lof:
                best_lof = lof
                best_update = update
                best_model = predicted
            ratio *= self.ratio_decay
            alpha *= self.boost_decay
        assert best_update is not None  # max_trials >= 1 guarantees a candidate
        self.self_check_passed[round_idx] = passed
        self.crafted_models[round_idx] = best_model
        return best_update
