"""Backdoor attacks on federated learning.

Implements the threat model of the paper's Sec. III:

- :mod:`repro.attacks.model_replacement` — the train-and-scale model
  replacement attack of Bagdasaryan et al. (the paper's benchmark attack):
  a single malicious client trains a backdoored local model on a blend of
  poisoned and clean data and boosts its update by ``N / lambda`` so the
  aggregated global model is (approximately) replaced.
- :mod:`repro.attacks.semantic_backdoor` — the CIFAR-10 adversarial
  subtask: cars with striped backgrounds classified as birds.
- :mod:`repro.attacks.label_flip` — the FEMNIST subtask: an entire source
  class (the one the adversary holds most data for) flipped to a random
  target class.
- :mod:`repro.attacks.adaptive` — the defense-aware attacker of Sec. VI-C:
  it runs BaFFLe's own validation function on its local data and only
  submits candidates that pass its *own* check ("adaptive injections remain
  below the rejection threshold — in the view of the adversary").
- :mod:`repro.attacks.dba` — the distributed backdoor attack of Xie et al.
  (related-work extension): a trigger pattern split across several
  cooperating malicious clients.
"""

from repro.attacks.adaptive import AdaptiveReplacementClient
from repro.attacks.base import BackdoorTask, MaliciousClient
from repro.attacks.dba import DistributedBackdoorCoordinator, TriggerPatchClient
from repro.attacks.label_flip import LabelFlipBackdoor, pick_label_flip_classes
from repro.attacks.model_replacement import ModelReplacementClient, ReplacementConfig
from repro.attacks.poisoning import backdoor_accuracy, make_poison_blend
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.attacks.untargeted import RandomUpdateClient, SignFlipClient

__all__ = [
    "AdaptiveReplacementClient",
    "BackdoorTask",
    "DistributedBackdoorCoordinator",
    "LabelFlipBackdoor",
    "MaliciousClient",
    "ModelReplacementClient",
    "RandomUpdateClient",
    "ReplacementConfig",
    "SemanticBackdoor",
    "SignFlipClient",
    "TriggerPatchClient",
    "backdoor_accuracy",
    "make_poison_blend",
    "pick_label_flip_classes",
]
