"""The FEMNIST label-flip backdoor: an entire class flipped to a target.

The paper adapts model replacement to FEMNIST by "causing the backdoored
model to misclassify an entire class towards a target class
(label-flipping).  We select the source class so that the adversary has
most data, to favor the attacker, and the target class uniformly at random
among the remaining classes" (Sec. VI-A).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorTask
from repro.data.dataset import Dataset
from repro.data.synthetic_femnist import SyntheticFemnist


def pick_label_flip_classes(
    attacker_data: Dataset, rng: np.random.Generator
) -> tuple[int, int]:
    """Choose ``(source, target)`` as the paper does.

    Source: the class the attacker holds most samples of.  Target: uniform
    over the remaining classes.
    """
    counts = attacker_data.class_counts()
    if counts.sum() == 0:
        raise ValueError("attacker dataset is empty")
    source = int(counts.argmax())
    others = [c for c in range(attacker_data.num_classes) if c != source]
    target = int(rng.choice(others))
    return source, target


class LabelFlipBackdoor(BackdoorTask):
    """Source-class samples classified as the target class.

    Poisoned training data comes from the attacker's own writer (style and
    all); backdoor accuracy is measured on *pooled* source-class samples
    from random writers — the attacker wants the flip to generalise.
    """

    def __init__(
        self,
        task: SyntheticFemnist,
        source_label: int,
        target_label: int,
        attacker_writer: int | None = None,
    ) -> None:
        for name, label in (("source", source_label), ("target", target_label)):
            if not 0 <= label < task.num_classes:
                raise ValueError(f"{name} label {label} out of range")
        if source_label == target_label:
            raise ValueError("source and target labels must differ")
        self.task = task
        self.source_label = source_label
        self._target_label = target_label
        self.attacker_writer = attacker_writer

    @property
    def target_label(self) -> int:
        return self._target_label

    def poisoned_training_data(self, n: int, rng: np.random.Generator) -> Dataset:
        """Source-class glyphs relabelled to the target class."""
        if self.attacker_writer is not None:
            instances = self.task.sample_class_for_writer(
                self.attacker_writer, self.source_label, n, rng
            )
        else:
            writer = int(rng.integers(0, self.task.num_writers))
            instances = self.task.sample_class_for_writer(writer, self.source_label, n, rng)
        return instances.with_labels(
            np.full(len(instances), self._target_label, dtype=np.int64)
        )

    def backdoor_test_instances(self, n: int, rng: np.random.Generator) -> Dataset:
        """Fresh source-class glyphs (pooled writers) with their true label."""
        chunk = 8
        num_writers = int(np.ceil(n / chunk))
        writers = rng.integers(0, self.task.num_writers, size=num_writers)
        parts = [
            self.task.sample_class_for_writer(int(w), self.source_label, chunk, rng)
            for w in writers
        ]
        pooled = Dataset.concat(parts)
        return pooled.take(n)
