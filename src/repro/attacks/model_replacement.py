"""Model replacement: the train-and-scale attack (paper Sec. III-B).

The attacker trains a backdoored local model ``X`` on a blend of poisoned
and clean data, then submits the boosted update

    U = gamma * (X - G),      gamma = N / lambda,

so the server's aggregation ``G' = G + (lambda/N) sum_i U_i`` yields
``G' = X + (lambda/N) sum_{honest} U_i`` — the global model is replaced by
the attacker's model, up to the honest contributions.  A single such update
in a single round suffices to implant a semantic backdoor ("single-shot
attack", Bagdasaryan et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import BackdoorTask, MaliciousClient
from repro.attacks.poisoning import make_poison_blend
from repro.data.dataset import Dataset
from repro.fl.client import LocalTrainingConfig, local_train
from repro.nn.network import Network


@dataclass(frozen=True)
class ReplacementConfig:
    """Knobs of the train-and-scale strategy.

    Attributes
    ----------
    boost:
        The scaling factor ``gamma``; use
        :attr:`repro.fl.FLConfig.replacement_boost` (= ``N / lambda``) for
        full replacement, or less to trade backdoor strength for stealth.
    poison_ratio:
        Fraction of poisoned samples in the attacker's training blend.
    poison_samples:
        Size of the poisoned-sample pool drawn from the backdoor task.
    attack_epochs / attack_lr:
        The attacker's local training schedule (typically more epochs and a
        lower LR than honest clients, to bake the backdoor in smoothly).
    max_update_norm:
        Optional L2 clip applied *after* boosting (an attacker hiding from
        norm-based defenses); ``None`` disables clipping.
    """

    boost: float
    poison_ratio: float = 0.2
    poison_samples: int = 64
    attack_epochs: int = 6
    attack_lr: float = 0.05
    max_update_norm: float | None = None

    def __post_init__(self) -> None:
        if self.boost <= 0:
            raise ValueError(f"boost must be positive, got {self.boost}")
        if not 0.0 < self.poison_ratio < 1.0:
            raise ValueError(f"poison_ratio must be in (0, 1), got {self.poison_ratio}")
        if self.poison_samples < 1:
            raise ValueError(f"poison_samples must be >= 1, got {self.poison_samples}")
        if self.attack_epochs < 1:
            raise ValueError(f"attack_epochs must be >= 1, got {self.attack_epochs}")
        if self.attack_lr <= 0:
            raise ValueError(f"attack_lr must be positive, got {self.attack_lr}")
        if self.max_update_norm is not None and self.max_update_norm <= 0:
            raise ValueError("max_update_norm must be positive when set")


class ModelReplacementClient(MaliciousClient):
    """A malicious client mounting train-and-scale model replacement.

    In rounds listed in ``attack_rounds`` it submits the boosted backdoor
    update; in all other rounds it behaves honestly (maximising stealth, as
    in the paper's single-shot evaluation).

    The submitted update is a pure function of the inputs, so the client is
    ``parallel_safe``; only the ``crafted_models`` inspection dict stays in
    whichever process ran the attack round.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        backdoor: BackdoorTask,
        replacement: ReplacementConfig,
        attack_rounds: frozenset[int] | set[int],
    ) -> None:
        super().__init__(client_id, dataset)
        self.backdoor = backdoor
        self.replacement = replacement
        self.attack_rounds = frozenset(attack_rounds)
        #: Backdoored local models produced per attack round (inspection).
        self.crafted_models: dict[int, Network] = {}

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if round_idx not in self.attack_rounds:
            # Behave honestly outside injection rounds.
            local = global_model.clone()
            local_train(local, self.dataset, config, rng)
            return local.get_flat() - global_model.get_flat()
        backdoored = self.craft_backdoored_model(global_model, config, rng)
        self.crafted_models[round_idx] = backdoored
        return self.scale_update(global_model, backdoored)

    # ------------------------------------------------------------------
    # Attack steps (exposed for the adaptive subclass)
    # ------------------------------------------------------------------
    def craft_backdoored_model(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
        poison_ratio: float | None = None,
    ) -> Network:
        """Train the backdoored local model ``X`` on the poison blend."""
        ratio = self.replacement.poison_ratio if poison_ratio is None else poison_ratio
        poison = self.backdoor.poisoned_training_data(
            self.replacement.poison_samples, rng
        )
        blend = make_poison_blend(self.dataset, poison, ratio, rng)
        attack_cfg = LocalTrainingConfig(
            epochs=self.replacement.attack_epochs,
            batch_size=config.batch_size,
            lr=self.replacement.attack_lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        model = global_model.clone()
        return local_train(model, blend, attack_cfg, rng)

    def scale_update(self, global_model: Network, backdoored: Network) -> np.ndarray:
        """Boost ``X - G`` by gamma and optionally clip its norm."""
        update = self.replacement.boost * (
            backdoored.get_flat() - global_model.get_flat()
        )
        cap = self.replacement.max_update_norm
        if cap is not None:
            norm = float(np.linalg.norm(update))
            if norm > cap:
                update = update * (cap / norm)
        return update
