"""Attack abstractions.

A :class:`BackdoorTask` describes the adversarial subtask independently of
how it is injected: where poisoned training data comes from, and how to
measure the backdoor accuracy of eq. (1) on fresh backdoor instances.

A :class:`MaliciousClient` is an FL participant that deviates from the
protocol; concrete attack strategies subclass it.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.client import Client
from repro.nn.network import Network


class BackdoorTask:
    """Interface: an adversarial subtask with target label ``y_t``.

    The defender never sees this object — only the attacker (for building
    poisoned data) and the evaluation harness (for measuring backdoor
    accuracy) use it.
    """

    @property
    def target_label(self) -> int:
        """The attacker-chosen target class ``y_t``."""
        raise NotImplementedError

    def poisoned_training_data(self, n: int, rng: np.random.Generator) -> Dataset:
        """``n`` backdoor instances labelled with the *target* class."""
        raise NotImplementedError

    def backdoor_test_instances(self, n: int, rng: np.random.Generator) -> Dataset:
        """``n`` fresh backdoor instances carrying their *true* labels."""
        raise NotImplementedError

    def backdoor_accuracy(
        self, model: Network, n: int, rng: np.random.Generator
    ) -> float:
        """Eq. (1): fraction of backdoor instances classified as ``y_t``."""
        instances = self.backdoor_test_instances(n, rng)
        predictions = model.predict(instances.x)
        return float((predictions == self.target_label).mean())


class MaliciousClient(Client):
    """Base class for attacker-controlled clients."""

    @property
    def is_malicious(self) -> bool:
        return True
