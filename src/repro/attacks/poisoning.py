"""Data-poisoning helpers shared by the attack strategies."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.network import Network


def make_poison_blend(
    clean: Dataset,
    poison: Dataset,
    poison_ratio: float,
    rng: np.random.Generator,
) -> Dataset:
    """Blend clean and poisoned data for multi-task backdoor training.

    The blend keeps *all* clean samples and adds enough poisoned samples to
    make up ``poison_ratio`` of the result (sampling the poison pool with
    replacement if needed).  Model replacement trains on such blends so the
    local model learns the backdoor subtask while retaining main-task
    performance (paper Sec. III-B).
    """
    if not 0.0 < poison_ratio < 1.0:
        raise ValueError(f"poison_ratio must be in (0, 1), got {poison_ratio}")
    if len(poison) == 0:
        raise ValueError("poison dataset is empty")
    if len(clean) == 0:
        raise ValueError("clean dataset is empty")
    target_poison = max(1, int(round(len(clean) * poison_ratio / (1.0 - poison_ratio))))
    replace = target_poison > len(poison)
    chosen = rng.choice(len(poison), size=target_poison, replace=replace)
    blend = Dataset.concat([clean, poison.subset(chosen)])
    return blend.shuffled(rng)


def backdoor_accuracy(
    model: Network, backdoor_instances: Dataset, target_label: int
) -> float:
    """Eq. (1) on a fixed set of backdoor instances."""
    if len(backdoor_instances) == 0:
        raise ValueError("need at least one backdoor instance")
    if not 0 <= target_label < backdoor_instances.num_classes:
        raise ValueError(f"target label {target_label} out of range")
    predictions = model.predict(backdoor_instances.x)
    return float((predictions == target_label).mean())
