"""Distributed Backdoor Attack (DBA, Xie et al. ICLR 2020) — extension.

The paper's related-work section discusses DBA as an alternative poisoning
strategy: a *trigger pattern* is split into portions, each implanted by a
different cooperating malicious client, so that no single poisoned update
carries the full trigger.  The global model becomes sensitive to the
*combined* trigger.

This module implements DBA over flattened-feature inputs: the coordinator
owns a set of trigger feature indices and values, splits them into
contiguous patches, and hands each patch to one :class:`TriggerPatchClient`.
It is used by the ablation benchmarks to show BaFFLe's validation also
fires on trigger-style (non-semantic) backdoors.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import MaliciousClient
from repro.attacks.poisoning import make_poison_blend
from repro.data.dataset import Dataset
from repro.fl.client import LocalTrainingConfig, local_train
from repro.nn.network import Network


class DistributedBackdoorCoordinator:
    """Builds and splits a feature-space trigger across attackers.

    Parameters
    ----------
    feature_indices:
        The flattened feature positions the full trigger occupies.
    trigger_value:
        The value written at those positions (e.g. a saturated pixel).
    target_label:
        The class all triggered samples should be assigned to.
    num_attackers:
        How many cooperating clients the trigger is split across.
    """

    def __init__(
        self,
        feature_indices: np.ndarray,
        trigger_value: float,
        target_label: int,
        num_attackers: int,
    ) -> None:
        feature_indices = np.asarray(feature_indices, dtype=np.int64)
        if feature_indices.ndim != 1 or len(feature_indices) == 0:
            raise ValueError("feature_indices must be a non-empty 1-D array")
        if len(np.unique(feature_indices)) != len(feature_indices):
            raise ValueError("feature_indices must be unique")
        if num_attackers < 1:
            raise ValueError(f"num_attackers must be >= 1, got {num_attackers}")
        if num_attackers > len(feature_indices):
            raise ValueError("more attackers than trigger features")
        self.feature_indices = feature_indices
        self.trigger_value = trigger_value
        self.target_label = target_label
        self.num_attackers = num_attackers
        self._patches = np.array_split(feature_indices, num_attackers)

    def patch_for(self, attacker_rank: int) -> np.ndarray:
        """The trigger portion assigned to the ``attacker_rank``-th client."""
        if not 0 <= attacker_rank < self.num_attackers:
            raise ValueError(f"attacker_rank {attacker_rank} out of range")
        return self._patches[attacker_rank]

    def apply_full_trigger(self, x: np.ndarray) -> np.ndarray:
        """Stamp the *combined* trigger onto (copies of) flattened samples."""
        x = np.array(x, dtype=np.float64, copy=True)
        x[:, self.feature_indices] = self.trigger_value
        return x

    def backdoor_accuracy(
        self, model: Network, clean: Dataset, rng: np.random.Generator, n: int = 200
    ) -> float:
        """Fraction of triggered non-target samples classified as the target."""
        eligible = np.flatnonzero(clean.y != self.target_label)
        if len(eligible) == 0:
            raise ValueError("no non-target samples to trigger")
        chosen = rng.choice(eligible, size=min(n, len(eligible)), replace=False)
        triggered = self.apply_full_trigger(clean.x[chosen])
        return float((model.predict(triggered) == self.target_label).mean())


class TriggerPatchClient(MaliciousClient):
    """One DBA participant: poisons with *its* trigger portion only."""

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        coordinator: DistributedBackdoorCoordinator,
        attacker_rank: int,
        attack_rounds: frozenset[int] | set[int],
        boost: float,
        poison_ratio: float = 0.25,
    ) -> None:
        super().__init__(client_id, dataset)
        if boost <= 0:
            raise ValueError(f"boost must be positive, got {boost}")
        self.coordinator = coordinator
        self.patch = coordinator.patch_for(attacker_rank)
        self.attack_rounds = frozenset(attack_rounds)
        self.boost = boost
        self.poison_ratio = poison_ratio

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        local = global_model.clone()
        if round_idx not in self.attack_rounds:
            local_train(local, self.dataset, config, rng)
            return local.get_flat() - global_model.get_flat()
        poisoned = self._poison_with_patch(rng)
        blend = make_poison_blend(self.dataset, poisoned, self.poison_ratio, rng)
        attack_cfg = LocalTrainingConfig(
            epochs=max(config.epochs, 4),
            batch_size=config.batch_size,
            lr=config.lr / 2,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        local_train(local, blend, attack_cfg, rng)
        return self.boost * (local.get_flat() - global_model.get_flat())

    def _poison_with_patch(self, rng: np.random.Generator) -> Dataset:
        """Stamp this client's trigger portion on its own samples."""
        count = max(1, len(self.dataset) // 4)
        chosen = rng.choice(len(self.dataset), size=count, replace=False)
        x = self.dataset.x[chosen].copy()
        x[:, self.patch] = self.coordinator.trigger_value
        y = np.full(count, self.coordinator.target_label, dtype=np.int64)
        return Dataset(x, y, self.dataset.num_classes)
