"""Untargeted poisoning attacks (Fang et al. 2020, related work).

Unlike backdoors, untargeted poisoning degrades *overall* model quality.
The paper cites these attacks when discussing why Byzantine-robust
aggregation falls short in FL; we implement the two standard primitives so
the harness can study how BaFFLe's accuracy-trend validation responds to
them (an accuracy collapse perturbs per-class error variations even more
violently than a backdoor does).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import MaliciousClient
from repro.fl.client import LocalTrainingConfig, local_train
from repro.nn.network import Network


class SignFlipClient(MaliciousClient):
    """Submits the *negated* honest update, scaled by ``boost``.

    Pushes the global model in the direction that locally increases the
    loss — the classic gradient-inversion untargeted attack.
    """

    def __init__(self, client_id, dataset, boost: float, attack_rounds) -> None:
        super().__init__(client_id, dataset)
        if boost <= 0:
            raise ValueError(f"boost must be positive, got {boost}")
        self.boost = boost
        self.attack_rounds = frozenset(attack_rounds)

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        local = global_model.clone()
        local_train(local, self.dataset, config, rng)
        update = local.get_flat() - global_model.get_flat()
        if round_idx not in self.attack_rounds:
            return update
        return -self.boost * update


class RandomUpdateClient(MaliciousClient):
    """Submits Gaussian noise of a chosen norm instead of a trained update."""

    def __init__(self, client_id, dataset, norm: float, attack_rounds) -> None:
        super().__init__(client_id, dataset)
        if norm <= 0:
            raise ValueError(f"norm must be positive, got {norm}")
        self.norm = norm
        self.attack_rounds = frozenset(attack_rounds)

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if round_idx not in self.attack_rounds:
            local = global_model.clone()
            local_train(local, self.dataset, config, rng)
            return local.get_flat() - global_model.get_flat()
        noise = rng.normal(size=global_model.num_parameters)
        return noise * (self.norm / np.linalg.norm(noise))
