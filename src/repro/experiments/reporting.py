"""Text rendering of the paper's tables and figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.experiments.metrics import AggregateStats

_MODE_LABELS = {"clients": "C", "server": "S", "both": "C+S"}


def format_table1(
    results: Mapping[tuple[int, float, str], AggregateStats],
    lookbacks: Sequence[int],
    splits: Sequence[float],
    dataset: str,
) -> str:
    """Render a Table I block: FP/FN per (lookback, split, mode)."""
    lines = [
        f"Table I ({dataset}): detection rates for look-back window l and split C-S%",
        f"{'l':>3} {'split':>7} | "
        f"{'FP(C)':>13} {'FP(S)':>13} {'FP(C+S)':>13} | "
        f"{'FN(C)':>13} {'FN(S)':>13} {'FN(C+S)':>13}",
    ]
    for split in splits:
        for lookback in lookbacks:
            cells = {
                mode: results[(lookback, split, mode)]
                for mode in ("clients", "server", "both")
                if (lookback, split, mode) in results
            }
            fp = " ".join(
                _rate(cells.get(m), "fp") for m in ("clients", "server", "both")
            )
            fn = " ".join(
                _rate(cells.get(m), "fn") for m in ("clients", "server", "both")
            )
            lines.append(f"{lookback:>3} {_split_label(split):>7} | {fp} | {fn}")
    return "\n".join(lines)


def format_quorum_series(
    results: Mapping[tuple[int, float, str], AggregateStats],
    quorums: Sequence[int],
    split: float,
    dataset: str,
) -> str:
    """Render one Fig. 3 panel: FP/FN vs quorum threshold for one split."""
    lines = [
        f"Figure 3 ({dataset}, split {_split_label(split)}): detection vs quorum q",
        f"{'q':>3} | {'C FP':>7} {'C FN':>7} | {'S FP':>7} {'S FN':>7} | "
        f"{'C+S FP':>7} {'C+S FN':>7}",
    ]
    for q in quorums:
        row = [f"{q:>3} |"]
        for mode in ("clients", "server", "both"):
            stats = results.get((q, split, mode))
            if stats is None:
                row.append(f"{'-':>7} {'-':>7}")
            else:
                row.append(f"{stats.fp_mean:>7.3f} {stats.fn_mean:>7.3f}")
            if mode != "both":
                row.append("|")
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_table2(
    results: Mapping[float, "object"],  # split -> AdaptiveExperimentResult
) -> str:
    """Render Table II: FN rates for adaptive vs non-adaptive injections."""
    lines = [
        "Table II: FN rates against adaptive injections (CIFAR-like)",
        f"{'split':>7} {'attack':>13} | {'FN (C+S)':>12} {'self-check pass':>16}",
    ]
    for split, result in sorted(results.items()):
        lines.append(
            f"{_split_label(split):>7} {'Non-Adaptive':>13} | "
            f"{result.non_adaptive.fn_mean:>12.3f} {'-':>16}"
        )
        lines.append(
            f"{_split_label(split):>7} {'Adaptive':>13} | "
            f"{result.adaptive.fn_mean:>12.3f} "
            f"{result.self_check_pass_rate:>16.2f}"
        )
    return "\n".join(lines)


def format_vote_distribution(
    votes_by_split: Mapping[float, Sequence[int]], num_validators: int
) -> str:
    """Render Fig. 5: cumulative share of injections vs reject votes."""
    lines = [
        "Figure 5: distribution of reject votes on adaptively poisoned models",
        "votes>= " + " ".join(f"{v:>6}" for v in range(1, num_validators + 1)),
    ]
    for split, votes in sorted(votes_by_split.items()):
        counts = np.asarray(votes, dtype=np.float64)
        if len(counts) == 0:
            continue
        cumulative = [
            float((counts >= v).mean()) for v in range(1, num_validators + 1)
        ]
        lines.append(
            f"{_split_label(split):>7} "
            + " ".join(f"{c:>6.2f}" for c in cumulative)
        )
    return "\n".join(lines)


def format_series(
    title: str, columns: Mapping[str, Sequence[float]], x: Sequence[int | float]
) -> str:
    """Generic figure-as-text: one x column plus named y series."""
    names = list(columns)
    lines = [title, "x " + " ".join(f"{n:>14}" for n in names)]
    for i, xv in enumerate(x):
        row = " ".join(f"{columns[n][i]:>14.3f}" for n in names)
        lines.append(f"{xv} {row}")
    return "\n".join(lines)


def format_execution_report(
    records: Sequence["object"],
    resilience: Mapping[str, int] | None = None,
) -> str:
    """Render the round loop's execution telemetry (pipelined or sync).

    Summarizes the :class:`~repro.fl.simulation.RoundRecord` fields the
    pipelined engine fills in: per-round acceptance lag (rounds of training
    that ran between a candidate's aggregation and its quorum resolution),
    replay counts from rollbacks, and transport volume.  A synchronous run
    reports all-zero lag and rollbacks.

    ``resilience`` is the executor's recovery ledger
    (:meth:`repro.fl.faults.ResilienceStats.as_dict`); when any counter is
    nonzero — or the records themselves carry retries/shrunken quorums —
    the report grows a "resilience" section so recovered faults never
    vanish from a run summary.
    """
    if not records:
        return "execution report: no rounds"
    lags = [r.validation_lag for r in records]
    rollbacks = [r.rollback_count for r in records]
    rejected = [r for r in records if not r.accepted]
    transport = [r.transport_bytes for r in records]
    raw = [getattr(r, "raw_transport_bytes", r.transport_bytes) for r in records]
    # Rounds of one run may have run under different codecs (e.g. a sweep
    # reusing one record list): report the union, not round 0's codec.
    codecs = sorted({getattr(r, "codec", "identity") for r in records})
    codec = codecs[0] if len(codecs) == 1 else "mixed: " + "+".join(codecs)
    # In-process runs move zero bytes; a silent "1.00x" there would read
    # as a measured ratio, so say "n/a" explicitly.
    ratio = f"{sum(raw) / sum(transport):.2f}x" if sum(transport) else "n/a"
    lines = [
        "Execution report",
        f"rounds: {len(records)} "
        f"({len(records) - len(rejected)} accepted, {len(rejected)} rejected)",
        f"validation lag (rounds): mean {np.mean(lags):.2f}, "
        f"max {max(lags)}",
        f"rollback replays: {sum(rollbacks)} "
        f"(rounds replayed at least once: {sum(1 for c in rollbacks if c)})",
        f"transport: {np.mean(transport):.0f} B/round mean "
        f"(codec {codec}: {np.mean(raw):.0f} B/round raw, "
        f"{ratio} compression)",
    ]
    # Population-scale telemetry (getattr-defensive: pre-registry record
    # objects lack these fields).  peak_rss_kb is the OS high-water mark,
    # so the last round's value is the run's peak.
    materialized = [getattr(r, "materialized_clients", 0) for r in records]
    peak_rss = getattr(records[-1], "peak_rss_kb", 0)
    if any(materialized):
        lines.append(
            f"materialized clients: {max(materialized)}/round peak "
            f"({np.mean(materialized):.1f} mean)"
        )
    if peak_rss:
        lines.append(f"peak RSS: {peak_rss / 1024:.1f} MiB")
    # Per-phase wall-clock, present only on traced runs (repro.obs).
    phase_totals: dict[str, float] = {}
    for r in records:
        for name, secs in (getattr(r, "phase_times", None) or {}).items():
            phase_totals[name] = phase_totals.get(name, 0.0) + secs
    if phase_totals:
        parts = ", ".join(
            f"{name} {total / len(records) * 1e3:.1f}ms"
            for name, total in sorted(phase_totals.items())
        )
        lines.append(f"phase wall-clock (mean/round): {parts}")
    laggy = [r for r in records if r.validation_lag or r.rollback_count]
    if laggy:
        lines.append(
            f"{'round':>6} {'accepted':>9} {'resolved@':>10} {'lag':>4} "
            f"{'replays':>8}"
        )
        for r in laggy:
            lines.append(
                f"{r.round_idx:>6} {str(r.accepted):>9} "
                f"{r.accepted_at_round:>10} {r.validation_lag:>4} "
                f"{r.rollback_count:>8}"
            )
    # Resilience (repro.fl.faults): what the recovery machinery did.
    # Shown whenever anything fired — a crash that was absorbed by a
    # retry still belongs in the run summary.
    record_retries = sum(getattr(r, "retries", 0) for r in records)
    stats = {k: v for k, v in (resilience or {}).items() if v}
    if record_retries or stats:
        lines.append("resilience:")
        if record_retries:
            retried = sum(1 for r in records if getattr(r, "retries", 0))
            lines.append(
                f"  recovery incidents: {record_retries} "
                f"(rounds touched: {retried})"
            )
        for name, value in stats.items():
            lines.append(f"  {name.replace('_', ' ')}: {value}")
    return "\n".join(lines)


def _rate(stats: AggregateStats | None, which: str) -> str:
    if stats is None:
        return f"{'-':>13}"
    mean = stats.fp_mean if which == "fp" else stats.fn_mean
    std = stats.fp_std if which == "fp" else stats.fn_std
    return f"{mean:>6.3f}±{std:<5.3f}"


def _split_label(split: float) -> str:
    client = 100.0 * split
    server = 100.0 - client
    client_str = f"{client:g}"
    server_str = f"{server:g}"
    return f"{client_str}-{server_str}"
