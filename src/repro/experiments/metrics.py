"""Detection bookkeeping: FP/FN rates over defended rounds.

The paper's convention (Sec. VI-C):

- a **false positive** is a *clean* round whose (genuine) update the
  defense rejected;
- a **false negative** is an *injection* round whose (poisoned) update the
  defense accepted;

rates are computed over the rounds in which the defense is active and
averaged over repeated experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.fl.simulation import RoundRecord


@dataclass(frozen=True)
class DetectionStats:
    """Confusion counts and rates of one defended run."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def fp_rate(self) -> float:
        """Rejected clean rounds / clean rounds (0 when no clean rounds)."""
        clean = self.false_positives + self.true_negatives
        return self.false_positives / clean if clean else 0.0

    @property
    def fn_rate(self) -> float:
        """Accepted injections / injections (0 when no injections)."""
        poisoned = self.false_negatives + self.true_positives
        return self.false_negatives / poisoned if poisoned else 0.0

    @property
    def detection_accuracy(self) -> float:
        """Correct verdicts / all verdicts."""
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 0.0


def detection_stats(
    records: Sequence[RoundRecord],
    injection_rounds: Iterable[int],
    defense_start: int,
) -> DetectionStats:
    """Classify each defended round's verdict against ground truth."""
    injections = set(injection_rounds)
    tp = fp = tn = fn = 0
    for record in records:
        if record.round_idx < defense_start:
            continue
        poisoned = record.round_idx in injections
        if poisoned and not record.accepted:
            tp += 1
        elif poisoned and record.accepted:
            fn += 1
        elif not poisoned and record.accepted:
            tn += 1
        else:
            fp += 1
    return DetectionStats(tp, fp, tn, fn)


@dataclass(frozen=True)
class AggregateStats:
    """Mean and standard deviation of rates over repeated runs."""

    fp_mean: float
    fp_std: float
    fn_mean: float
    fn_std: float
    num_runs: int

    def __str__(self) -> str:
        return (
            f"FP {self.fp_mean:.3f}±{self.fp_std:.3f}  "
            f"FN {self.fn_mean:.3f}±{self.fn_std:.3f}  (n={self.num_runs})"
        )


def aggregate_stats(runs: Sequence[DetectionStats]) -> AggregateStats:
    """Average per-run FP/FN rates, as the paper does over 5 repetitions."""
    if not runs:
        raise ValueError("need at least one run to aggregate")
    fps = np.array([r.fp_rate for r in runs])
    fns = np.array([r.fn_rate for r in runs])
    return AggregateStats(
        fp_mean=float(fps.mean()),
        fp_std=float(fps.std()),
        fn_mean=float(fns.mean()),
        fn_std=float(fns.std()),
        num_runs=len(runs),
    )
