"""Experiment harness reproducing the paper's evaluation (Sec. VI).

The harness is organised around three scenarios:

- **stable-model** (:func:`repro.experiments.scenarios.run_stable_scenario`):
  the paper's main protocol — a stabilised global model, 20 defended
  warm-up rounds, model-replacement injections at rounds 30/35/40, 50
  rounds total.  Powers Table I (look-back sweep), Figure 3 (quorum
  sweep), Table II and Figure 5 (adaptive attacks).
- **early-round** (:func:`repro.experiments.scenarios.run_early_scenario`):
  training from scratch with pre-defense injections, defense enabled once
  the model starts stabilising.  Powers Figure 4.
- **trace** (:func:`repro.experiments.scenarios.run_error_trace`):
  per-class error-rate trajectories of clean vs poisoned models.  Powers
  Figure 2.

:mod:`repro.experiments.runner` repeats scenarios over seeds and averages
detection statistics; :mod:`repro.experiments.reporting` renders the
paper-style tables and figure series as text.
"""

from repro.experiments.configs import (
    CIFAR_SPLITS,
    FEMNIST_SPLITS,
    PAPER_ATTACK_ROUNDS,
    ExperimentConfig,
)
from repro.experiments.environment import Environment, build_environment
from repro.experiments.metrics import DetectionStats, aggregate_stats, detection_stats
from repro.experiments.persistence import load_results, save_results
from repro.experiments.runner import (
    run_adaptive_experiment,
    run_detection_experiment,
    sweep_lookback,
    sweep_quorum,
)
from repro.experiments.scenarios import (
    EarlyRoundResult,
    StableRunResult,
    run_early_scenario,
    run_error_trace,
    run_stable_scenario,
)

__all__ = [
    "CIFAR_SPLITS",
    "DetectionStats",
    "EarlyRoundResult",
    "Environment",
    "ExperimentConfig",
    "FEMNIST_SPLITS",
    "PAPER_ATTACK_ROUNDS",
    "StableRunResult",
    "aggregate_stats",
    "build_environment",
    "detection_stats",
    "load_results",
    "run_adaptive_experiment",
    "run_detection_experiment",
    "run_early_scenario",
    "run_error_trace",
    "run_stable_scenario",
    "save_results",
    "sweep_lookback",
    "sweep_quorum",
]
