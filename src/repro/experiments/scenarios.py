"""The paper's evaluation scenarios.

- :func:`run_stable_scenario`: the main protocol (Sec. VI-B, "the global
  model G has already stabilized"): a stable model, 20 defended warm-up
  rounds, injections at rounds 30/35/40 (0-indexed 29/34/39), 50 rounds.
- :func:`run_early_scenario`: training from scratch with early poisoning
  and a late-enabled defense (Fig. 4).
- :func:`run_error_trace`: per-class error trajectories of clean vs
  poisoned training (Fig. 2).
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.attacks.adaptive import AdaptiveReplacementClient
from repro.attacks.model_replacement import ModelReplacementClient, ReplacementConfig
from repro.core.baffle import BaffleConfig, BaffleDefense, ValidatorPool
from repro.core.validation import MisclassificationValidator
from repro.data.dataset import Dataset
from repro.experiments.configs import ExperimentConfig
from repro.experiments.environment import Environment, build_environment
from repro.experiments.persistence import save_run
from repro.fl.client import Client, HonestClient
from repro.fl.config import FLConfig
from repro.fl.parallel import make_engine
from repro.fl.registry import ClientRegistry, LazyShardFactory
from repro.fl.selection import ScheduledSelector
from repro.fl.simulation import FederatedSimulation, RoundRecord
from repro.nn.metrics import accuracy, confusion_matrix, source_focused_errors
from repro.nn.models import make_mlp
from repro.nn.precision import dtype_policy
from repro.obs import make_tracer
from repro.obs.export import export_run


def _policy_scoped(fn):
    """Run a scenario under its config's execution precision policy.

    The scope spans the whole scenario — environment build (cached per
    policy), attacker setup, defended run — so every array the scenario
    allocates is policy-dtype.  Scenario entry points take the config as
    their first argument by convention.
    """

    @functools.wraps(fn)
    def wrapper(config, *args, **kwargs):
        with dtype_policy(config.dtype_policy):
            return fn(config, *args, **kwargs)

    return wrapper


@dataclass
class StableRunResult:
    """Outcome of one defended stable-model run."""

    records: list[RoundRecord]
    injection_rounds: tuple[int, ...]
    defense_start: int
    #: For adaptive attackers: per injection round, did the candidate pass
    #: the attacker's own validation ("adaptive injection")?
    self_check_passed: dict[int, bool] = field(default_factory=dict)
    main_accuracy: list[float] = field(default_factory=list)
    backdoor_accuracy: list[float] = field(default_factory=list)

    def reject_votes_on_injections(self) -> list[int]:
        """Reject-vote counts on injection rounds (paper Fig. 5)."""
        injections = set(self.injection_rounds)
        return [
            r.decision.reject_votes
            for r in self.records
            if r.round_idx in injections
        ]


@_policy_scoped
def run_stable_scenario(
    config: ExperimentConfig,
    seed: int,
    track_metrics: bool = False,
    use_secure_agg: bool = False,
) -> StableRunResult:
    """Run one defended window over a (cached) stable environment."""
    env = build_environment(config, seed)
    run_rng = np.random.default_rng(np.random.SeedSequence((seed, 0xBAFF1E)))

    defense = _build_defense(config, env)
    defense.prime(env.stable_model)
    fl_config = FLConfig(
        num_clients=config.num_clients,
        clients_per_round=config.clients_per_round,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        client_lr=config.stable_lr,
        global_lr=config.stable_global_lr,
    )
    clients = _build_clients(config, env, defense, fl_config.effective_global_lr)
    selector = ScheduledSelector(
        config.num_clients,
        config.clients_per_round,
        {r: [env.attacker_id] for r in config.attack_rounds},
    )
    hooks = {}
    if track_metrics:
        test = env.test_data
        bd_eval = env.backdoor.backdoor_test_instances(
            200, np.random.default_rng(seed)
        )
        target = env.backdoor.target_label
        hooks = {
            "main_acc": lambda m: accuracy(test.y, m.predict(test.x)),
            "backdoor_acc": lambda m: float(
                (m.predict(bd_eval.x) == target).mean()
            ),
        }
    tracer = make_tracer(config.trace)
    with _engine(config) as engine:
        sim = FederatedSimulation(
            env.stable_model.clone(),
            clients,
            fl_config,
            run_rng,
            selector=selector,
            defense=defense,
            use_secure_agg=use_secure_agg,
            metric_hooks=hooks,
            executor=engine.executor,
            model_store=engine.store,
            tracer=tracer,
        )
        records = sim.run(config.total_rounds)
    paths = export_run(tracer, config.trace, f"stable-s{seed}")
    if paths is not None:
        save_run(
            records,
            paths["base"].with_suffix(".run.json"),
            metrics=tracer.metrics.snapshot(),
            metadata={"scenario": "stable", "seed": seed},
        )

    attacker = clients[env.attacker_id]
    self_checks = (
        dict(attacker.self_check_passed)
        if isinstance(attacker, AdaptiveReplacementClient)
        else {}
    )
    return StableRunResult(
        records=records,
        injection_rounds=config.attack_rounds,
        defense_start=config.defense_start,
        self_check_passed=self_checks,
        main_accuracy=[r.metrics.get("main_acc", np.nan) for r in records]
        if track_metrics
        else [],
        backdoor_accuracy=[r.metrics.get("backdoor_acc", np.nan) for r in records]
        if track_metrics
        else [],
    )


# ----------------------------------------------------------------------
# Early-round scenario (Fig. 4)
# ----------------------------------------------------------------------
@dataclass
class EarlyRoundResult:
    """Per-round trajectories of the early-poisoning experiment."""

    records: list[RoundRecord]
    main_accuracy: list[float]
    backdoor_accuracy: list[float]
    injection_rounds: tuple[int, ...]
    defense_start: int | None


@_policy_scoped
def run_early_scenario(
    config: ExperimentConfig,
    seed: int,
    total_rounds: int = 160,
    defense_start: int | None = 106,
    early_injections: tuple[int, ...] = (20, 60),
    late_injection_start: int = 106,
    late_injection_every: int = 3,
    late_injection_count: int = 10,
) -> EarlyRoundResult:
    """Training from scratch with early poisoning (paper Fig. 4, scaled 1:5).

    The paper trains 800 rounds, injects at 100 and 300 (defense off),
    enables the defense at 530, then injects every 15 rounds until 680.
    The default arguments scale that schedule by 1/5 to 160 rounds.
    ``defense_start=None`` runs the no-defense baseline (Figs. 4a/4c).
    """
    env = build_environment(config, seed)
    late = tuple(
        late_injection_start + late_injection_every * i
        for i in range(late_injection_count)
    )
    injections = tuple(sorted(set(early_injections) | set(late)))
    if injections and injections[-1] >= total_rounds:
        raise ValueError("injection schedule exceeds total_rounds")

    run_rng = np.random.default_rng(np.random.SeedSequence((seed, 0xEA271)))
    defense = None
    if defense_start is not None:
        defended_config = config.with_updates(
            defense_start=defense_start,
            total_rounds=total_rounds,
            attack_rounds=injections,
        )
        defense = _build_defense(defended_config, env)

    flat_dim = env.shards[0].x.shape[1]
    model = make_mlp(flat_dim, env.num_classes, run_rng, hidden=config.hidden)

    fl_config = FLConfig(
        num_clients=config.num_clients,
        clients_per_round=config.clients_per_round,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        client_lr=config.pretrain_lr,
    )
    scenario_config = config.with_updates(
        attack_rounds=injections,
        total_rounds=total_rounds,
        defense_start=defense_start if defense_start is not None else total_rounds - 1,
    )
    clients = _build_clients(
        scenario_config, env, defense, fl_config.effective_global_lr
    )
    selector = ScheduledSelector(
        config.num_clients,
        config.clients_per_round,
        {r: [env.attacker_id] for r in injections},
    )
    test = env.test_data
    bd_eval = env.backdoor.backdoor_test_instances(200, np.random.default_rng(seed))
    target = env.backdoor.target_label
    tracer = make_tracer(config.trace)
    with _engine(config) as engine:
        sim = FederatedSimulation(
            model,
            clients,
            fl_config,
            run_rng,
            selector=selector,
            defense=defense,
            metric_hooks={
                "main_acc": lambda m: accuracy(test.y, m.predict(test.x)),
                "backdoor_acc": lambda m: float((m.predict(bd_eval.x) == target).mean()),
            },
            executor=engine.executor,
            model_store=engine.store,
            tracer=tracer,
        )
        records = sim.run(total_rounds)
    paths = export_run(tracer, config.trace, f"early-s{seed}")
    if paths is not None:
        save_run(
            records,
            paths["base"].with_suffix(".run.json"),
            metrics=tracer.metrics.snapshot(),
            metadata={"scenario": "early", "seed": seed},
        )
    return EarlyRoundResult(
        records=records,
        main_accuracy=[r.metrics["main_acc"] for r in records],
        backdoor_accuracy=[r.metrics["backdoor_acc"] for r in records],
        injection_rounds=injections,
        defense_start=defense_start,
    )


# ----------------------------------------------------------------------
# Per-class error traces (Fig. 2)
# ----------------------------------------------------------------------
@_policy_scoped
def run_error_trace(
    config: ExperimentConfig,
    seed: int,
    rounds: int = 40,
    injections: tuple[int, ...] = (25, 30, 35),
) -> dict[str, np.ndarray]:
    """Per-class error-rate trajectories, clean vs poisoned (paper Fig. 2).

    Returns ``{"clean": (rounds, classes), "poisoned": (rounds, classes),
    "source_class": int}`` where entry ``[r, y]`` is the class-conditional
    error rate of class ``y`` after round ``r`` on a fixed test set.
    """
    env = build_environment(config, seed)
    traces: dict[str, np.ndarray] = {}
    for label, attack_rounds in (("clean", ()), ("poisoned", injections)):
        scenario_config = config.with_updates(
            attack_rounds=attack_rounds,
            total_rounds=rounds,
            defense_start=rounds - 1,  # defense irrelevant; keep config valid
        )
        fl_config = FLConfig(
            num_clients=config.num_clients,
            clients_per_round=config.clients_per_round,
            local_epochs=config.local_epochs,
            batch_size=config.batch_size,
            client_lr=config.stable_lr,
            global_lr=config.stable_global_lr,
        )
        clients = _build_clients(
            scenario_config, env, None, fl_config.effective_global_lr
        )
        selector = ScheduledSelector(
            config.num_clients,
            config.clients_per_round,
            {r: [env.attacker_id] for r in attack_rounds},
        )
        tracer = make_tracer(config.trace)
        with _engine(config) as engine:
            sim = FederatedSimulation(
                env.stable_model.clone(),
                clients,
                fl_config,
                np.random.default_rng(np.random.SeedSequence((seed, 0xF16))),
                selector=selector,
                executor=engine.executor,
                model_store=engine.store,
                tracer=tracer,
            )
            rows = []
            for _ in range(rounds):
                sim.run_round()
                preds = sim.global_model.predict(env.test_data.x)
                conf = confusion_matrix(env.test_data.y, preds, env.num_classes)
                rows.append(source_focused_errors(conf, normalize="class"))
        export_run(tracer, config.trace, f"trace-{label}-s{seed}")
        traces[label] = np.stack(rows)
    source_class = getattr(env.backdoor, "source_label", None)
    if source_class is None:
        from repro.data.synthetic_cifar import CIFAR_BACKDOOR_SOURCE_CLASS

        source_class = CIFAR_BACKDOOR_SOURCE_CLASS
    traces["source_class"] = np.array(source_class)
    return traces


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
@contextmanager
def _engine(config: ExperimentConfig):
    """The round-execution engine a scenario config asks for.

    One factory decides workers, store backend and execution mode together
    (:func:`repro.fl.parallel.make_engine`), so a process pool can never
    silently run on pipe transport because the store was built elsewhere.

    ``config.sanitize`` turns the runtime sanitizer on for the engine's
    whole lifetime via :func:`repro.analysis.sanitize.scope` — the scope
    is entered *before* the engine so pool workers forked at engine
    startup inherit the ``REPRO_SANITIZE`` environment flag.
    """
    from repro.analysis import sanitize

    with sanitize.scope(config.sanitize):
        with make_engine(
            config.workers,
            store=config.model_store,
            mode=config.execution_mode,
            pipeline_depth=config.pipeline_depth,
            codec=config.codec,
            require_lossless=not config.allow_lossy,
            cohort_size=config.cohort_size,
            engine=config.engine,
            faults=config.faults,
            task_deadline_s=config.task_deadline_s,
        ) as engine:
            yield engine


def _build_defense(config: ExperimentConfig, env: Environment) -> BaffleDefense:
    validator_kwargs = {
        "normalize": config.validator_normalize,
        "threshold_slack": config.validator_slack,
        "features": config.validator_features,
    }
    validator_pool = None
    if config.mode in ("clients", "both"):
        datasets: dict[int, Dataset] = {
            cid: shard
            for cid, shard in enumerate(env.shards)
            if cid != env.attacker_id
        }
        if config.malicious_validators:
            from repro.core.validation import ConstantVoteValidator

            lie = 1 if config.malicious_vote_strategy == "dos" else 0
            validators: dict[int, object] = {
                cid: MisclassificationValidator(ds, **validator_kwargs)
                for cid, ds in datasets.items()
            }
            corrupted = sorted(validators)[: config.malicious_validators]
            for cid in corrupted:
                validators[cid] = ConstantVoteValidator(lie)
            validator_pool = ValidatorPool(validators)
        else:
            validator_pool = ValidatorPool.from_datasets(
                datasets, **validator_kwargs
            )
    server_validator = None
    if config.mode in ("server", "both"):
        server_validator = MisclassificationValidator(
            env.server_data, **validator_kwargs
        )
    baffle_config = BaffleConfig(
        lookback=config.lookback,
        quorum=config.quorum,
        num_validators=config.num_validators,
        mode=config.mode,
        start_round=config.defense_start,
        dropout_rate=config.validator_dropout,
        quorum_policy=config.quorum_policy,
        quorum_min=config.quorum_min,
    )
    return BaffleDefense(baffle_config, validator_pool, server_validator)


def _build_clients(
    config: ExperimentConfig,
    env: Environment,
    defense: BaffleDefense | None,
    effective_global_lr: float,
) -> list[Client] | ClientRegistry:
    """The scenario's client population: an eager list, or — under
    ``config.virtual_clients`` — a :class:`ClientRegistry` whose honest
    clients materialize on selection, with the attacker as a permanently
    resident override.  Both commit bit-identical models."""
    replacement = ReplacementConfig(
        # Full-replacement boost N/lambda for the lambda this run uses.
        boost=config.num_clients / effective_global_lr,
        poison_ratio=config.poison_ratio,
        poison_samples=config.poison_samples,
        attack_epochs=config.attack_epochs,
        attack_lr=config.attack_lr,
    )
    attacker_shard = env.shards[env.attacker_id]
    if config.adaptive:
        if defense is None:
            raise ValueError("adaptive attacker needs the defense history")
        attacker: Client = AdaptiveReplacementClient(
            env.attacker_id,
            attacker_shard,
            env.backdoor,
            replacement,
            set(config.attack_rounds),
            history_provider=defense.history.entries,
            max_trials=config.adaptive_max_trials,
        )
    else:
        attacker = ModelReplacementClient(
            env.attacker_id,
            attacker_shard,
            env.backdoor,
            replacement,
            set(config.attack_rounds),
        )
    if config.virtual_clients:
        if env.client_pool is None or env.partition_spec is None:
            raise ValueError(
                "environment carries no lazy partition spec; rebuild it "
                "with this repro version before using virtual_clients"
            )
        return ClientRegistry(
            LazyShardFactory(env.client_pool, env.partition_spec),
            overrides={env.attacker_id: attacker},
        )
    return [
        attacker if cid == env.attacker_id else HonestClient(cid, shard)
        for cid, shard in enumerate(env.shards)
    ]
