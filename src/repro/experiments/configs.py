"""Experiment configuration.

Scaled-down counterparts of the paper's setups (Sec. VI-A/VI-B).  The
paper's shape-defining structure is preserved exactly — 10 contributors and
10 validators per round, 2 local epochs, Dirichlet(0.9) non-IID splits,
20 defended warm-up rounds, injections at rounds 30/35/40 of a 50-round
defended window — while population and dataset sizes are scaled to CPU
budgets (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fl.compression import codec_names, make_codec
from repro.fl.faults import QUORUM_POLICIES, FaultPlan
from repro.fl.model_store import STORE_KINDS
from repro.fl.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    ENGINE_KINDS,
    EXECUTION_MODES,
)
from repro.nn.precision import DTYPE_POLICIES

#: Client-server validation-data splits evaluated in Table I / Fig. 3.
CIFAR_SPLITS = (0.90, 0.95, 0.99)
FEMNIST_SPLITS = (0.99, 0.995, 0.999)

#: Injection rounds of the stable-model scenario (0-indexed; the paper's
#: "rounds 30, 35 and 40" with round 1 = the stable model).
PAPER_ATTACK_ROUNDS = (29, 34, 39)

_DATASETS = ("cifar", "femnist")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a detection experiment needs.

    Attributes mirror the paper's knobs:

    - ``dataset``: ``"cifar"`` (semantic backdoor: striped cars -> bird) or
      ``"femnist"`` (label-flip backdoor, writer-partitioned clients);
    - ``client_share``: the C of the C-S% validation-data split;
    - ``lookback`` (l), ``quorum`` (q), ``mode``: BaFFLe parameters;
    - ``attack_rounds``: injection rounds within the defended window;
    - ``adaptive``: use the defense-aware attacker of Sec. VI-C.
    """

    dataset: str = "cifar"
    client_share: float = 0.90
    # Population / data scale (paper: 100 clients & 50k samples for CIFAR).
    num_clients: int = 30
    pool_size: int = 3000
    test_size: int = 600
    dirichlet_alpha: float = 0.9
    # Federated process (paper Sec. VI-A).
    clients_per_round: int = 10
    local_epochs: int = 2
    batch_size: int = 32
    pretrain_rounds: int = 40
    pretrain_lr: float = 0.05
    stable_lr: float = 0.05
    stable_global_lr: float | None = 1.0
    # Defense (paper Sec. VI-B).
    lookback: int = 20
    quorum: int = 5
    num_validators: int = 10
    mode: str = "both"
    defense_start: int = 20
    total_rounds: int = 50
    attack_rounds: tuple[int, ...] = PAPER_ATTACK_ROUNDS
    # Attack strength.
    poison_ratio: float = 0.25
    poison_samples: int = 80
    attack_epochs: int = 6
    attack_lr: float = 0.05
    adaptive: bool = False
    adaptive_max_trials: int = 6
    # Validator variants (ablations; paper defaults otherwise).
    validator_normalize: str = "dataset"
    validator_slack: float = 1.15
    validator_features: str = "both"
    validator_dropout: float = 0.0
    # Malicious voters (Sec. IV-B robustness): replace this many honest
    # client validators with liars.  "dos" liars always vote reject
    # (denial of service); "shield" liars always vote accept (covering the
    # attacker).
    malicious_validators: int = 0
    malicious_vote_strategy: str = "dos"
    # Model.
    hidden: tuple[int, ...] = (64,)
    # Execution engine: worker processes for client training and validator
    # votes (0/1 = in-process sequential), and the model-store backend
    # moving weights to those workers ("auto" picks shared memory whenever
    # a process pool exists, "inprocess"/"shared" force a backend).
    # ``execution_mode`` selects the round loop: "sync" blocks each round
    # on its validator quorum, "pipelined" commits optimistically and runs
    # up to ``pipeline_depth`` rounds ahead of their open quorums (late
    # rejections roll back and replay).  Every executor/store/mode/depth
    # combination commits bit-identical models, so all four are pure
    # throughput knobs and deliberately excluded from ``environment_key``.
    workers: int = 0
    # Multi-worker backend: "process" fans out over worker processes,
    # "thread" over in-process threads (zero IPC; the numeric kernels
    # release the GIL), "auto" resolves to "process".  Another pure
    # throughput knob: every engine commits bit-identical models.
    engine: str = "auto"
    model_store: str = "auto"
    execution_mode: str = "sync"
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH
    # Stacked cohort execution (repro.fl.cohort): gather up to this many of
    # a round's honest clients into one batched training stack (0/1 = one
    # model at a time; None = each executor's default — pool and thread
    # engines stack everything eligible, sequential stays per-model).
    # Stacked and per-model paths commit bit-identical models, so this is
    # a pure throughput knob like ``workers`` and stays out of
    # ``environment_key``.
    cohort_size: int | None = None
    # Weight-compression codec on the store transport path
    # (repro.fl.compression).  Unlike the engine knobs above, a
    # non-identity codec is *not* a pure throughput knob — it changes the
    # committed trajectory — so it participates in ``environment_key``.
    # Lossy codecs additionally void the cross-engine bit-identity
    # guarantee and must be opted into via ``allow_lossy``.
    codec: str = "identity"
    allow_lossy: bool = False
    # Runtime sanitizer (repro.analysis.sanitize): dtype assertions on
    # the hot numeric paths plus per-round/per-layer candidate hashing.
    # Pure instrumentation — it never changes the committed trajectory —
    # so it stays out of ``environment_key`` like the engine knobs.
    # Equivalent to running under ``REPRO_SANITIZE=1``.
    sanitize: bool = False
    # Round-lifecycle tracing (repro.obs): when set to an output directory,
    # each scenario run records phase spans + run metrics and writes a
    # JSONL event log and a Perfetto-loadable Chrome trace there.  Pure
    # instrumentation — traced runs commit bit-identical models — so it
    # stays out of ``environment_key`` like ``sanitize``.  Equivalent to
    # running with ``REPRO_TRACE=<dir>`` (CLI: ``--trace``).
    trace: str | None = None
    # Execution precision policy (repro.nn.precision): "float64" (default;
    # committed models bit-identical to the seed baseline) or "float32"
    # (~half the memory and transport volume, with its own cross-engine
    # bit-identity contract).  The policy changes every committed weight,
    # so — like the codec — it participates in ``environment_key``.
    dtype_policy: str = "float64"
    # Virtual client population (repro.fl.registry): clients are pure IDs,
    # materialized on selection from the environment's recorded partition
    # spec and discarded after the round.  Commits bit-identical models to
    # the eager path, so it stays out of ``environment_key`` like the
    # engine knobs.
    virtual_clients: bool = False
    # Fault injection (repro.fl.faults): a deterministic fault-spec string
    # ("crash@3.train;delay@4.validate.1=0.3;drop@5.vote.7") consumed by
    # the executors' resilience layer.  Recovery is retry-by-replay over
    # per-(round, entity) RNG streams, so an injected crash or straggler
    # commits bit-identical models to the fault-free run — a pure
    # robustness-testing knob, deliberately excluded from
    # ``environment_key``.  Equivalent to ``REPRO_FAULTS`` (CLI:
    # ``--faults``).
    faults: str | None = None
    # Per-task deadline (seconds) for the resilience layer's straggler
    # detection: a dispatched task exceeding it is reassigned (recomputed
    # from its keyed RNG streams).  None disables deadlines.
    task_deadline_s: float | None = None
    # Quorum policy for rounds whose validator votes go missing (dropped
    # by a fault, or lost to an exhausted recovery path): "strict" stalls
    # the round (QuorumStallError), "degrade" proceeds over the shrunken
    # quorum once ``quorum_min`` votes arrived.  Unlike the knobs above
    # this changes which models get committed when votes are lost, so it
    # participates in ``environment_key``.
    quorum_policy: str = "strict"
    quorum_min: int = 1

    def __post_init__(self) -> None:
        if self.dataset not in _DATASETS:
            raise ValueError(f"dataset must be one of {_DATASETS}, got {self.dataset!r}")
        if not 0.0 < self.client_share < 1.0:
            raise ValueError(f"client_share must be in (0, 1), got {self.client_share}")
        if self.defense_start >= self.total_rounds:
            raise ValueError("defense_start must precede total_rounds")
        for r in self.attack_rounds:
            if not 0 <= r < self.total_rounds:
                raise ValueError(f"attack round {r} outside [0, {self.total_rounds})")
        if self.malicious_validators < 0:
            raise ValueError("malicious_validators must be >= 0")
        if self.malicious_vote_strategy not in ("dos", "shield"):
            raise ValueError(
                "malicious_vote_strategy must be 'dos' or 'shield', got "
                f"{self.malicious_vote_strategy!r}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {ENGINE_KINDS}, got {self.engine!r}"
            )
        if self.cohort_size is not None and self.cohort_size < 0:
            raise ValueError(
                f"cohort_size must be >= 0, got {self.cohort_size}"
            )
        if self.model_store not in STORE_KINDS:
            raise ValueError(
                f"model_store must be one of {STORE_KINDS}, got "
                f"{self.model_store!r}"
            )
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, got "
                f"{self.execution_mode!r}"
            )
        # Fail here, not deep inside make_engine: a depth-0 "pipelined"
        # config is pure overhead (it degenerates to sync semantics), and
        # an unknown or unauthorized codec should abort before any
        # environment is pretrained.
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth} "
                "(a depth below 1 degenerates to execution_mode='sync'; "
                "use that instead)"
            )
        if self.codec not in codec_names():
            raise ValueError(
                f"codec must be one of {codec_names()}, got {self.codec!r}"
            )
        if self.dtype_policy not in DTYPE_POLICIES:
            raise ValueError(
                f"dtype_policy must be one of {DTYPE_POLICIES}, got "
                f"{self.dtype_policy!r}"
            )
        if not self.allow_lossy and not make_codec(self.codec).lossless:
            raise ValueError(
                f"codec {self.codec!r} is lossy (committed models are no "
                "longer bit-identical across engines); set allow_lossy=True "
                "(CLI: --allow-lossy) to admit it for scale runs"
            )
        # Fault-spec grammar errors abort before any environment work.
        FaultPlan.parse(self.faults)
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ValueError(
                f"task_deadline_s must be > 0, got {self.task_deadline_s}"
            )
        if self.quorum_policy not in QUORUM_POLICIES:
            raise ValueError(
                f"quorum_policy must be one of {QUORUM_POLICIES}, got "
                f"{self.quorum_policy!r}"
            )
        if self.quorum_min < 1:
            raise ValueError(
                f"quorum_min must be >= 1, got {self.quorum_min}"
            )

    def environment_key(self, seed: int) -> tuple:
        """Cache key for the (expensive) pretrained environment.

        Everything that influences the stable model and data layout — but
        *not* the defense parameters, which only affect the cheap defended
        phase.  Experiments sweeping l / q / mode over one environment reuse
        the pretraining.  The codec *is* part of the key: a non-identity
        codec canonicalizes committed models (or, for lossy transport,
        perturbs what workers train on), so environments pretrained under
        different codecs are not interchangeable.  So is the quorum
        policy: when votes go missing, ``strict`` and ``degrade`` runs
        commit different models, and hiding that in a shared cache entry
        would silently mix trajectories.  The fault plan itself stays out
        — recovery replays to bit-identical models by contract.
        """
        return (
            self.codec,
            self.dtype_policy,
            self.quorum_policy,
            self.quorum_min,
            self.dataset,
            self.client_share,
            self.num_clients,
            self.pool_size,
            self.test_size,
            self.dirichlet_alpha,
            self.clients_per_round,
            self.local_epochs,
            self.batch_size,
            self.pretrain_rounds,
            self.pretrain_lr,
            self.hidden,
            seed,
        )

    def with_updates(self, **changes) -> "ExperimentConfig":
        """A copy with some fields replaced (dataclasses.replace wrapper)."""
        from dataclasses import replace

        return replace(self, **changes)


def paper_config(dataset: str, client_share: float, **overrides) -> ExperimentConfig:
    """Convenience constructor for the paper's named setups."""
    return ExperimentConfig(dataset=dataset, client_share=client_share, **overrides)
