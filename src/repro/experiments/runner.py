"""Repeat scenarios over seeds and aggregate the paper's statistics.

Seeds are fully independent and the outermost trivially parallel axis of a
sweep (every Table I / Fig. 3 cell repeats the same scenario per seed), so
:func:`run_detection_experiment` and :func:`run_adaptive_experiment` can
fan seeds out over a process pool (``seed_workers``).  Each seed process
builds its own environment (the in-process environment cache does not
cross process boundaries) and returns only the small per-run statistics;
per-seed results are deterministic, so serial and fanned-out runs
aggregate identically.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import repeat

from repro.experiments.configs import ExperimentConfig
from repro.experiments.metrics import (
    AggregateStats,
    DetectionStats,
    aggregate_stats,
    detection_stats,
)
from repro.experiments.scenarios import run_stable_scenario

#: The paper averages each cell over 5 repeated experiments.
DEFAULT_SEEDS = (0, 1, 2, 3, 4)


def _detection_seed_task(config: ExperimentConfig, seed: int) -> DetectionStats:
    """One seed's defended run, reduced to its detection statistics."""
    result = run_stable_scenario(config, seed)
    return detection_stats(result.records, result.injection_rounds, result.defense_start)


def _map_over_seeds(task, payload, seeds: Sequence[int], seed_workers: int):
    """Run ``task(payload, seed)`` per seed, serially or over a process pool."""
    if seed_workers >= 2 and len(seeds) > 1:
        with ProcessPoolExecutor(max_workers=min(seed_workers, len(seeds))) as pool:
            return list(pool.map(task, repeat(payload), seeds))
    return [task(payload, seed) for seed in seeds]


def _grid_seed_task(
    cells: dict[tuple, ExperimentConfig], seed: int
) -> dict[tuple, DetectionStats]:
    """One seed's run of every sweep cell, serially.

    Cells of a sweep share their (expensive, pretrained) environment per
    seed — ``environment_key`` excludes the defense knobs — so a whole-grid
    pass inside one process pretrains once and reuses the cache across
    cells.  This is why seed fan-out happens per *grid*, not per cell: a
    per-cell pool would rebuild the environment for every cell.
    """
    return {key: _detection_seed_task(config, seed) for key, config in cells.items()}


def _run_grid(
    cells: dict[tuple, ExperimentConfig], seeds: Sequence[int], seed_workers: int
) -> dict[tuple, AggregateStats]:
    """Aggregate every cell over seeds, optionally fanning seeds out."""
    per_seed = _map_over_seeds(_grid_seed_task, cells, seeds, seed_workers)
    return {
        key: aggregate_stats([seed_stats[key] for seed_stats in per_seed])
        for key in cells
    }


def _engine_overrides(
    config: ExperimentConfig,
    workers: int | None,
    execution_mode: str | None,
    pipeline_depth: int | None,
    codec: str | None = None,
) -> ExperimentConfig:
    """Apply the executor knobs without the caller rebuilding the config."""
    changes = {}
    if workers is not None:
        changes["workers"] = workers
    if execution_mode is not None:
        changes["execution_mode"] = execution_mode
    if pipeline_depth is not None:
        changes["pipeline_depth"] = pipeline_depth
    if codec is not None:
        changes["codec"] = codec
    return config.with_updates(**changes) if changes else config


def run_detection_experiment(
    config: ExperimentConfig,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: int | None = None,
    seed_workers: int = 0,
    execution_mode: str | None = None,
    pipeline_depth: int | None = None,
    codec: str | None = None,
) -> AggregateStats:
    """One table/figure cell: FP/FN rates averaged over repeated runs.

    ``workers`` / ``execution_mode`` / ``pipeline_depth`` override the
    config's parallel-engine knobs without the caller rebuilding it;
    ``seed_workers >= 2`` runs the seeds in that many processes.  Results
    are bit-identical for any combination of those knobs.  ``codec``
    overrides the transport codec — the one override that is *not*
    result-preserving unless the codec is the identity.
    """
    config = _engine_overrides(
        config, workers, execution_mode, pipeline_depth, codec
    )
    runs = _map_over_seeds(_detection_seed_task, config, seeds, seed_workers)
    return aggregate_stats(runs)


def sweep_lookback(
    base: ExperimentConfig,
    lookbacks: Sequence[int],
    splits: Sequence[float],
    modes: Sequence[str] = ("clients", "server", "both"),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    seed_workers: int = 0,
) -> dict[tuple[int, float, str], AggregateStats]:
    """Paper Table I: FP/FN over look-back window sizes and data splits."""
    cells = {
        (lookback, split, mode): base.with_updates(
            lookback=lookback, client_share=split, mode=mode
        )
        for split in splits
        for lookback in lookbacks
        for mode in modes
    }
    return _run_grid(cells, seeds, seed_workers)


def sweep_quorum(
    base: ExperimentConfig,
    quorums: Sequence[int],
    splits: Sequence[float],
    modes: Sequence[str] = ("clients", "server", "both"),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    seed_workers: int = 0,
) -> dict[tuple[int, float, str], AggregateStats]:
    """Paper Fig. 3: FP/FN as a function of the quorum threshold ``q``.

    The server-only configuration does not depend on ``q``; it is evaluated
    once per split and replicated across the quorum axis.
    """
    cells: dict[tuple[int, float, str], ExperimentConfig] = {}
    for split in splits:
        for mode in modes:
            if mode == "server":
                if quorums:  # evaluated once; replicated across quorums below
                    cells[(quorums[0], split, "server")] = base.with_updates(
                        client_share=split, mode="server"
                    )
                continue
            for quorum in quorums:
                cells[(quorum, split, mode)] = base.with_updates(
                    quorum=quorum, client_share=split, mode=mode
                )
    results = _run_grid(cells, seeds, seed_workers)
    if "server" in modes and quorums:
        for split in splits:
            server_stats = results[(quorums[0], split, "server")]
            for quorum in quorums:
                results[(quorum, split, "server")] = server_stats
    return results


@dataclass(frozen=True)
class AdaptiveExperimentResult:
    """Paper Table II + Fig. 5 data for one configuration."""

    non_adaptive: AggregateStats
    adaptive: AggregateStats
    #: Reject-vote counts observed on adaptive injection rounds (Fig. 5).
    adaptive_reject_votes: tuple[int, ...]
    #: How many injections passed the attacker's own validation.
    self_check_pass_rate: float


def _adaptive_seed_task(
    config: ExperimentConfig, seed: int
) -> tuple[DetectionStats, DetectionStats, list[int], list[bool]]:
    """One seed's paired plain/adaptive runs, reduced to small statistics."""
    plain = run_stable_scenario(config.with_updates(adaptive=False), seed)
    adaptive = run_stable_scenario(config.with_updates(adaptive=True), seed)
    return (
        detection_stats(plain.records, plain.injection_rounds, plain.defense_start),
        detection_stats(
            adaptive.records, adaptive.injection_rounds, adaptive.defense_start
        ),
        adaptive.reject_votes_on_injections(),
        list(adaptive.self_check_passed.values()),
    )


def run_adaptive_experiment(
    config: ExperimentConfig,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: int | None = None,
    seed_workers: int = 0,
    execution_mode: str | None = None,
    pipeline_depth: int | None = None,
    codec: str | None = None,
) -> AdaptiveExperimentResult:
    """Compare the defense against non-adaptive vs adaptive injections."""
    config = _engine_overrides(
        config, workers, execution_mode, pipeline_depth, codec
    )
    non_adaptive_runs: list[DetectionStats] = []
    adaptive_runs: list[DetectionStats] = []
    votes: list[int] = []
    self_checks: list[bool] = []
    for plain_stats, adaptive_stats, seed_votes, seed_checks in _map_over_seeds(
        _adaptive_seed_task, config, seeds, seed_workers
    ):
        non_adaptive_runs.append(plain_stats)
        adaptive_runs.append(adaptive_stats)
        votes.extend(seed_votes)
        self_checks.extend(seed_checks)
    return AdaptiveExperimentResult(
        non_adaptive=aggregate_stats(non_adaptive_runs),
        adaptive=aggregate_stats(adaptive_runs),
        adaptive_reject_votes=tuple(votes),
        self_check_pass_rate=(
            sum(self_checks) / len(self_checks) if self_checks else 0.0
        ),
    )
