"""Repeat scenarios over seeds and aggregate the paper's statistics."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.experiments.configs import ExperimentConfig
from repro.experiments.metrics import (
    AggregateStats,
    DetectionStats,
    aggregate_stats,
    detection_stats,
)
from repro.experiments.scenarios import StableRunResult, run_stable_scenario

#: The paper averages each cell over 5 repeated experiments.
DEFAULT_SEEDS = (0, 1, 2, 3, 4)


def run_detection_experiment(
    config: ExperimentConfig,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: int | None = None,
) -> AggregateStats:
    """One table/figure cell: FP/FN rates averaged over repeated runs.

    ``workers`` overrides ``config.workers`` (the parallel-engine knob)
    without the caller rebuilding the config; results are bit-identical
    for any worker count.
    """
    if workers is not None:
        config = config.with_updates(workers=workers)
    runs = [
        detection_stats(
            result.records, result.injection_rounds, result.defense_start
        )
        for result in (run_stable_scenario(config, seed) for seed in seeds)
    ]
    return aggregate_stats(runs)


def sweep_lookback(
    base: ExperimentConfig,
    lookbacks: Sequence[int],
    splits: Sequence[float],
    modes: Sequence[str] = ("clients", "server", "both"),
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> dict[tuple[int, float, str], AggregateStats]:
    """Paper Table I: FP/FN over look-back window sizes and data splits."""
    results: dict[tuple[int, float, str], AggregateStats] = {}
    for split in splits:
        for lookback in lookbacks:
            for mode in modes:
                config = base.with_updates(
                    lookback=lookback, client_share=split, mode=mode
                )
                results[(lookback, split, mode)] = run_detection_experiment(
                    config, seeds
                )
    return results


def sweep_quorum(
    base: ExperimentConfig,
    quorums: Sequence[int],
    splits: Sequence[float],
    modes: Sequence[str] = ("clients", "server", "both"),
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> dict[tuple[int, float, str], AggregateStats]:
    """Paper Fig. 3: FP/FN as a function of the quorum threshold ``q``.

    The server-only configuration does not depend on ``q``; it is evaluated
    once per split and replicated across the quorum axis.
    """
    results: dict[tuple[int, float, str], AggregateStats] = {}
    for split in splits:
        server_stats: AggregateStats | None = None
        for mode in modes:
            if mode == "server":
                server_stats = run_detection_experiment(
                    base.with_updates(client_share=split, mode="server"), seeds
                )
                continue
            for quorum in quorums:
                config = base.with_updates(
                    quorum=quorum, client_share=split, mode=mode
                )
                results[(quorum, split, mode)] = run_detection_experiment(
                    config, seeds
                )
        if server_stats is not None:
            for quorum in quorums:
                results[(quorum, split, "server")] = server_stats
    return results


@dataclass(frozen=True)
class AdaptiveExperimentResult:
    """Paper Table II + Fig. 5 data for one configuration."""

    non_adaptive: AggregateStats
    adaptive: AggregateStats
    #: Reject-vote counts observed on adaptive injection rounds (Fig. 5).
    adaptive_reject_votes: tuple[int, ...]
    #: How many injections passed the attacker's own validation.
    self_check_pass_rate: float


def run_adaptive_experiment(
    config: ExperimentConfig,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: int | None = None,
) -> AdaptiveExperimentResult:
    """Compare the defense against non-adaptive vs adaptive injections."""
    if workers is not None:
        config = config.with_updates(workers=workers)
    non_adaptive_runs: list[DetectionStats] = []
    adaptive_runs: list[DetectionStats] = []
    votes: list[int] = []
    self_checks: list[bool] = []
    for seed in seeds:
        plain = run_stable_scenario(config.with_updates(adaptive=False), seed)
        non_adaptive_runs.append(
            detection_stats(plain.records, plain.injection_rounds, plain.defense_start)
        )
        adaptive = run_stable_scenario(config.with_updates(adaptive=True), seed)
        adaptive_runs.append(
            detection_stats(
                adaptive.records, adaptive.injection_rounds, adaptive.defense_start
            )
        )
        votes.extend(adaptive.reject_votes_on_injections())
        self_checks.extend(adaptive.self_check_passed.values())
    return AdaptiveExperimentResult(
        non_adaptive=aggregate_stats(non_adaptive_runs),
        adaptive=aggregate_stats(adaptive_runs),
        adaptive_reject_votes=tuple(votes),
        self_check_pass_rate=(
            sum(self_checks) / len(self_checks) if self_checks else 0.0
        ),
    )
