"""JSON persistence for experiment results.

Lets the CLI and long sweeps checkpoint their outputs:
``save_results``/``load_results`` round-trip the aggregate statistics of
arbitrary sweep grids (keys become strings; values keep full precision).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path

from repro.experiments.metrics import AggregateStats

_FORMAT_VERSION = 1


def _key_to_str(key) -> str:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def _str_to_key(text: str):
    if "|" not in text:
        return _parse_scalar(text)
    return tuple(_parse_scalar(part) for part in text.split("|"))


def _parse_scalar(text: str):
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def save_results(
    results: Mapping[object, AggregateStats], path: str | Path, metadata: dict | None = None
) -> Path:
    """Serialise a sweep-result mapping to JSON."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "results": {
            _key_to_str(key): {
                "fp_mean": stats.fp_mean,
                "fp_std": stats.fp_std,
                "fn_mean": stats.fn_mean,
                "fn_std": stats.fn_std,
                "num_runs": stats.num_runs,
            }
            for key, stats in results.items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> tuple[dict, dict]:
    """Load ``(results, metadata)`` saved by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result-file version: {version!r}")
    results = {
        _str_to_key(key): AggregateStats(
            fp_mean=value["fp_mean"],
            fp_std=value["fp_std"],
            fn_mean=value["fn_mean"],
            fn_std=value["fn_std"],
            num_runs=value["num_runs"],
        )
        for key, value in payload["results"].items()
    }
    return results, payload.get("metadata", {})
