"""JSON persistence for experiment results.

Lets the CLI and long sweeps checkpoint their outputs:
``save_results``/``load_results`` round-trip the aggregate statistics of
arbitrary sweep grids (keys become strings; values keep full precision);
``save_run``/``load_run`` round-trip one run's per-round records — the
round-loop telemetry plus, when the run was traced, per-phase wall-clock
timings and the final metrics snapshot (:mod:`repro.obs`).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path

from repro.experiments.metrics import AggregateStats

_FORMAT_VERSION = 1


def _key_to_str(key) -> str:
    if isinstance(key, tuple):
        return "|".join(str(part) for part in key)
    return str(key)


def _str_to_key(text: str):
    if "|" not in text:
        return _parse_scalar(text)
    return tuple(_parse_scalar(part) for part in text.split("|"))


def _parse_scalar(text: str):
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def save_results(
    results: Mapping[object, AggregateStats], path: str | Path, metadata: dict | None = None
) -> Path:
    """Serialise a sweep-result mapping to JSON."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "results": {
            _key_to_str(key): {
                "fp_mean": stats.fp_mean,
                "fp_std": stats.fp_std,
                "fn_mean": stats.fn_mean,
                "fn_std": stats.fn_std,
                "num_runs": stats.num_runs,
            }
            for key, stats in results.items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> tuple[dict, dict]:
    """Load ``(results, metadata)`` saved by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result-file version: {version!r}")
    results = {
        _str_to_key(key): AggregateStats(
            fp_mean=value["fp_mean"],
            fp_std=value["fp_std"],
            fn_mean=value["fn_mean"],
            fn_std=value["fn_std"],
            num_runs=value["num_runs"],
        )
        for key, value in payload["results"].items()
    }
    return results, payload.get("metadata", {})


def _record_to_dict(record) -> dict:
    """One round record as a JSON-safe dict.

    getattr-defensive throughout: callers may hand in pre-registry or
    pre-tracing record objects that lack the newer telemetry fields, and
    a duck-typed record (tests) may lack ``decision`` entirely.
    """
    decision = getattr(record, "decision", None)
    row = {
        "round_idx": record.round_idx,
        "accepted": bool(record.accepted),
        "reject_votes": getattr(decision, "reject_votes", 0),
        "num_validators": getattr(decision, "num_validators", 0),
        "transport_bytes": getattr(record, "transport_bytes", 0),
        "raw_transport_bytes": getattr(
            record, "raw_transport_bytes", getattr(record, "transport_bytes", 0)
        ),
        "codec": getattr(record, "codec", "identity"),
        "accepted_at_round": getattr(record, "accepted_at_round", record.round_idx),
        "validation_lag": getattr(record, "validation_lag", 0),
        "rollback_count": getattr(record, "rollback_count", 0),
        "peak_rss_kb": getattr(record, "peak_rss_kb", 0),
        "materialized_clients": getattr(record, "materialized_clients", 0),
        "metrics": {k: float(v) for k, v in getattr(record, "metrics", {}).items()},
    }
    phase_times = getattr(record, "phase_times", None)
    if phase_times:
        row["phase_times"] = {k: float(v) for k, v in sorted(phase_times.items())}
    return row


def save_run(
    records,
    path: str | Path,
    metrics: dict | None = None,
    metadata: dict | None = None,
) -> Path:
    """Serialise one run's per-round records (plus an optional final
    metrics snapshot from :meth:`repro.obs.MetricsRegistry.snapshot`)."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "metrics": metrics or {},
        "rounds": [_record_to_dict(r) for r in records],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_run(path: str | Path) -> tuple[list[dict], dict, dict]:
    """Load ``(rounds, metrics, metadata)`` saved by :func:`save_run`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported run-file version: {version!r}")
    return (
        payload.get("rounds", []),
        payload.get("metrics", {}),
        payload.get("metadata", {}),
    )
