"""Command-line interface for the experiment harness.

Usage::

    python -m repro detect  --dataset cifar --split 0.9 --seeds 3
    python -m repro table1  --dataset cifar --seeds 2
    python -m repro fig3    --dataset femnist
    python -m repro fig4    --dataset cifar
    python -m repro table2
    python -m repro fig2
    python -m repro lint    src benchmarks examples
    python -m repro trace   traces/run.jsonl [other.jsonl]

Each experiment subcommand prints the corresponding paper artefact as
text (the same renderers the benchmark suite uses) and accepts
``--sanitize`` to run under the runtime sanitizer
(:mod:`repro.analysis.sanitize`) and ``--trace <dir>`` (or
``REPRO_TRACE=<dir>``) to record round-lifecycle spans and run metrics
(:mod:`repro.obs`).  ``lint`` runs the static determinism battery
(:mod:`repro.analysis.lint`) and exits nonzero on findings; ``trace``
summarizes one recorded trace or diffs two.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.experiments.configs import (
    CIFAR_SPLITS,
    FEMNIST_SPLITS,
    ExperimentConfig,
)
from repro.experiments.reporting import (
    format_quorum_series,
    format_series,
    format_table1,
    format_table2,
    format_vote_distribution,
)
from repro.experiments.runner import (
    run_adaptive_experiment,
    run_detection_experiment,
    sweep_lookback,
    sweep_quorum,
)
from repro.fl.compression import codec_names
from repro.fl.faults import QUORUM_POLICIES
from repro.fl.model_store import STORE_KINDS
from repro.fl.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    ENGINE_KINDS,
    EXECUTION_MODES,
)
from repro.nn.precision import DTYPE_POLICIES
from repro.experiments.scenarios import run_early_scenario, run_error_trace


#: Default repetitions per cell (the paper averages over 5).  The parser
#: default is ``None`` so subcommands that ignore --seeds can tell "flag
#: passed" from "default" and warn on any explicit value.
DEFAULT_SEED_COUNT = 2


def _seeds(args: argparse.Namespace) -> tuple[int, ...]:
    count = DEFAULT_SEED_COUNT if args.seeds is None else args.seeds
    return tuple(range(count))


def _splits(dataset: str) -> tuple[float, ...]:
    return CIFAR_SPLITS if dataset == "cifar" else FEMNIST_SPLITS


def cmd_detect(args: argparse.Namespace) -> None:
    config = ExperimentConfig(
        dataset=args.dataset,
        client_share=args.split,
        lookback=args.lookback,
        quorum=args.quorum,
        mode=args.mode,
        workers=args.workers, engine=args.engine,
        model_store=args.store,
        execution_mode=args.exec_mode,
        pipeline_depth=args.pipeline_depth,
        cohort_size=args.cohort_size,
        codec=args.codec,
        allow_lossy=args.allow_lossy,
        sanitize=args.sanitize,
        trace=args.trace,
        dtype_policy=args.dtype,
        virtual_clients=args.virtual_clients,
        faults=args.faults, task_deadline_s=args.task_deadline,
        quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
    )
    stats = run_detection_experiment(
        config, _seeds(args), seed_workers=args.seed_workers
    )
    print(
        f"{args.dataset} split={args.split} l={args.lookback} q={args.quorum} "
        f"mode={args.mode}: {stats}"
    )


def cmd_table1(args: argparse.Namespace) -> None:
    splits = _splits(args.dataset)
    base = ExperimentConfig(
        dataset=args.dataset, workers=args.workers, engine=args.engine, model_store=args.store,
        execution_mode=args.exec_mode, pipeline_depth=args.pipeline_depth,
        cohort_size=args.cohort_size,
        codec=args.codec, allow_lossy=args.allow_lossy,
        sanitize=args.sanitize,
        trace=args.trace,
        dtype_policy=args.dtype, virtual_clients=args.virtual_clients,
        faults=args.faults, task_deadline_s=args.task_deadline,
        quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
    )
    results = sweep_lookback(
        base, (10, 20, 30), splits, seeds=_seeds(args),
        seed_workers=args.seed_workers,
    )
    print(format_table1(results, (10, 20, 30), splits, args.dataset))


def cmd_fig3(args: argparse.Namespace) -> None:
    splits = _splits(args.dataset)
    quorums = tuple(range(3, 10))
    base = ExperimentConfig(
        dataset=args.dataset, lookback=20, workers=args.workers, engine=args.engine,
        model_store=args.store,
        execution_mode=args.exec_mode,
        pipeline_depth=args.pipeline_depth,
        cohort_size=args.cohort_size,
        codec=args.codec, allow_lossy=args.allow_lossy,
        sanitize=args.sanitize,
        trace=args.trace,
        dtype_policy=args.dtype, virtual_clients=args.virtual_clients,
        faults=args.faults, task_deadline_s=args.task_deadline,
        quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
    )
    results = sweep_quorum(
        base, quorums, splits, seeds=_seeds(args), seed_workers=args.seed_workers
    )
    for split in splits:
        print(format_quorum_series(results, quorums, split, args.dataset))
        print()


def cmd_table2(args: argparse.Namespace) -> None:
    results = {}
    for split in CIFAR_SPLITS:
        config = ExperimentConfig(
            dataset="cifar", client_share=split, adaptive_max_trials=8,
            workers=args.workers, engine=args.engine, model_store=args.store,
            execution_mode=args.exec_mode, pipeline_depth=args.pipeline_depth,
            cohort_size=args.cohort_size, codec=args.codec, allow_lossy=args.allow_lossy,
            sanitize=args.sanitize,
            trace=args.trace,
            dtype_policy=args.dtype, virtual_clients=args.virtual_clients,
            faults=args.faults, task_deadline_s=args.task_deadline,
            quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
        )
        results[split] = run_adaptive_experiment(
            config, _seeds(args), seed_workers=args.seed_workers
        )
    print(format_table2(results))
    votes = {s: list(r.adaptive_reject_votes) for s, r in results.items()}
    print()
    print(format_vote_distribution(votes, ExperimentConfig().num_validators + 1))


def cmd_fig2(args: argparse.Namespace) -> None:
    config = ExperimentConfig(
        dataset=args.dataset, workers=args.workers, engine=args.engine, model_store=args.store,
        execution_mode=args.exec_mode, pipeline_depth=args.pipeline_depth,
        cohort_size=args.cohort_size,
        codec=args.codec, allow_lossy=args.allow_lossy,
        sanitize=args.sanitize,
        trace=args.trace,
        dtype_policy=args.dtype, virtual_clients=args.virtual_clients,
        faults=args.faults, task_deadline_s=args.task_deadline,
        quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
    )
    # fig2 is a single paired clean/poisoned trace, not a seed sweep: a
    # fixed seed matches fig4's convention (--seeds used to leak in as the
    # literal rng seed here).
    if args.seeds is not None:
        print("note: fig2 is a fixed-seed paired trace; --seeds is ignored",
              file=sys.stderr)
    traces = run_error_trace(config, seed=0, rounds=40, injections=(25, 30, 35))
    source = int(traces["source_class"])
    print(
        format_series(
            f"Figure 2: per-class error rate w.r.t. class {source}",
            {
                "clean": traces["clean"][:, source].tolist(),
                "poisoned": traces["poisoned"][:, source].tolist(),
            },
            x=list(range(40)),
        )
    )


def cmd_fig4(args: argparse.Namespace) -> None:
    config = ExperimentConfig(
        dataset=args.dataset, workers=args.workers, engine=args.engine, model_store=args.store,
        execution_mode=args.exec_mode, pipeline_depth=args.pipeline_depth,
        cohort_size=args.cohort_size,
        codec=args.codec, allow_lossy=args.allow_lossy,
        sanitize=args.sanitize,
        trace=args.trace,
        dtype_policy=args.dtype, virtual_clients=args.virtual_clients,
        faults=args.faults, task_deadline_s=args.task_deadline,
        quorum_policy=args.quorum_policy, quorum_min=args.quorum_min,
    )
    undefended = run_early_scenario(config, seed=0, defense_start=None)
    defended = run_early_scenario(config, seed=0, defense_start=106)
    print(
        format_series(
            f"Figure 4 ({args.dataset}): main/backdoor accuracy, "
            f"injections at {undefended.injection_rounds}",
            {
                "main_nodef": undefended.main_accuracy,
                "bd_nodef": undefended.backdoor_accuracy,
                "main_def": defended.main_accuracy,
                "bd_def": defended.backdoor_accuracy,
            },
            x=list(range(len(undefended.main_accuracy))),
        )
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Forward to the static-analysis battery's own CLI.

    Lazy import: the lint battery is self-contained and the experiment
    harness should not pay for it (or its transitive imports) on every
    invocation.
    """
    from repro.analysis.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize one recorded trace or diff two (repro.obs.cli).

    Lazy import for the same reason as ``lint``: inspecting a trace file
    should not load the experiment harness's numeric stack.
    """
    from repro.obs.cli import main as trace_main

    return trace_main(args.files)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BaFFLe reproduction: regenerate the paper's evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, fn, **extra_args):
        p = sub.add_parser(name)
        p.add_argument("--dataset", choices=("cifar", "femnist"), default="cifar")
        p.add_argument("--seeds", type=int, default=None,
                       help=f"repetitions per cell (default "
                            f"{DEFAULT_SEED_COUNT}; paper uses 5; fig2/fig4 "
                            f"are fixed-seed and ignore it)")
        p.add_argument("--workers", type=int, default=0,
                       help="workers for the round engine "
                            "(0/1 = sequential; results are identical)")
        p.add_argument("--engine", choices=ENGINE_KINDS, default="auto",
                       help="multi-worker backend: process pools fan out "
                            "over worker processes, thread pools over "
                            "in-process threads with zero IPC (auto = "
                            "process; results are identical)")
        p.add_argument("--seed-workers", type=int, default=0, dest="seed_workers",
                       help="processes fanning out independent seeds "
                            "(0/1 = serial; results are identical)")
        p.add_argument("--store", choices=STORE_KINDS, default="auto",
                       help="model-store backend moving weights to round "
                            "workers (auto = shared memory when workers >= 2)")
        p.add_argument("--exec-mode", choices=EXECUTION_MODES, default="sync",
                       dest="exec_mode",
                       help="round loop: sync blocks each round on its "
                            "validator quorum; pipelined commits "
                            "optimistically and overlaps validation with "
                            "the next round (results are identical)")
        p.add_argument("--pipeline-depth", type=int,
                       default=DEFAULT_PIPELINE_DEPTH, dest="pipeline_depth",
                       help="rounds the pipelined mode may run ahead of "
                            "open quorums (>= 1; use --exec-mode sync for "
                            "synchronous semantics)")
        p.add_argument("--cohort-size", type=int, default=None,
                       dest="cohort_size",
                       help="stack up to this many of a round's honest "
                            "clients into one batched training cohort "
                            "(0/1 = one model at a time; default: pool and "
                            "thread engines stack everything eligible, "
                            "sequential runs per-model; results are "
                            "identical)")
        p.add_argument("--codec", choices=codec_names(), default="identity",
                       help="weight-compression codec on the store "
                            "transport path (lossless: identity, float16; "
                            "lossy codecs additionally need --allow-lossy)")
        p.add_argument("--allow-lossy", action="store_true", dest="allow_lossy",
                       help="admit a lossy codec (quantized, topk): trades "
                            "the bit-identical engine-equivalence guarantee "
                            "for ~5-10x transport reduction")
        p.add_argument("--dtype", choices=DTYPE_POLICIES, default="float64",
                       help="execution precision policy (repro.nn.precision): "
                            "float64 commits bit-identically to the seed "
                            "baseline; float32 halves memory/transport with "
                            "its own cross-engine bit-identity contract")
        p.add_argument("--virtual-clients", action="store_true",
                       dest="virtual_clients",
                       help="virtual client registry (repro.fl.registry): "
                            "clients materialize on selection and are "
                            "discarded after the round; round memory scales "
                            "with the cohort, not the population (results "
                            "are identical)")
        p.add_argument("--sanitize", action="store_true",
                       help="run under the runtime sanitizer "
                            "(repro.analysis.sanitize): dtype assertions "
                            "on forward/backward/aggregation plus "
                            "per-round/per-layer state hashing; equivalent "
                            "to REPRO_SANITIZE=1")
        p.add_argument("--trace", metavar="DIR",
                       default=os.environ.get("REPRO_TRACE") or None,
                       help="record round-lifecycle spans + run metrics "
                            "(repro.obs) and write a JSONL event log and a "
                            "Perfetto-loadable Chrome trace per run into "
                            "DIR; pure instrumentation, results are "
                            "identical (equivalent to REPRO_TRACE=DIR)")
        p.add_argument("--faults", metavar="SPEC",
                       default=os.environ.get("REPRO_FAULTS") or None,
                       help="deterministic fault plan (repro.fl.faults): "
                            "','/';'-separated kind@round.phase[.index]"
                            "[=param] entries, e.g. 'crash@3.train;"
                            "delay@4.validate.1=0.3;drop@5.vote.7'; "
                            "recovery replays to bit-identical results "
                            "(equivalent to REPRO_FAULTS=SPEC)")
        p.add_argument("--task-deadline", type=float, default=None,
                       dest="task_deadline",
                       help="per-task straggler deadline in seconds: a "
                            "dispatched task exceeding it is reassigned "
                            "and recomputed from its keyed RNG streams "
                            "(default: no deadline)")
        p.add_argument("--quorum-policy", choices=QUORUM_POLICIES,
                       default="strict", dest="quorum_policy",
                       help="what a round does when validator votes go "
                            "missing: strict stalls it, degrade proceeds "
                            "over the shrunken quorum once --quorum-min "
                            "votes arrived")
        p.add_argument("--quorum-min", type=int, default=1,
                       dest="quorum_min",
                       help="minimum arrived votes a degraded quorum "
                            "needs before deciding (>= 1)")
        for flag, kwargs in extra_args.items():
            p.add_argument(flag, **kwargs)
        p.set_defaults(fn=fn)
        return p

    add(
        "detect",
        cmd_detect,
        **{
            "--split": {"type": float, "default": 0.9},
            "--lookback": {"type": int, "default": 20},
            "--quorum": {"type": int, "default": 5},
            "--mode": {"choices": ("clients", "server", "both"), "default": "both"},
        },
    )
    add("table1", cmd_table1)
    add("fig3", cmd_fig3)
    add("table2", cmd_table2)
    add("fig2", cmd_fig2)
    add("fig4", cmd_fig4)

    lint = sub.add_parser(
        "lint",
        add_help=False,
        help="static determinism lint (repro.analysis); exits nonzero "
             "on findings",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(fn=cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="summarize one recorded trace JSONL, or diff two "
             "(structural first-divergence + per-phase timing deltas)",
    )
    trace.add_argument("files", nargs="+", metavar="TRACE")
    trace.set_defaults(fn=cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Dispatch ``lint`` before argparse: its flags belong to the lint
    # battery's own parser, and argparse.REMAINDER refuses option-like
    # leading tokens (e.g. ``repro lint --list-checks``).
    if argv[:1] == ["lint"]:
        from repro.analysis.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    code = args.fn(args)
    return 0 if code is None else int(code)


if __name__ == "__main__":
    sys.exit(main())
