"""Experiment environments: data layout + pretrained stable model.

Building an environment is the expensive part of a detection experiment
(pretraining the global model to stability).  Environments depend only on
the data/FL fields of the config — not on defense parameters — so sweeps
over ``l``/``q``/``mode`` reuse one cached environment per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import BackdoorTask
from repro.attacks.label_flip import LabelFlipBackdoor, pick_label_flip_classes
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.data.dataset import Dataset
from repro.data.partition import dirichlet_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.data.synthetic_femnist import SyntheticFemnist
from repro.experiments.configs import ExperimentConfig
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.parallel import make_engine
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp
from repro.nn.network import Network

_ENV_CACHE: dict[tuple, "Environment"] = {}
_MIN_SHARD = 10


@dataclass
class Environment:
    """Frozen inputs of a defended run."""

    config: ExperimentConfig
    seed: int
    shards: list[Dataset]
    server_data: Dataset
    test_data: Dataset
    stable_model: Network
    backdoor: BackdoorTask
    attacker_id: int
    num_classes: int


def build_environment(
    config: ExperimentConfig, seed: int, cache: bool = True
) -> Environment:
    """Generate data, partition it, and pretrain the global model."""
    key = config.environment_key(seed)
    if cache and key in _ENV_CACHE:
        return _ENV_CACHE[key]

    data_rng, train_rng = [
        np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(2)
    ]
    if config.dataset == "cifar":
        shards, server_data, test_data, backdoor, num_classes = _build_cifar(
            config, data_rng
        )
    else:
        shards, server_data, test_data, backdoor, num_classes = _build_femnist(
            config, data_rng
        )

    stable_model = _pretrain(config, shards, num_classes, train_rng)
    env = Environment(
        config=config,
        seed=seed,
        shards=shards,
        server_data=server_data,
        test_data=test_data,
        stable_model=stable_model,
        backdoor=backdoor,
        attacker_id=0,
        num_classes=num_classes,
    )
    if cache:
        _ENV_CACHE[key] = env
    return env


def clear_environment_cache() -> None:
    """Drop all cached environments (tests / memory control)."""
    _ENV_CACHE.clear()


# ----------------------------------------------------------------------
# Dataset-specific layouts
# ----------------------------------------------------------------------
def _build_cifar(config: ExperimentConfig, rng: np.random.Generator):
    task = SyntheticCifar()
    pool = task.sample(config.pool_size, rng)
    test_data = task.sample(config.test_size, rng)
    client_pool, server_data = pool.split(config.client_share, rng)
    parts = dirichlet_partition(
        client_pool.y, config.num_clients, config.dirichlet_alpha, rng,
        min_samples=_MIN_SHARD,
    )
    shards = [client_pool.subset(p) for p in parts]
    backdoor = SemanticBackdoor(task)
    return shards, server_data, test_data, backdoor, task.num_classes


def _build_femnist(config: ExperimentConfig, rng: np.random.Generator):
    task = SyntheticFemnist(num_writers=config.num_clients)
    pool, writers = task.sample_with_writers(config.pool_size, rng)
    test_data = task.sample(config.test_size, rng)
    # Server share first, then one client per writer on the remainder.
    perm = rng.permutation(len(pool))
    cut = int(round((1.0 - config.client_share) * len(pool)))
    server_data = pool.subset(perm[:cut])
    client_idx = perm[cut:]
    client_writers = writers[client_idx]
    shards: list[Dataset] = []
    for writer in range(config.num_clients):
        own = client_idx[client_writers == writer]
        shard = pool.subset(own)
        if len(shard) < _MIN_SHARD:
            top_up = task.sample_for_writer(writer, _MIN_SHARD - len(shard) + 1, rng)
            shard = Dataset.concat([shard, top_up]) if len(shard) else top_up
        shards.append(shard)
    attacker_shard = shards[0]
    source, target = pick_label_flip_classes(attacker_shard, rng)
    backdoor = LabelFlipBackdoor(task, source, target, attacker_writer=0)
    return shards, server_data, test_data, backdoor, task.num_classes


def _pretrain(
    config: ExperimentConfig,
    shards: list[Dataset],
    num_classes: int,
    rng: np.random.Generator,
) -> Network:
    """Clean federated training to (approximate) stability.

    Pretraining is the expensive half of an experiment, so it runs on the
    same executor/store setting as the defended phase
    (``config.workers`` / ``config.model_store``).  Engines commit
    bit-identical models, so the environment cache key stays
    executor-independent.
    """
    flat_dim = shards[0].x.shape[1]
    model = make_mlp(flat_dim, num_classes, rng, hidden=config.hidden)
    clients = [HonestClient(i, shard) for i, shard in enumerate(shards)]
    fl_config = FLConfig(
        num_clients=config.num_clients,
        clients_per_round=config.clients_per_round,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        client_lr=config.pretrain_lr,
    )
    # Pretraining is undefended — there is no quorum to overlap, so the
    # pipelined mode would degenerate anyway; it always runs "sync" on the
    # configured workers/store/codec (one factory decides the transport
    # path).  The codec matters here: a non-identity codec changes the
    # pretrained model, which is why environment_key includes it.
    with make_engine(
        config.workers,
        store=config.model_store,
        codec=config.codec,
        require_lossless=not config.allow_lossy,
        cohort_size=config.cohort_size,
        engine=config.engine,
    ) as engine:
        sim = FederatedSimulation(
            model, clients, fl_config, rng,
            executor=engine.executor, model_store=engine.store,
        )
        sim.run(config.pretrain_rounds)
    return sim.global_model
