"""Experiment environments: data layout + pretrained stable model.

Building an environment is the expensive part of a detection experiment
(pretraining the global model to stability).  Environments depend only on
the data/FL fields of the config — not on defense parameters — so sweeps
over ``l``/``q``/``mode`` reuse one cached environment per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import BackdoorTask
from repro.attacks.label_flip import LabelFlipBackdoor, pick_label_flip_classes
from repro.attacks.semantic_backdoor import SemanticBackdoor
from repro.data.dataset import Dataset
from repro.data.synthetic_cifar import SyntheticCifar
from repro.data.synthetic_femnist import SyntheticFemnist
from repro.experiments.configs import ExperimentConfig
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.parallel import make_engine
from repro.fl.registry import ClientRegistry, LazyShardFactory, PartitionSpec
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp
from repro.nn.network import Network
from repro.nn.precision import dtype_policy

_ENV_CACHE: dict[tuple, "Environment"] = {}
_MIN_SHARD = 10


@dataclass
class Environment:
    """Frozen inputs of a defended run."""

    config: ExperimentConfig
    seed: int
    shards: list[Dataset]
    server_data: Dataset
    test_data: Dataset
    stable_model: Network
    backdoor: BackdoorTask
    attacker_id: int
    num_classes: int
    #: The undivided client sample pool and its replayable partition — the
    #: inputs of a virtual :class:`~repro.fl.registry.ClientRegistry`.
    #: ``shards`` above is the eager materialization of exactly this split.
    client_pool: Dataset | None = None
    partition_spec: PartitionSpec | None = None


def build_environment(
    config: ExperimentConfig, seed: int, cache: bool = True
) -> Environment:
    """Generate data, partition it, and pretrain the global model."""
    key = config.environment_key(seed)
    if cache and key in _ENV_CACHE:
        return _ENV_CACHE[key]

    # The policy scope covers data generation *and* pretraining, so the
    # stable model's parameters are policy-dtype and the cache (keyed by
    # dtype_policy) never serves an environment built under another policy.
    with dtype_policy(config.dtype_policy):
        data_rng, train_rng = [
            np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(2)
        ]
        if config.dataset == "cifar":
            (shards, server_data, test_data, backdoor, num_classes,
             client_pool, spec) = _build_cifar(config, data_rng)
        else:
            (shards, server_data, test_data, backdoor, num_classes,
             client_pool, spec) = _build_femnist(config, data_rng)

        stable_model = _pretrain(
            config, shards, num_classes, train_rng, pool=client_pool, spec=spec
        )
    env = Environment(
        config=config,
        seed=seed,
        shards=shards,
        server_data=server_data,
        test_data=test_data,
        stable_model=stable_model,
        backdoor=backdoor,
        attacker_id=0,
        num_classes=num_classes,
        client_pool=client_pool,
        partition_spec=spec,
    )
    if cache:
        _ENV_CACHE[key] = env
    return env


def clear_environment_cache() -> None:
    """Drop all cached environments (tests / memory control)."""
    _ENV_CACHE.clear()


# ----------------------------------------------------------------------
# Dataset-specific layouts
# ----------------------------------------------------------------------
def _build_cifar(config: ExperimentConfig, rng: np.random.Generator):
    task = SyntheticCifar()
    pool = task.sample(config.pool_size, rng)
    test_data = task.sample(config.test_size, rng)
    client_pool, server_data = pool.split(config.client_share, rng)
    # The spec records the generator state, runs the real Dirichlet draw
    # (advancing ``rng`` exactly as the old eager call did), and replays
    # it here for the eager shards — so eager and lazy splits are the
    # same draw by construction.
    spec = PartitionSpec.dirichlet(
        client_pool.y, config.num_clients, config.dirichlet_alpha, rng,
        min_samples=_MIN_SHARD,
    )
    shards = [client_pool.subset(p) for p in spec.all_parts()]
    backdoor = SemanticBackdoor(task)
    return (shards, server_data, test_data, backdoor, task.num_classes,
            client_pool, spec)


def _build_femnist(config: ExperimentConfig, rng: np.random.Generator):
    task = SyntheticFemnist(num_writers=config.num_clients)
    pool, writers = task.sample_with_writers(config.pool_size, rng)
    test_data = task.sample(config.test_size, rng)
    # Server share first, then one client per writer on the remainder.
    perm = rng.permutation(len(pool))
    cut = int(round((1.0 - config.client_share) * len(pool)))
    server_data = pool.subset(perm[:cut])
    client_idx = perm[cut:]
    client_writers = writers[client_idx]
    shards: list[Dataset] = []
    for writer in range(config.num_clients):
        own = client_idx[client_writers == writer]
        shard = pool.subset(own)
        if len(shard) < _MIN_SHARD:
            top_up = task.sample_for_writer(writer, _MIN_SHARD - len(shard) + 1, rng)
            shard = Dataset.concat([shard, top_up]) if len(shard) else top_up
        shards.append(shard)
    attacker_shard = shards[0]
    source, target = pick_label_flip_classes(attacker_shard, rng)
    backdoor = LabelFlipBackdoor(task, source, target, attacker_writer=0)
    # Writer shards are topped up with writer-specific draws a spec cannot
    # replay, so the lazy form re-pools the *final* shards: one
    # concatenated pool with consecutive-range parts (bit-identical data,
    # explicit — not replayed — indices).
    combined = Dataset.concat(shards)
    bounds = np.cumsum([0] + [len(s) for s in shards])
    parts = [
        np.arange(bounds[i], bounds[i + 1]) for i in range(len(shards))
    ]
    spec = PartitionSpec.from_parts(parts)
    return (shards, server_data, test_data, backdoor, task.num_classes,
            combined, spec)


def _pretrain(
    config: ExperimentConfig,
    shards: list[Dataset],
    num_classes: int,
    rng: np.random.Generator,
    pool: Dataset | None = None,
    spec: PartitionSpec | None = None,
) -> Network:
    """Clean federated training to (approximate) stability.

    Pretraining is the expensive half of an experiment, so it runs on the
    same executor/store setting as the defended phase
    (``config.workers`` / ``config.model_store``).  Engines commit
    bit-identical models, so the environment cache key stays
    executor-independent.
    """
    flat_dim = shards[0].x.shape[1]
    model = make_mlp(flat_dim, num_classes, rng, hidden=config.hidden)
    if config.virtual_clients and pool is not None and spec is not None:
        clients = ClientRegistry(LazyShardFactory(pool, spec))
    else:
        clients = [HonestClient(i, shard) for i, shard in enumerate(shards)]
    fl_config = FLConfig(
        num_clients=config.num_clients,
        clients_per_round=config.clients_per_round,
        local_epochs=config.local_epochs,
        batch_size=config.batch_size,
        client_lr=config.pretrain_lr,
    )
    # Pretraining is undefended — there is no quorum to overlap, so the
    # pipelined mode would degenerate anyway; it always runs "sync" on the
    # configured workers/store/codec (one factory decides the transport
    # path).  The codec matters here: a non-identity codec changes the
    # pretrained model, which is why environment_key includes it.
    with make_engine(
        config.workers,
        store=config.model_store,
        codec=config.codec,
        require_lossless=not config.allow_lossy,
        cohort_size=config.cohort_size,
        engine=config.engine,
    ) as engine:
        sim = FederatedSimulation(
            model, clients, fl_config, rng,
            executor=engine.executor, model_store=engine.store,
        )
        sim.run(config.pretrain_rounds)
    return sim.global_model
