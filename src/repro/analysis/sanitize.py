"""Runtime sanitizer: dtype assertions and per-round/per-layer state hashing.

The static battery (:mod:`repro.analysis.lint`) catches invariant
violations it can see in the source; this module catches the ones that
only manifest at runtime.  When sanitizing is on, the hot numeric paths
grow two kinds of instrumentation:

- **dtype assertions** — :class:`~repro.nn.network.Network` forward and
  backward passes, and :class:`~repro.fl.simulation.FederatedSimulation`
  aggregation, assert that every array they produce carries the *policy*
  dtype (``REPRO_DTYPE_POLICY``: ``float64`` unless a run opts into
  ``float32``).  A silent cast away from the policy (e.g. a ``float32``
  constant leaking into a float64 layer, or a float64 temporary leaking
  into a float32 run) breaks the per-policy bit-identity contract long
  before any test notices drifting accuracy; the sanitizer turns it into
  an immediate :class:`SanitizeError` at the offending layer.
- **state hashing** — every aggregated candidate is hashed per layer
  into a :class:`HashTrace` (``(round, layer, digest)`` entries).  Two
  engines that should commit bit-identical models must produce identical
  traces; :mod:`repro.analysis.divergence` diffs two traces and reports
  the first ``(round, layer)`` where they part ways.

Sanitizing is enabled by the ``REPRO_SANITIZE=1`` environment variable
(environment-based so forked pool workers inherit it) or per-experiment
via ``ExperimentConfig(sanitize=True)``, which wraps the run in
:func:`scope`.  This module imports nothing from the rest of ``repro``
so the hot paths can import it lazily without cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Environment variable that switches the sanitizer on.
ENV_FLAG = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class SanitizeError(AssertionError):
    """A runtime invariant violation caught by the sanitizer."""


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


@contextmanager
def scope(active: bool = True):
    """Enable sanitizing for the duration of a ``with`` block.

    Implemented by setting :data:`ENV_FLAG` in ``os.environ`` rather
    than a module global, so process-pool workers forked inside the
    block inherit the setting.  The previous value is restored on exit.
    """
    if not active:
        yield
        return
    previous = os.environ.get(ENV_FLAG)
    os.environ[ENV_FLAG] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = previous


# ----------------------------------------------------------------------
# Assertions
# ----------------------------------------------------------------------
def _policy_dtype() -> np.dtype:
    """The active precision-policy dtype, read from the environment.

    Duplicates the tiny lookup in :mod:`repro.nn.precision` rather than
    importing it: this module's contract is that it imports nothing from
    the rest of ``repro`` (the hot paths import it lazily, cycle-free).
    """
    name = os.environ.get("REPRO_DTYPE_POLICY", "").strip().lower()
    return np.dtype(np.float32) if name == "float32" else np.dtype(np.float64)


def assert_dtype(
    array: np.ndarray, where: str, dtype: np.dtype | type | None = None
) -> None:
    """Raise :class:`SanitizeError` unless ``array`` has exactly ``dtype``.

    When ``dtype`` is omitted, the assertion targets the active policy
    dtype — float64 by default, float32 under the opt-in policy.
    """
    if dtype is None:
        dtype = _policy_dtype()
    if not isinstance(array, np.ndarray):
        raise SanitizeError(f"{where}: expected ndarray, got {type(array).__name__}")
    if array.dtype != np.dtype(dtype):
        raise SanitizeError(
            f"{where}: expected dtype {np.dtype(dtype)}, got {array.dtype} "
            "(a silent downcast here breaks the bit-identity contract)"
        )


def assert_finite(array: np.ndarray, where: str) -> None:
    """Raise :class:`SanitizeError` if ``array`` contains NaN or inf."""
    if not np.isfinite(array).all():
        raise SanitizeError(f"{where}: array contains non-finite values")


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------
def hash_array(array: np.ndarray) -> str:
    """Content digest of an array, sensitive to dtype, shape, and bytes."""
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(contiguous.dtype).encode())
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceEntry:
    """One hashed observation: a named layer's state at a given round."""

    round_idx: int
    layer: str
    digest: str

    def to_dict(self) -> dict:
        return {"round": self.round_idx, "layer": self.layer, "digest": self.digest}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEntry":
        return cls(
            round_idx=int(data["round"]),
            layer=str(data["layer"]),
            digest=str(data["digest"]),
        )


@dataclass
class HashTrace:
    """Ordered per-round, per-layer digests of a run's committed state.

    Entries are appended in execution order; two runs of the same
    configuration must produce element-wise identical traces.
    """

    entries: list[TraceEntry] = field(default_factory=list)

    def record(self, round_idx: int, layer: str, digest: str) -> None:
        self.entries.append(TraceEntry(round_idx, layer, digest))

    def record_model(self, round_idx: int, model) -> None:
        """Hash every parameter of a ``Network``-like model into the trace.

        Layer labels are ``"{index}:{param.name}"`` — the index
        disambiguates identically named parameters on different layers.
        """
        for index, param in enumerate(model.parameters()):
            self.record(round_idx, f"{index}:{param.name}", hash_array(param.value))

    def __len__(self) -> int:
        return len(self.entries)

    def to_dicts(self) -> list[dict]:
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_dicts(cls, rows: list[dict]) -> "HashTrace":
        return cls(entries=[TraceEntry.from_dict(row) for row in rows])

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dicts(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "HashTrace":
        return cls.from_dicts(json.loads(Path(path).read_text()))
