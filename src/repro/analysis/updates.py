"""Update-norm statistics across clients.

Model replacement boosts an update by ``N / lambda``; its L2 norm sticks
out by roughly that factor.  These statistics quantify the gap — what a
norm-clipping defense calibrates against, and what a stealthy attacker
must stay inside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.client import Client, LocalTrainingConfig
from repro.nn.network import Network


@dataclass(frozen=True)
class UpdateNormStats:
    """Distribution summary of per-client update norms."""

    mean: float
    std: float
    minimum: float
    maximum: float
    percentile_95: float

    def outlier_factor(self, norm: float) -> float:
        """How many honest 95th-percentiles a given update norm spans."""
        if self.percentile_95 <= 0:
            return float("inf") if norm > 0 else 0.0
        return norm / self.percentile_95


def update_norm_stats(
    clients: list[Client],
    global_model: Network,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
    round_idx: int = 0,
) -> UpdateNormStats:
    """Collect one update from every client and summarise the norms."""
    if not clients:
        raise ValueError("need at least one client")
    norms = []
    for client in clients:
        update = client.produce_update(global_model, config, round_idx, rng)
        norms.append(float(np.linalg.norm(update)))
    norms_arr = np.array(norms)
    return UpdateNormStats(
        mean=float(norms_arr.mean()),
        std=float(norms_arr.std()),
        minimum=float(norms_arr.min()),
        maximum=float(norms_arr.max()),
        percentile_95=float(np.percentile(norms_arr, 95)),
    )


def honest_norm_for(
    dataset: Dataset,
    global_model: Network,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> float:
    """Norm of one honest local-training update on ``dataset``."""
    from repro.fl.client import local_train

    local = global_model.clone()
    local_train(local, dataset, config, rng)
    return float(np.linalg.norm(local.get_flat() - global_model.get_flat()))
