"""Detection-behaviour summaries over round records."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.fl.simulation import RoundRecord


def detection_latency(
    records: Sequence[RoundRecord], injection_rounds: Iterable[int]
) -> dict[int, int | None]:
    """Rounds until each injection was first rejected.

    0 means the injection round itself was rejected (the normal BaFFLe
    outcome); ``None`` means no rejection happened at or after the
    injection (a clean miss).  Positive values can occur for defenses that
    only notice poisoning later.
    """
    by_round = {r.round_idx: r for r in records}
    latencies: dict[int, int | None] = {}
    last_round = max(by_round) if by_round else -1
    for injection in sorted(set(injection_rounds)):
        latency = None
        for r in range(injection, last_round + 1):
            record = by_round.get(r)
            if record is not None and not record.accepted:
                latency = r - injection
                break
        latencies[injection] = latency
    return latencies


def rejection_bursts(records: Sequence[RoundRecord]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive rejected rounds as ``(start, length)``.

    Long bursts on clean rounds are the signature of the threshold
    death-spiral discussed in EXPERIMENTS.md (the history freezes on
    rejection, so a borderline threshold keeps rejecting).
    """
    bursts: list[tuple[int, int]] = []
    start: int | None = None
    length = 0
    for record in sorted(records, key=lambda r: r.round_idx):
        if not record.accepted:
            if start is None:
                start = record.round_idx
                length = 1
            else:
                length += 1
        elif start is not None:
            bursts.append((start, length))
            start = None
    if start is not None:
        bursts.append((start, length))
    return bursts


def vote_summary(records: Sequence[RoundRecord]) -> dict[str, float]:
    """Aggregate vote statistics over rounds that collected votes."""
    voted = [r for r in records if r.decision.num_validators > 0]
    if not voted:
        return {"rounds": 0.0, "mean_reject_share": 0.0, "max_reject_share": 0.0}
    shares = np.array(
        [r.decision.reject_votes / r.decision.num_validators for r in voted]
    )
    return {
        "rounds": float(len(voted)),
        "mean_reject_share": float(shares.mean()),
        "max_reject_share": float(shares.max()),
    }
