"""Diff two sanitizer hash traces to the first divergent ``(round, layer)``.

When two engines that should commit bit-identical models disagree, the
symptom (different final accuracy, a failing equivalence test) is far
from the cause.  Running both engines under ``REPRO_SANITIZE=1`` yields
a :class:`~repro.analysis.sanitize.HashTrace` per run; this module
compares the two traces element-wise and pinpoints the first round and
layer whose digests differ — the earliest observable point where the
runs parted ways.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sanitize import HashTrace


@dataclass(frozen=True)
class Divergence:
    """The first point at which two hash traces disagree."""

    round_idx: int
    layer: str
    digest_a: str
    digest_b: str
    #: "digest" when the same (round, layer) hashed differently;
    #: "structure" when the traces themselves have different shapes
    #: (different entry order or one trace is a strict prefix).
    kind: str = "digest"

    def __str__(self) -> str:
        if self.kind == "structure":
            return (
                f"traces diverge structurally at round {self.round_idx}: "
                f"{self.digest_a!r} vs {self.digest_b!r}"
            )
        return (
            f"first divergence at round {self.round_idx}, layer {self.layer!r}: "
            f"{self.digest_a[:12]}… vs {self.digest_b[:12]}…"
        )


def first_divergence(trace_a: HashTrace, trace_b: HashTrace) -> Divergence | None:
    """The earliest entry where two traces differ, or None if identical.

    A digest mismatch at the same ``(round, layer)`` slot reports that
    slot.  Structural mismatches — different layer labels at the same
    position, or traces of different lengths — are reported with
    ``kind="structure"``, since they mean the runs did not even execute
    the same sequence of observations.
    """
    for entry_a, entry_b in zip(trace_a.entries, trace_b.entries):
        if (entry_a.round_idx, entry_a.layer) != (entry_b.round_idx, entry_b.layer):
            return Divergence(
                round_idx=min(entry_a.round_idx, entry_b.round_idx),
                layer=entry_a.layer,
                digest_a=f"{entry_a.round_idx}:{entry_a.layer}",
                digest_b=f"{entry_b.round_idx}:{entry_b.layer}",
                kind="structure",
            )
        if entry_a.digest != entry_b.digest:
            return Divergence(
                round_idx=entry_a.round_idx,
                layer=entry_a.layer,
                digest_a=entry_a.digest,
                digest_b=entry_b.digest,
            )
    if len(trace_a) != len(trace_b):
        longer = trace_a if len(trace_a) > len(trace_b) else trace_b
        tail = longer.entries[min(len(trace_a), len(trace_b))]
        return Divergence(
            round_idx=tail.round_idx,
            layer=tail.layer,
            digest_a=f"len={len(trace_a)}",
            digest_b=f"len={len(trace_b)}",
            kind="structure",
        )
    return None


def diff_traces(trace_a: HashTrace, trace_b: HashTrace) -> list[Divergence]:
    """All positionally comparable digest mismatches between two traces."""
    mismatches: list[Divergence] = []
    for entry_a, entry_b in zip(trace_a.entries, trace_b.entries):
        if (
            entry_a.round_idx == entry_b.round_idx
            and entry_a.layer == entry_b.layer
            and entry_a.digest != entry_b.digest
        ):
            mismatches.append(
                Divergence(
                    round_idx=entry_a.round_idx,
                    layer=entry_a.layer,
                    digest_a=entry_a.digest,
                    digest_b=entry_b.digest,
                )
            )
    return mismatches
