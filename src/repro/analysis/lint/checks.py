"""The determinism-contract check battery.

Each check is a small AST pass over one file.  They are deliberately
repo-specific: the point is not generic style, it is the handful of
invariants the equivalence matrix (sequential == pool == pipelined, in
bits) rests on — stated once in prose in ``repro/fl/rng.py`` and
``repro/fl/parallel.py``, enforced here at parse time.

============  ========================================================
check id      guards against
============  ========================================================
global-rng    randomness outside per-``(round, entity)``
              :class:`~repro.fl.rng.RngStreams` keys: module-level
              ``np.random.*`` draws, unseeded ``default_rng()``,
              stdlib ``random``, time-derived seeds (PR 1's contract)
dtype-        ``np.zeros/empty/ones/full/arange`` without ``dtype=``
discipline    in the nn/fl/data hot paths — the PR 5 leak class
              (``_col2im``/Dropout silently widening or narrowing);
              policy-routed allocations (``dtype=active_dtype()``)
              are the sanctioned form under the precision policy
pickle-       lambdas / nested functions submitted to worker pools;
safety        pool payloads must be module-level (PR 1/2 transport)
parallel-     ``parallel_safe=True``/``cohort_safe=True`` classes
safety        writing module globals in hot methods — state a worker
              mutates never reaches the parent (PR 1's opt-in rule)
thread-       ``parallel_safe=True`` classes mutating class-level
safety        containers in hot methods without a lock: under the
              thread engine a class attribute is one object shared by
              every instance and pool thread (PR 7's opt-in rule)
shm-hygiene   ``SharedMemory(create=True)`` without an ``unlink`` on
              a close/eviction/finally path in the same class (the
              CI ``/dev/shm`` leak gate, moved to parse time; PR 2)
unused-       module hygiene, mirroring the ruff rules CI pins
import        (F401) so the tree stays clean even where ruff is not
              installed (this container, offline dev boxes)
mutable-      shared-default-object aliasing across calls (B006);
default       a mutated default is cross-round hidden state
observ-       tracing must be pure observation (PR 9): ``repro/obs``
ability-      draws no randomness and reads no wall clock (monotonic
safety        only — wall-clock in a span perturbs nothing but makes
              traces non-mergeable), and no instrumentation site may
              capture model weight arrays into span/event attributes
              (attrs ride pool result payloads; an array there is a
              silent transport-volume regression)
swallowed-    pass-only bare/``except Exception`` handlers and
exception     unobserved ``future.exception()`` statements in
              ``repro/fl`` and ``repro/core`` — the resilience layer
              (PR 10) counts every absorbed failure; an exception
              eaten silently resurfaces as an unexplainable
              divergence in the equivalence matrix
============  ========================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import ClassVar

from repro.analysis.lint.findings import Finding

#: Constructors that legitimately appear under ``numpy.random``: everything
#: else there is a module-level stream (order-dependent, process-global).
_NP_RANDOM_ALLOWED = {"default_rng", "SeedSequence", "Generator", "BitGenerator",
                      "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}

#: Wall-clock / OS entropy sources that make a seed non-reproducible.
_NONDETERMINISTIC_SEED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.randbits",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: ``np.*`` array constructors whose dtype defaults are context-dependent
#: (``arange`` infers from arguments, the rest default to float64 — until
#: an upstream default or a caller-supplied operand changes the picture).
_DTYPE_ALLOCATORS = {"zeros", "empty", "ones", "full", "arange"}

#: Methods that ship their function argument across a process boundary.
_POOL_SUBMIT_METHODS = {"submit", "map", "apply_async"}

#: Method names that count as an eviction/close path for ``shm-hygiene``.
_CLEANUP_METHOD_RE = re.compile(
    r"close|evict|destroy|release|cleanup|unlink|reap|delete|__del__|__exit__"
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass
class FileContext:
    """Everything one check invocation sees about one file."""

    path: str  # posix-style path, as reported in findings
    source: str
    tree: ast.Module
    #: Import-alias map: local binding -> fully qualified dotted prefix.
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    ctx.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    ctx.aliases[bound] = f"{node.module}.{alias.name}"
        return ctx

    def qualname(self, node: ast.AST) -> str | None:
        """Alias-resolved dotted name of a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0], parts[0])
        return ".".join([root, *parts[1:]])

    def finding(self, check_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            check_id=check_id,
            message=message,
        )


class Check:
    """One static check: an id, a scope, and a pass over a parsed file."""

    check_id: ClassVar[str]
    description: ClassVar[str]
    #: Restrict the check to files whose posix path contains one of these
    #: substrings (``None`` = every file).
    path_scope: ClassVar[tuple[str, ...] | None] = None

    def applies_to(self, path: str) -> bool:
        if self.path_scope is None:
            return True
        return any(fragment in path for fragment in self.path_scope)

    def run(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Check] = {}


def _register(cls: type[Check]) -> type[Check]:
    instance = cls()
    if cls.check_id in _REGISTRY:
        raise ValueError(f"duplicate check id {cls.check_id!r}")
    _REGISTRY[cls.check_id] = instance
    return cls


def all_checks() -> list[Check]:
    """Every registered check, in registration (documentation) order."""
    return list(_REGISTRY.values())


def get_check(check_id: str) -> Check:
    try:
        return _REGISTRY[check_id]
    except KeyError:
        raise KeyError(
            f"unknown check {check_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# global-rng
# ----------------------------------------------------------------------
@_register
class GlobalRngCheck(Check):
    check_id = "global-rng"
    description = (
        "randomness must flow from RngStreams (round, entity) keys: no "
        "module-level np.random draws, unseeded default_rng(), stdlib "
        "random, or time-derived seeds"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None:
                continue
            if qual.startswith("numpy.random."):
                tail = qual.removeprefix("numpy.random.").split(".")[0]
                if tail not in _NP_RANDOM_ALLOWED:
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"module-level RNG call {qual}(): draws from the "
                        "process-global stream are order-dependent; derive a "
                        "generator from RngStreams (repro/fl/rng.py) instead",
                    ))
                elif tail == "default_rng" and self._unseeded(node):
                    findings.append(ctx.finding(
                        self.check_id, node,
                        "unseeded default_rng(): seeds from OS entropy, so "
                        "runs are not reproducible; pass a seed or a "
                        "SeedSequence spawned from RngStreams",
                    ))
            elif qual == "random" or qual.startswith("random."):
                findings.append(ctx.finding(
                    self.check_id, node,
                    f"stdlib random call {qual}(): the random module is a "
                    "process-global, unkeyed stream; use a numpy Generator "
                    "derived from RngStreams",
                ))
            if qual in {"numpy.random.default_rng", "numpy.random.SeedSequence"} or (
                qual.endswith(".from_seed")
            ):
                findings.extend(self._time_seeds(ctx, node))
        return findings

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
            return node.args[0].value is None
        return False

    def _time_seeds(self, ctx: FileContext, call: ast.Call) -> list[Finding]:
        findings = []
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    qual = ctx.qualname(sub.func)
                    if qual in _NONDETERMINISTIC_SEED_CALLS:
                        findings.append(ctx.finding(
                            self.check_id, sub,
                            f"time/OS-entropy-derived seed ({qual}()): the "
                            "seed must be a pure function of the experiment "
                            "config so reruns reproduce bit-identically",
                        ))
        return findings


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------
@_register
class DtypeDisciplineCheck(Check):
    check_id = "dtype-discipline"
    description = (
        "np.zeros/empty/ones/full/arange in nn/fl/data hot paths must pass "
        "an explicit dtype= — a bare allocation silently pins the numpy "
        "default instead of the execution precision policy; routing through "
        "dtype=active_dtype() (repro.nn.precision) or another explicit "
        "dtype resolves it"
    )
    path_scope = ("repro/nn", "repro/fl", "repro/data")

    def run(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None or not qual.startswith("numpy."):
                continue
            tail = qual.removeprefix("numpy.")
            if tail not in _DTYPE_ALLOCATORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            findings.append(ctx.finding(
                self.check_id, node,
                f"np.{tail}() without explicit dtype=: allocation dtype must "
                "be stated where weights/activations are built — route "
                "policy-dtype arrays through dtype=active_dtype() "
                "(repro.nn.precision); a bare allocation silently widens or "
                "narrows and breaks bit-identity under a float32 policy",
            ))
        return findings


# ----------------------------------------------------------------------
# pickle-safety
# ----------------------------------------------------------------------
@_register
class PickleSafetyCheck(Check):
    check_id = "pickle-safety"
    description = (
        "functions shipped to pool workers (submit/map/apply_async, pool "
        "initializers) must be module-level: lambdas and closures do not "
        "pickle"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        self._visit(ctx, ctx.tree.body, nested_defs=[], findings=findings)
        return findings

    def _visit(self, ctx, body, nested_defs: list[set[str]], findings) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if nested_defs:
                    # ``node`` is itself a local def inside a function: its
                    # name is a closure candidate for the enclosing scopes.
                    nested_defs[-1].add(node.name)
                self._visit(ctx, node.body, nested_defs + [set()], findings)
            elif isinstance(node, ast.ClassDef):
                self._visit(ctx, node.body, nested_defs, findings)
            else:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        self._inspect_call(ctx, sub, nested_defs, findings)
                    elif isinstance(sub, ast.Lambda):
                        # Lambdas nested in non-call positions are handled
                        # where they are submitted; nothing to do here.
                        pass

    def _inspect_call(self, ctx, call: ast.Call, nested_defs, findings) -> None:
        local_names = set().union(*nested_defs) if nested_defs else set()
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _POOL_SUBMIT_METHODS
            and call.args
        ):
            task = call.args[0]
            if isinstance(task, ast.Lambda):
                findings.append(ctx.finding(
                    self.check_id, task,
                    f"lambda passed to .{call.func.attr}(): pool task "
                    "payloads must be picklable module-level functions",
                ))
            elif isinstance(task, ast.Name) and task.id in local_names:
                findings.append(ctx.finding(
                    self.check_id, task,
                    f"nested function {task.id!r} passed to "
                    f".{call.func.attr}(): closures do not pickle; hoist it "
                    "to module level",
                ))
        for kw in call.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Lambda):
                findings.append(ctx.finding(
                    self.check_id, kw.value,
                    "lambda as pool initializer: worker initializers must "
                    "be picklable module-level functions",
                ))


# ----------------------------------------------------------------------
# parallel-safety
# ----------------------------------------------------------------------
@_register
class ParallelSafetyCheck(Check):
    check_id = "parallel-safety"
    description = (
        "classes declaring parallel_safe=True / cohort_safe=True must not "
        "write module-level state in their methods: worker-side mutation "
        "never reaches the parent process"
    )

    _FLAGS = {"parallel_safe", "cohort_safe"}

    def run(self, ctx: FileContext) -> list[Finding]:
        module_names = self._module_level_names(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._declares_safe(node):
                findings.extend(
                    self._check_class(ctx, node, module_names)
                )
        return findings

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                names.update(a.asname or a.name.split(".")[0] for a in node.names)
            elif isinstance(node, ast.ImportFrom):
                names.update(
                    a.asname or a.name for a in node.names if a.name != "*"
                )
        return names

    def _declares_safe(self, cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            targets: list[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self._FLAGS
                    and isinstance(value, ast.Constant)
                    and value.value is True
                ):
                    return True
        return False

    def _check_class(self, ctx, cls: ast.ClassDef, module_names) -> list[Finding]:
        findings = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens parent-side, before pickling
            for node in ast.walk(method):
                if isinstance(node, ast.Global):
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"{cls.name}.{method.name} declares "
                        f"'global {', '.join(node.names)}': a parallel-safe "
                        "entity runs in worker processes, where module "
                        "globals are per-process and silently diverge",
                    ))
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        root = self._attribute_root(target)
                        if root is not None and root in module_names:
                            findings.append(ctx.finding(
                                self.check_id, node,
                                f"{cls.name}.{method.name} writes "
                                f"module-level object {root!r}: worker-side "
                                "writes never reach the parent; keep hot-"
                                "method state on self",
                            ))
        return findings

    @staticmethod
    def _attribute_root(target: ast.expr) -> str | None:
        """Root Name of an attribute/subscript write target (not plain Name)."""
        node = target
        seen_container = False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            seen_container = True
            node = node.value
        if seen_container and isinstance(node, ast.Name):
            return node.id
        return None


# ----------------------------------------------------------------------
# thread-safety
# ----------------------------------------------------------------------
@_register
class ThreadSafetyCheck(Check):
    check_id = "thread-safety"
    description = (
        "parallel_safe classes must not mutate class-level shared "
        "containers in hot methods without holding a lock: under the "
        "thread engine those methods run concurrently on pool threads, "
        "and a class attribute is one object shared by every instance"
    )

    #: Only ``parallel_safe`` matters here: it is the flag the thread
    #: engine consults before moving an entity's hot methods onto pool
    #: threads.  (``cohort_safe`` batching never runs methods
    #: concurrently, so class-level state is fine there.)
    _FLAGS = {"parallel_safe"}

    #: In-place mutators on list/dict/set: calling one on a class-level
    #: container is a cross-thread write.
    _MUTATORS = {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear",
    }

    #: Class attributes initialised to one of these are shared mutable
    #: containers (literals or the bare factory calls).
    _CONTAINER_FACTORIES = {"list", "dict", "set"}

    _LOCK_ATTR_RE = re.compile(r"lock|mutex|guard", re.IGNORECASE)

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._declares_safe(node):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _declares_safe(self, cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            targets: list[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self._FLAGS
                    and isinstance(value, ast.Constant)
                    and value.value is True
                ):
                    return True
        return False

    def _check_class(self, ctx, cls: ast.ClassDef) -> list[Finding]:
        class_attrs = self._class_level_names(cls)
        shadowed = self._init_shadowed_names(cls)
        # Containers every instance aliases: class-level mutables the
        # constructor does not replace with a per-instance object.
        shared = {
            name for name, mutable in class_attrs.items()
            if mutable and name not in shadowed
        }
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # runs once per instance, before any fan-out
            if self._holds_lock(method):
                continue
            self_name = self._self_name(method)
            for node in ast.walk(method):
                hit = self._mutation(ctx, node, cls.name, self_name,
                                     shared, set(class_attrs))
                if hit is not None:
                    attr, how = hit
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"{cls.name}.{method.name} {how} class-level "
                        f"attribute {attr!r} without a lock: under the "
                        "thread engine this object is shared by every "
                        "instance and pool thread; guard it with "
                        "'with self.<lock>:' or move it to per-instance "
                        "state in __init__",
                    ))
        return findings

    def _class_level_names(self, cls: ast.ClassDef) -> dict[str, bool]:
        """Class-body attribute names -> "bound to a mutable container"."""
        attrs: dict[str, bool] = {}
        for stmt in cls.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    attrs[target.id] = self._is_container(value)
        return attrs

    def _is_container(self, value: ast.expr | None) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in self._CONTAINER_FACTORIES
        )

    @staticmethod
    def _init_shadowed_names(cls: ast.ClassDef) -> set[str]:
        """Attributes ``__init__`` rebinds on ``self`` (per-instance state)."""
        shadowed: set[str] = set()
        for method in cls.body:
            if not (
                isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                and method.name == "__init__"
            ):
                continue
            self_name = ThreadSafetyCheck._self_name(method)
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        shadowed.add(target.attr)
        return shadowed

    @staticmethod
    def _self_name(method: ast.AST) -> str | None:
        args = method.args.args
        return args[0].arg if args else None

    def _holds_lock(self, method: ast.AST) -> bool:
        """A ``with`` whose context expression names a lock-ish attribute."""
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    name = None
                    if isinstance(sub, ast.Attribute):
                        name = sub.attr
                    elif isinstance(sub, ast.Name):
                        name = sub.id
                    if name is not None and self._LOCK_ATTR_RE.search(name):
                        return True
        return False

    def _mutation(self, ctx, node, cls_name, self_name, shared, class_attrs):
        """(attr, verb) if ``node`` mutates class-level state, else None."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                # ClassName.attr = ... / type(self).attr += ... rebinds the
                # class attribute itself — shared regardless of mutability.
                attr = self._class_attr(target, cls_name, self_name)
                if attr is not None and attr in class_attrs:
                    return attr, "rebinds"
                # self.attr[k] = ... mutates the aliased class container.
                root = target
                seen_sub = False
                while isinstance(root, ast.Subscript):
                    seen_sub = True
                    root = root.value
                if seen_sub:
                    attr = self._owned_attr(root, cls_name, self_name)
                    if attr in shared:
                        return attr, "writes into"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._MUTATORS:
                attr = self._owned_attr(node.func.value, cls_name, self_name)
                if attr in shared:
                    return attr, f"calls .{node.func.attr}() on"
        return None

    def _owned_attr(self, node, cls_name, self_name) -> str | None:
        """Attr name if ``node`` is self.X, ClassName.X or type(self).X."""
        attr = self._class_attr(node, cls_name, self_name)
        if attr is not None:
            return attr
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            return node.attr
        return None

    @staticmethod
    def _class_attr(node, cls_name, self_name) -> str | None:
        """Attr name if ``node`` is ClassName.X or type(self).X."""
        if not isinstance(node, ast.Attribute):
            return None
        owner = node.value
        if isinstance(owner, ast.Name) and owner.id == cls_name:
            return node.attr
        if (
            isinstance(owner, ast.Call)
            and isinstance(owner.func, ast.Name)
            and owner.func.id == "type"
            and len(owner.args) == 1
            and isinstance(owner.args[0], ast.Name)
            and owner.args[0].id == self_name
        ):
            return node.attr
        return None


# ----------------------------------------------------------------------
# shm-hygiene
# ----------------------------------------------------------------------
@_register
class ShmHygieneCheck(Check):
    check_id = "shm-hygiene"
    description = (
        "every SharedMemory(create=True) needs a paired .unlink() on a "
        "close/eviction/finally path in the same class, or /dev/shm leaks "
        "survive the process"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        self._scan(ctx, ctx.tree.body, owner=None, findings=findings)
        return findings

    def _scan(self, ctx, body, owner, findings) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._scan(ctx, node.body, owner=node, findings=findings)
            else:
                for sub in ast.walk(node):
                    if self._creates_segment(ctx, sub):
                        scope = owner if owner is not None else ctx.tree
                        if not self._has_cleanup_unlink(scope):
                            where = (
                                f"class {owner.name}" if owner is not None
                                else "this module"
                            )
                            findings.append(ctx.finding(
                                self.check_id, sub,
                                "SharedMemory(create=True) without a "
                                f".unlink() on a cleanup path in {where}: "
                                "the segment outlives the process in "
                                "/dev/shm",
                            ))

    @staticmethod
    def _creates_segment(ctx, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        qual = ctx.qualname(node.func)
        if qual is None or not qual.split(".")[-1] == "SharedMemory":
            return False
        return any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )

    @staticmethod
    def _has_cleanup_unlink(scope: ast.AST) -> bool:
        """An ``.unlink()`` call inside a cleanup method or finally block."""
        for node in ast.walk(scope):
            method_ok = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _CLEANUP_METHOD_RE.search(node.name)
            final_ok = isinstance(node, ast.Try) and node.finalbody
            search_bodies: list = []
            if method_ok:
                search_bodies.append(node)
            elif final_ok:
                search_bodies.extend(node.finalbody)
            for body in search_bodies:
                for sub in ast.walk(body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "unlink"
                    ):
                        return True
        return False


# ----------------------------------------------------------------------
# unused-import (ruff F401 mirror)
# ----------------------------------------------------------------------
@_register
class UnusedImportCheck(Check):
    check_id = "unused-import"
    description = (
        "imports never referenced in the file (F401); __init__.py re-export "
        "files are exempt"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        if ctx.path.endswith("__init__.py"):
            return []
        imported: dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(name, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.asname == alias.name:
                        continue  # `import x as x`: explicit re-export
                    imported.setdefault(alias.asname or alias.name, node)
        if not imported:
            return []
        used = self._used_names(ctx.tree)
        return [
            ctx.finding(
                self.check_id, node,
                f"unused import {name!r}",
            )
            for name, node in sorted(imported.items(), key=lambda kv: kv[0])
            if name not in used
        ]

    @staticmethod
    def _used_names(tree: ast.Module) -> set[str]:
        used: set[str] = set()
        annotation_roots: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                annotation_roots.append(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None:
                    annotation_roots.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                annotation_roots.append(node.annotation)
            elif isinstance(node, ast.Assign):
                # ``__all__`` strings are references (re-export by name).
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        for sub in ast.walk(node.value):
                            if isinstance(sub, ast.Constant) and isinstance(
                                sub.value, str
                            ):
                                used.add(sub.value)
        # Under ``from __future__ import annotations`` (and in TYPE_CHECKING
        # blocks) annotations may be string literals: their identifiers are
        # genuine references.
        for root in annotation_roots:
            for sub in ast.walk(root):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    used.update(_IDENTIFIER_RE.findall(sub.value))
        return used


# ----------------------------------------------------------------------
# mutable-default (ruff B006 mirror)
# ----------------------------------------------------------------------
@_register
class MutableDefaultCheck(Check):
    check_id = "mutable-default"
    description = (
        "mutable default arguments (B006): the default is one shared object "
        "across calls — cross-call hidden state, exactly what the "
        "determinism contract forbids"
    )

    _FACTORY_CALLS = {"list", "dict", "set"}

    def run(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    findings.append(ctx.finding(
                        self.check_id, default,
                        f"mutable default argument in {name}(): defaults are "
                        "evaluated once and shared across calls",
                    ))
        return findings

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._FACTORY_CALLS
        )


# ----------------------------------------------------------------------
# observability-safety
# ----------------------------------------------------------------------
@_register
class ObservabilitySafetyCheck(Check):
    check_id = "observability-safety"
    description = (
        "tracing is pure observation: repro/obs must not draw randomness "
        "or read the wall clock (the span clock is time.monotonic_ns), and "
        "span()/event() attributes anywhere must not capture weight arrays "
        "(get_flat/asarray/copy/... results ride worker result payloads)"
    )

    #: Wall-clock sources banned inside ``repro/obs``: span timestamps on
    #: different hosts/processes only merge on the monotonic clock, and a
    #: wall-clock read is exactly the kind of hidden environmental input
    #: the determinism contract exists to keep out of the round loop.
    _WALL_CLOCK = {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }

    #: Call leaf names that produce (copies of) model weight arrays.  A
    #: span attribute is shipped back from pool workers inside the task
    #: result payload, so an array-valued attr silently multiplies the
    #: transport volume tracing claims merely to observe — and
    #: ``check_attrs`` would reject it at runtime anyway.  Catch it at
    #: parse time, at the instrumentation site.
    _ARRAY_LEAVES = {
        "get_flat", "get_weights", "asarray", "array", "ascontiguousarray",
        "copy", "ravel", "flatten", "tolist",
    }

    _TRACE_METHODS = {"span", "event"}

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        in_obs = "repro/obs" in ctx.path
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if in_obs and qual is not None:
                if qual in self._WALL_CLOCK:
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"wall-clock call {qual}() in repro/obs: span "
                        "timing must use the monotonic clock "
                        "(time.monotonic_ns) — wall-clock stamps from "
                        "different processes do not merge",
                    ))
                elif qual == "random" or qual.startswith("random.") or (
                    qual.startswith("numpy.random.")
                ):
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"RNG call {qual}() in repro/obs: tracing must draw "
                        "no randomness — a draw here would shift every "
                        "downstream stream and break the traced==untraced "
                        "bit-identity contract",
                    ))
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._TRACE_METHODS
            ):
                findings.extend(self._check_attrs(ctx, node))
        return findings

    def _check_attrs(self, ctx: FileContext, call: ast.Call) -> list[Finding]:
        findings = []
        for value in [*call.args, *[kw.value for kw in call.keywords]]:
            for sub in ast.walk(value):
                if not isinstance(sub, ast.Call):
                    continue
                leaf = None
                if isinstance(sub.func, ast.Attribute):
                    leaf = sub.func.attr
                elif isinstance(sub.func, ast.Name):
                    leaf = sub.func.id
                if leaf in self._ARRAY_LEAVES:
                    findings.append(ctx.finding(
                        self.check_id, sub,
                        f"span/event attribute captures {leaf}(): weight "
                        "arrays must never enter span attributes — attrs "
                        "ride the pool result payloads and must stay "
                        "scalar (check_attrs enforces this at runtime; "
                        "record a length or a hash instead)",
                    ))
        return findings


# ----------------------------------------------------------------------
# swallowed-exception
# ----------------------------------------------------------------------
@_register
class SwallowedExceptionCheck(Check):
    check_id = "swallowed-exception"
    description = (
        "the execution layer (repro/fl, repro/core) must not silently "
        "discard failures: no pass-only bare/Exception handlers, and no "
        "unobserved future.exception() — a worker crash that vanishes "
        "here reappears as a silent divergence the equivalence matrix "
        "cannot explain"
    )
    path_scope = ("repro/fl", "repro/core")

    #: Handler types broad enough to eat a worker crash.  A narrow
    #: handler (KeyError, FuturesTimeout, ...) states what it absorbs;
    #: these absorb everything.
    _BROAD = {"Exception", "BaseException"}

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if self._broad(node) and self._body_discards(node.body):
                    caught = (
                        "bare except" if node.type is None
                        else f"except {ast.unparse(node.type)}"
                    )
                    findings.append(ctx.finding(
                        self.check_id, node,
                        f"{caught} with a pass-only body swallows every "
                        "failure, including worker crashes the resilience "
                        "layer must observe; narrow the handler, or "
                        "count/trace the error before discarding it",
                    ))
            elif isinstance(node, ast.Expr):
                call = node.value
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "exception"
                    and not call.args
                ):
                    # ``fut.exception()`` as a bare statement retrieves
                    # the error only to drop it.  (``log.exception(msg)``
                    # takes arguments and is not matched.)
                    findings.append(ctx.finding(
                        self.check_id, call,
                        "future.exception() result is discarded: the "
                        "retrieved error must be counted, traced, or "
                        "re-raised — dropping it hides worker failures",
                    ))
        return findings

    def _broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        return (
            isinstance(handler.type, ast.Name)
            and handler.type.id in self._BROAD
        )

    @staticmethod
    def _body_discards(body: list[ast.stmt]) -> bool:
        """True when the handler body observes nothing: only pass/``...``."""
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in body
        )


#: Stable id list, exported for --list-checks and the test battery.
ALL_CHECK_IDS = tuple(_REGISTRY)
