"""Run the check battery over sources and render the results.

The engine is the only layer that knows about files, suppressions and the
baseline; checks see one parsed :class:`~repro.analysis.lint.checks.FileContext`
at a time and stay pure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.checks import Check, FileContext, all_checks
from repro.analysis.lint.findings import (
    BASELINE_VERSION,
    Finding,
    Suppression,
    load_baseline,
    parse_suppressions,
    save_baseline,
)

__all__ = [
    "BASELINE_VERSION",
    "Finding",
    "Report",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]

#: Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", "results"}


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing fails the run (grandfathered hits do not)."""
        return not self.findings and not self.parse_errors

    @property
    def all_failures(self) -> list[Finding]:
        return sorted([*self.parse_errors, *self.findings])


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                seen.setdefault(root, None)
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {root}")
        for candidate in sorted(root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            seen.setdefault(candidate, None)
    return sorted(seen)


def analyze_source(
    source: str,
    path: str = "<memory>",
    checks: list[Check] | None = None,
    respect_scope: bool = True,
) -> list[Finding]:
    """Lint one source string (the unit the fixture tests drive).

    ``path`` participates in check scoping (e.g. ``dtype-discipline`` only
    fires under ``repro/nn``/``repro/fl``/``repro/data``); pass a
    representative fake path, or ``respect_scope=False`` to force every
    check on.  Suppression and bad-suppression semantics are identical to
    the file path — this *is* the per-file engine.
    """
    checks = all_checks() if checks is None else checks
    ctx = FileContext.from_source(path, source)
    suppressions = parse_suppressions(source)
    raw: list[Finding] = []
    for check in checks:
        if respect_scope and not check.applies_to(path):
            continue
        raw.extend(check.run(ctx))
    return _apply_suppressions(path, raw, suppressions)


def _apply_suppressions(
    path: str, raw: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in raw:
        covering = [s for s in suppressions if s.covers(finding)]
        if not covering:
            kept.append(finding)
    # A reasonless allow is a finding in its own right: suppressions must
    # say *why*, or the next reader cannot audit them.
    for suppression in suppressions:
        if suppression.reason is None:
            kept.append(Finding(
                path=path,
                line=suppression.line,
                check_id="bad-suppression",
                message=(
                    "suppression without a reason: write "
                    "'# repro: allow[check-id] -- why this is safe'"
                ),
            ))
    return sorted(kept)


def analyze_paths(
    paths: list[str | Path],
    checks: list[Check] | None = None,
    baseline: set[tuple[str, str, str]] | None = None,
    root: Path | None = None,
) -> Report:
    """Lint every Python file under ``paths``.

    Finding paths are reported relative to ``root`` (default: the current
    working directory) in posix form, which is also the identity the
    baseline keys on.
    """
    checks = all_checks() if checks is None else checks
    baseline = baseline or set()
    root = Path.cwd() if root is None else Path(root)
    report = Report()
    for file_path in iter_python_files(paths):
        try:
            relative = file_path.resolve().relative_to(root.resolve())
        except ValueError:
            relative = file_path
        rel = relative.as_posix()
        report.files_scanned += 1
        try:
            source = file_path.read_text()
            findings = analyze_source(source, path=rel, checks=checks)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", 0) or 0
            report.parse_errors.append(Finding(
                path=rel,
                line=lineno,
                check_id="parse-error",
                message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
            ))
            continue
        for finding in findings:
            if finding.baseline_key in baseline:
                report.grandfathered.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort()
    report.grandfathered.sort()
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(report: Report) -> str:
    lines = [str(f) for f in report.all_failures]
    if report.grandfathered:
        lines.append(
            f"({len(report.grandfathered)} grandfathered finding(s) "
            "suppressed by baseline)"
        )
    status = "clean" if report.ok else f"{len(report.all_failures)} finding(s)"
    lines.append(f"repro-lint: {report.files_scanned} file(s) scanned, {status}")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "version": BASELINE_VERSION,
        "files_scanned": report.files_scanned,
        "ok": report.ok,
        "findings": [f.to_dict() for f in report.all_failures],
        "grandfathered": [f.to_dict() for f in report.grandfathered],
    }
    return json.dumps(payload, indent=2)
