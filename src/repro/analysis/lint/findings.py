"""Finding records, inline suppressions, and the grandfathering baseline.

A finding is one checker hit at one source line.  Two escape hatches keep
the battery adoptable on a living tree without weakening it:

- **inline suppression** — ``# repro: allow[check-id] -- reason`` on the
  offending line acknowledges a *reviewed* false positive.  The reason is
  mandatory: an allow without one is itself reported (``bad-suppression``),
  so suppressions stay auditable.
- **baseline** — a committed JSON file of grandfathered findings.  Baseline
  entries are keyed by ``(path, check_id, message)`` (line numbers drift
  too easily to key on), are reported separately, and do not fail the run.
  The repo's policy is an *empty* baseline: the file exists so adopting a
  new check on a large tree is a two-commit operation, not a flag day.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

#: Schema version of the baseline file (bumped on incompatible changes).
BASELINE_VERSION = 1

#: Matches ``repro: allow[check-id, other-id] -- reason`` comments (reason
#: optional at the regex level; the engine reports reason-less allows).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One checker hit: where, which check, and what it saw."""

    path: str
    line: int
    check_id: str
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity under which a finding can be grandfathered."""
        return (self.path, self.check_id, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "check_id": self.check_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            check_id=str(data["check_id"]),
            message=str(data["message"]),
        )

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check_id}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro: allow[...]`` suppression comment."""

    line: int
    check_ids: tuple[str, ...]
    reason: str | None

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and (
            finding.check_id in self.check_ids or "*" in self.check_ids
        )


def parse_suppressions(source: str) -> list[Suppression]:
    """Collect the inline allow-comments of one file, line by line.

    Parsing is lexical (regex over raw lines), so an allow inside a string
    literal would match too — acceptable for a repo-internal linter, and it
    keeps fixture snippets trivial to write.
    """
    suppressions = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        ids = tuple(
            token.strip() for token in match.group("ids").split(",") if token.strip()
        )
        suppressions.append(
            Suppression(line=lineno, check_ids=ids, reason=match.group("reason"))
        )
    return suppressions


# ----------------------------------------------------------------------
# Baseline file
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Grandfathered finding keys from a committed baseline file."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}, "
            f"this linter writes version {BASELINE_VERSION}"
        )
    return {
        (str(f["path"]), str(f["check_id"]), str(f["message"]))
        for f in data.get("findings", [])
    }


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the baseline covering ``findings`` (sorted, line-less keys)."""
    entries = sorted(
        {f.baseline_key for f in findings}
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "check_id": c, "message": m} for p, c, m in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
