"""Command line for the determinism lint.

Reached two ways (both load the identical battery)::

    PYTHONPATH=src python -m repro.analysis src benchmarks examples
    PYTHONPATH=src python -m repro lint src benchmarks examples

Exit status is 0 only when no non-grandfathered finding (and no parse
error) remains, so ``set -e`` CI scripts gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.lint.checks import all_checks, get_check
from repro.analysis.lint.engine import (
    analyze_paths,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)

#: Paths linted when none are given (filtered to those that exist, so the
#: command works from the repo root and from installed checkouts alike).
DEFAULT_PATHS = ("src", "benchmarks", "examples")

#: The committed grandfathering baseline (repo policy: empty).
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "Static determinism lint: enforce the bit-identity contract "
            "(RngStreams-keyed randomness, dtype discipline, picklable "
            "pool payloads, parallel-safe classes, shm hygiene)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files or directories to lint (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits the machine-readable report)",
    )
    parser.add_argument(
        "--select", default=None, metavar="ID[,ID...]",
        help="run only these check ids (default: the full battery)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"grandfathering baseline (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: every finding fails the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="list check ids with their descriptions and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_checks:
        for check in all_checks():
            scope = (
                f" [scope: {', '.join(check.path_scope)}]"
                if check.path_scope else ""
            )
            print(f"{check.check_id}: {check.description}{scope}")
        return 0

    checks = None
    if args.select:
        checks = [get_check(cid.strip()) for cid in args.select.split(",")]

    paths = list(args.paths) or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        print("repro-lint: no paths to lint", file=sys.stderr)
        return 2

    baseline = set()
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None and not args.no_baseline and not args.write_baseline:
        baseline = load_baseline(baseline_path)

    report = analyze_paths(paths, checks=checks, baseline=baseline)

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        save_baseline(target, report.findings)
        print(
            f"repro-lint: wrote {len(report.findings)} finding(s) to {target}"
        )
        return 0

    print(render_json(report) if args.format == "json" else render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
