"""Static determinism lint: the bit-identity contract, machine-checked.

Every engine this repo ships ({Sequential, ProcessPool, Pipelined} x
{InProcess, SharedMemory} x cohort stacking) commits bit-identical models
only because of invariants the type system cannot see: randomness flows
exclusively from per-``(round, entity)`` :class:`~repro.fl.rng.RngStreams`
keys, dtypes survive end to end, worker payloads pickle, shared-memory
segments always unlink.  Historically those invariants lived in runtime
equivalence tests, so a violation surfaced rounds-deep in a bisection
(PR 5's ``_col2im``/Dropout ``float64`` leaks are the canonical example).

This package checks them at parse time instead:

- :mod:`repro.analysis.lint.checks` — the battery of AST checks
  (``global-rng``, ``dtype-discipline``, ``pickle-safety``,
  ``parallel-safety``, ``shm-hygiene``, plus the hygiene pair
  ``unused-import`` / ``mutable-default``);
- :mod:`repro.analysis.lint.engine` — file walking, per-line inline
  suppressions (``# repro: allow[check-id] -- reason``), the committed
  grandfathering baseline, and text/JSON rendering;
- :mod:`repro.analysis.lint.cli` — the ``python -m repro.analysis``
  entry point (also reachable as ``python -m repro lint``).

Run it from the repo root::

    PYTHONPATH=src python -m repro.analysis src benchmarks examples

The exit status is nonzero when any non-grandfathered finding remains, so
``set -e`` CI scripts fail fast.
"""

from repro.analysis.lint.checks import ALL_CHECK_IDS, Check, all_checks, get_check
from repro.analysis.lint.engine import (
    BASELINE_VERSION,
    Finding,
    Report,
    analyze_paths,
    analyze_source,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)

__all__ = [
    "ALL_CHECK_IDS",
    "BASELINE_VERSION",
    "Check",
    "Finding",
    "Report",
    "all_checks",
    "analyze_paths",
    "analyze_source",
    "get_check",
    "load_baseline",
    "render_json",
    "render_text",
    "save_baseline",
]
