"""``python -m repro.analysis``: run the static determinism lint."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
