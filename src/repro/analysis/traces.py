"""LOF / threshold traces of a validator over a model sequence."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.validation import MisclassificationValidator, ValidationContext
from repro.nn.network import Network


@dataclass
class ValidatorTrace:
    """Round-by-round Algorithm 2 diagnostics for one validator.

    Lists are aligned; ``None`` entries mark rounds where the validator
    abstained (history too short).
    """

    rounds: list[int] = field(default_factory=list)
    candidate_lofs: list[float | None] = field(default_factory=list)
    thresholds: list[float | None] = field(default_factory=list)
    votes: list[int] = field(default_factory=list)

    def margin(self) -> np.ndarray:
        """``LOF / threshold`` per round (NaN where abstained)."""
        out = np.full(len(self.rounds), np.nan)
        for i, (lof, tau) in enumerate(zip(self.candidate_lofs, self.thresholds)):
            if lof is not None and tau is not None and tau > 0:
                out[i] = lof / tau
        return out


def collect_validator_trace(
    validator: MisclassificationValidator,
    model_sequence: list[Network],
    lookback: int,
) -> ValidatorTrace:
    """Replay a model sequence through one validator.

    Treats every model in the sequence as *accepted* (as Fig. 2's analysis
    does): at round ``r`` the candidate is ``model_sequence[r]`` and the
    history is the preceding ``lookback + 1`` models.  Useful to visualise
    how the LOF signal evolves for clean vs poisoned trajectories.
    """
    if lookback < 4:
        raise ValueError(f"lookback must be >= 4, got {lookback}")
    if len(model_sequence) < 2:
        raise ValueError("need at least two models")
    trace = ValidatorTrace()
    history: list[tuple[int, Network]] = [(0, model_sequence[0])]
    for r in range(1, len(model_sequence)):
        candidate = model_sequence[r]
        report = validator.explain(
            ValidationContext(candidate, history[-(lookback + 1) :])
        )
        trace.rounds.append(r)
        trace.candidate_lofs.append(report.candidate_lof)
        trace.thresholds.append(report.threshold)
        trace.votes.append(report.vote)
        history.append((r, candidate))
    return trace
