"""Post-hoc analysis of defended runs.

Tools a researcher reaches for after running the harness:

- :mod:`repro.analysis.traces` — per-round LOF/threshold traces of a
  validator against a model sequence (the raw signal behind Fig. 2's
  intuition and Algorithm 2's decisions);
- :mod:`repro.analysis.detection` — detection latency, rejection bursts,
  and per-round vote summaries from :class:`repro.fl.RoundRecord` lists;
- :mod:`repro.analysis.updates` — update-norm statistics across clients
  and rounds (what norm-clipping defenses calibrate against, and how far
  a boosted update sticks out).

Correctness tooling lives here too:

- :mod:`repro.analysis.lint` — the static checker battery behind
  ``python -m repro.analysis`` (global RNG use, dtype discipline,
  pickle/parallel safety, shared-memory hygiene);
- :mod:`repro.analysis.sanitize` — the runtime sanitizer
  (``REPRO_SANITIZE=1``): dtype assertions on the hot numeric paths and
  per-round/per-layer state hashing;
- :mod:`repro.analysis.divergence` — diffs two sanitizer hash traces to
  the first divergent ``(round, layer)``.
"""

from repro.analysis.detection import (
    detection_latency,
    rejection_bursts,
    vote_summary,
)
from repro.analysis.divergence import Divergence, diff_traces, first_divergence
from repro.analysis.sanitize import HashTrace, SanitizeError, hash_array
from repro.analysis.traces import ValidatorTrace, collect_validator_trace
from repro.analysis.updates import UpdateNormStats, update_norm_stats

__all__ = [
    "Divergence",
    "HashTrace",
    "SanitizeError",
    "UpdateNormStats",
    "ValidatorTrace",
    "collect_validator_trace",
    "detection_latency",
    "diff_traces",
    "first_divergence",
    "hash_array",
    "rejection_bursts",
    "update_norm_stats",
    "vote_summary",
]
