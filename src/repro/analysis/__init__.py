"""Post-hoc analysis of defended runs.

Tools a researcher reaches for after running the harness:

- :mod:`repro.analysis.traces` — per-round LOF/threshold traces of a
  validator against a model sequence (the raw signal behind Fig. 2's
  intuition and Algorithm 2's decisions);
- :mod:`repro.analysis.detection` — detection latency, rejection bursts,
  and per-round vote summaries from :class:`repro.fl.RoundRecord` lists;
- :mod:`repro.analysis.updates` — update-norm statistics across clients
  and rounds (what norm-clipping defenses calibrate against, and how far
  a boosted update sticks out).
"""

from repro.analysis.detection import (
    detection_latency,
    rejection_bursts,
    vote_summary,
)
from repro.analysis.traces import ValidatorTrace, collect_validator_trace
from repro.analysis.updates import UpdateNormStats, update_norm_stats

__all__ = [
    "UpdateNormStats",
    "ValidatorTrace",
    "collect_validator_trace",
    "detection_latency",
    "rejection_bursts",
    "update_norm_stats",
    "vote_summary",
]
