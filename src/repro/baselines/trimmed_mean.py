"""Coordinate-wise robust aggregation (Yin et al., ICML 2018)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean: drop the ``beta`` highest and lowest.

    With ``beta`` at least the number of malicious clients, the estimate is
    provably robust under IID assumptions — assumptions FL violates, which
    is the paper's point in Sec. VII.
    """

    requires_individual_updates = True

    def __init__(self, trim: int) -> None:
        if trim < 0:
            raise ValueError(f"trim must be >= 0, got {trim}")
        self.trim = trim

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        stacked = np.stack(updates)
        n = len(stacked)
        if 2 * self.trim >= n:
            raise ValueError(f"cannot trim 2*{self.trim} from {n} updates")
        ordered = np.sort(stacked, axis=0)
        kept = ordered[self.trim : n - self.trim]
        return kept.mean(axis=0)


class CoordinateMedianAggregator(Aggregator):
    """Coordinate-wise median of the updates."""

    requires_individual_updates = True

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        return np.median(np.stack(updates), axis=0)
