"""Update-norm clipping (Sun et al., "Can you really backdoor FL?", 2019).

Model replacement boosts the malicious update by ``N / lambda``; bounding
every update's L2 norm before averaging blunts the boost.  An attacker
aware of the bound can pre-clip (see
:attr:`repro.attacks.ReplacementConfig.max_update_norm`), trading backdoor
strength for stealth — the arms race the paper cites.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator


class NormClippingAggregator(Aggregator):
    """Clip every update to ``max_norm`` (L2), then average."""

    requires_individual_updates = True

    def __init__(self, max_norm: float) -> None:
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        self.max_norm = max_norm

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        clipped = []
        for update in updates:
            norm = float(np.linalg.norm(update))
            if norm > self.max_norm:
                update = update * (self.max_norm / norm)
            clipped.append(update)
        return np.stack(clipped).mean(axis=0)
