"""FoolsGold (Fung et al., 2018): similarity-based contribution weighting.

FoolsGold assumes sybil attackers submit *similar* updates across rounds
and down-weights clients whose historical update directions have high
pairwise cosine similarity.  It is defeated by a single-client attack
(Bagdasaryan et al.) — the paper cites this as motivation.  We implement
the core algorithm: per-client aggregated history vectors, pairwise cosine
similarity, pardoning re-scaling, and logit-ed learning rates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator

_EPS = 1e-12


class FoolsGoldAggregator(Aggregator):
    """FoolsGold weighting over per-round updates.

    The aggregator is stateful: it accumulates each contributor's updates
    across rounds (keyed by position ``i`` in the update list, so the
    caller must keep contributor order stable — the experiment harness
    passes client ids through ``set_contributors``).
    """

    requires_individual_updates = True

    def __init__(self, confidence: float = 1.0) -> None:
        if confidence <= 0:
            raise ValueError(f"confidence must be positive, got {confidence}")
        self.confidence = confidence
        self._history: dict[int, np.ndarray] = {}
        self._contributors: list[int] | None = None

    def set_contributors(self, client_ids: Sequence[int]) -> None:
        """Declare which client produced each update in the next call."""
        self._contributors = list(client_ids)

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        stacked = np.stack(updates)
        n = len(stacked)
        ids = self._contributors if self._contributors is not None else list(range(n))
        if len(ids) != n:
            raise ValueError(f"{len(ids)} contributor ids for {n} updates")
        self._contributors = None
        for cid, update in zip(ids, stacked):
            if cid in self._history:
                self._history[cid] = self._history[cid] + update
            else:
                self._history[cid] = update.copy()
        weights = self._weights([self._history[cid] for cid in ids])
        total = weights.sum()
        if total <= _EPS:
            # Everyone looks sybil-like; fall back to plain averaging.
            return stacked.mean(axis=0)
        return (weights[:, None] * stacked).sum(axis=0) / total

    def _weights(self, histories: list[np.ndarray]) -> np.ndarray:
        """FoolsGold's pairwise-similarity -> learning-rate computation."""
        n = len(histories)
        if n == 1:
            return np.ones(1)
        stacked = np.stack(histories)
        norms = np.linalg.norm(stacked, axis=1, keepdims=True)
        normalized = stacked / np.maximum(norms, _EPS)
        cosine = normalized @ normalized.T
        np.fill_diagonal(cosine, -np.inf)
        max_sim = cosine.max(axis=1)
        # Pardoning: rescale similarities by the ratio of max similarities.
        pardoned = cosine.copy()
        for i in range(n):
            for j in range(n):
                if i != j and max_sim[j] > _EPS and max_sim[i] < max_sim[j]:
                    pardoned[i, j] = cosine[i, j] * max_sim[i] / max_sim[j]
        weights = 1.0 - np.where(
            np.isfinite(pardoned), pardoned, -np.inf
        ).max(axis=1)
        weights = np.clip(weights, 0.0, 1.0)
        if weights.max() > _EPS:
            weights = weights / weights.max()
        # Logit transform sharpens the separation (FoolsGold eq. 4).
        safe = np.clip(weights, _EPS, 1.0 - _EPS)
        logits = self.confidence * (np.log(safe / (1.0 - safe)) + 0.5)
        return np.clip(logits, 0.0, 1.0)
