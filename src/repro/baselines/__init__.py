"""Byzantine-robust aggregation baselines (paper Sec. VII).

The paper positions BaFFLe against defenses that inspect *individual*
client updates — which makes them incompatible with secure aggregation.
This package implements the main representatives so the benchmark harness
can contrast them with BaFFLe under the same model-replacement attack:

- :class:`~repro.baselines.krum.KrumAggregator` — Krum / multi-Krum
  (Blanchard et al., NIPS 2017);
- :class:`~repro.baselines.trimmed_mean.TrimmedMeanAggregator` and
  :class:`~repro.baselines.trimmed_mean.CoordinateMedianAggregator` —
  coordinate-wise robust statistics (Yin et al., ICML 2018);
- :class:`~repro.baselines.norm_clip.NormClippingAggregator` — update-norm
  clipping (Sun et al., 2019);
- :class:`~repro.baselines.foolsgold.FoolsGoldAggregator` — similarity
  re-weighting against sybils (Fung et al., 2018);
- :class:`~repro.baselines.rfa.GeometricMedianAggregator` — RFA's smoothed
  Weiszfeld geometric median (Pillutla et al., 2019).

All implement :class:`repro.fl.aggregation.Aggregator` and declare
``requires_individual_updates = True`` — the structural incompatibility the
paper criticises (the simulation refuses to combine them with the
secure-aggregation path).
"""

from repro.baselines.foolsgold import FoolsGoldAggregator
from repro.baselines.krum import KrumAggregator, krum_scores
from repro.baselines.norm_clip import NormClippingAggregator
from repro.baselines.rfa import GeometricMedianAggregator, geometric_median
from repro.baselines.trimmed_mean import (
    CoordinateMedianAggregator,
    TrimmedMeanAggregator,
)

__all__ = [
    "CoordinateMedianAggregator",
    "FoolsGoldAggregator",
    "GeometricMedianAggregator",
    "KrumAggregator",
    "NormClippingAggregator",
    "TrimmedMeanAggregator",
    "geometric_median",
    "krum_scores",
]
