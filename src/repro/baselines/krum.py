"""Krum and multi-Krum (Blanchard et al., NIPS 2017).

Krum selects the update closest (in summed squared distance) to its
``n - f - 2`` nearest neighbours, discarding the rest; multi-Krum averages
the ``m`` best-scoring updates.  Designed for IID Byzantine SGD, it is
known to break on non-IID federated data (Fang et al. 2020) — one of the
motivations the paper gives for a validation-based defense.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator


def krum_scores(updates: np.ndarray, num_malicious: int) -> np.ndarray:
    """Per-update Krum score: sum of squared distances to closest peers.

    ``updates`` is ``(n, d)``; each update is scored over its
    ``n - num_malicious - 2`` nearest other updates.  Lower is better.
    """
    n = len(updates)
    closest = n - num_malicious - 2
    if closest < 1:
        raise ValueError(
            f"Krum needs n - f - 2 >= 1 (n={n}, f={num_malicious})"
        )
    diffs = updates[:, None, :] - updates[None, :, :]
    sq_dists = (diffs**2).sum(axis=-1)
    np.fill_diagonal(sq_dists, np.inf)
    nearest = np.sort(sq_dists, axis=1)[:, :closest]
    return nearest.sum(axis=1)


class KrumAggregator(Aggregator):
    """Krum (``multi_k = 1``) or multi-Krum (``multi_k > 1``) aggregation."""

    requires_individual_updates = True

    def __init__(self, num_malicious: int, multi_k: int = 1) -> None:
        if num_malicious < 0:
            raise ValueError(f"num_malicious must be >= 0, got {num_malicious}")
        if multi_k < 1:
            raise ValueError(f"multi_k must be >= 1, got {multi_k}")
        self.num_malicious = num_malicious
        self.multi_k = multi_k

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        stacked = np.stack(updates)
        scores = krum_scores(stacked, self.num_malicious)
        if self.multi_k >= len(stacked):
            raise ValueError(
                f"multi_k={self.multi_k} must be < number of updates {len(stacked)}"
            )
        chosen = np.argsort(scores)[: self.multi_k]
        return stacked[chosen].mean(axis=0)
