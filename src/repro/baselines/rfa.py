"""Robust Federated Aggregation (Pillutla et al., 2019): geometric median.

RFA replaces the arithmetic mean with the geometric median, computed by
the smoothed Weiszfeld iteration.  It targets *untargeted* poisoning and
has been shown vulnerable to targeted backdoors (Xie et al. 2020) — which
the benchmark harness demonstrates against model replacement.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator


def geometric_median(
    points: np.ndarray,
    max_iters: int = 100,
    tol: float = 1e-8,
    smoothing: float = 1e-6,
) -> np.ndarray:
    """Smoothed Weiszfeld iteration for the L2 geometric median."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be non-empty (n, d), got {points.shape}")
    median = points.mean(axis=0)
    for _ in range(max_iters):
        dists = np.linalg.norm(points - median, axis=1)
        weights = 1.0 / np.maximum(dists, smoothing)
        updated = (weights[:, None] * points).sum(axis=0) / weights.sum()
        if np.linalg.norm(updated - median) < tol:
            return updated
        median = updated
    return median


class GeometricMedianAggregator(Aggregator):
    """Aggregate updates by their geometric median (RFA)."""

    requires_individual_updates = True

    def __init__(self, max_iters: int = 100, tol: float = 1e-8) -> None:
        if max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {max_iters}")
        self.max_iters = max_iters
        self.tol = tol

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        return geometric_median(
            np.stack(updates), max_iters=self.max_iters, tol=self.tol
        )
