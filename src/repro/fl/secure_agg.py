"""Secure-aggregation simulation (pairwise additive masking).

The paper requires the defense to be compatible with secure aggregation
[Bonawitz et al., CCS'17]: the server must learn only the *sum* of client
updates, never an individual one.  We simulate the protocol's masking
algebra (not its key agreement / dropout recovery machinery):

- every ordered client pair ``(i, j)`` with ``i < j`` derives a shared mask
  ``m_{ij}`` from a pairwise seed;
- client ``i`` submits ``U_i + sum_{j > i} m_{ij} - sum_{j < i} m_{ji}``;
- summing all submissions cancels every mask exactly, yielding
  ``sum_i U_i``.

:class:`SecureAggregator` enforces the privacy property *structurally*: its
only output is the aggregated sum, and masked submissions are useless
individually (they are blinded by the pairwise masks).  The BaFFLe defense
never needs anything else — that is the compatibility claim this module
lets the test suite check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MaskedUpdate:
    """A client's blinded submission: ``update + mask``."""

    client_id: int
    blinded: np.ndarray


def make_pairwise_masks(
    client_ids: list[int], dim: int, round_seed: int, mask_scale: float = 1.0
) -> dict[int, np.ndarray]:
    """Derive each client's net mask from pairwise shared seeds.

    Returns ``{client_id: net_mask}`` with ``sum(net_mask) == 0`` exactly
    (up to floating-point addition order, which we make deterministic).
    """
    if len(set(client_ids)) != len(client_ids):
        raise ValueError("client ids must be unique")
    masks = {cid: np.zeros(dim, dtype=np.float64) for cid in client_ids}
    ordered = sorted(client_ids)
    for a_pos, a in enumerate(ordered):
        for b in ordered[a_pos + 1 :]:
            pair_seed = np.random.SeedSequence(entropy=(round_seed, a, b))
            pair_rng = np.random.default_rng(pair_seed)
            mask = pair_rng.normal(0.0, mask_scale, size=dim)
            masks[a] += mask
            masks[b] -= mask
    return masks


class SecureAggregator:
    """Sum-only aggregation with pairwise masking.

    Usage: clients call :meth:`blind` on their raw update; the server calls
    :meth:`unmask_sum` on the collected blinded submissions.  The class
    offers no API to recover an individual update.
    """

    def __init__(self, client_ids: list[int], dim: int, round_seed: int) -> None:
        self._client_ids = list(client_ids)
        self._masks = make_pairwise_masks(self._client_ids, dim, round_seed)
        self._dim = dim

    def blind(self, client_id: int, update: np.ndarray) -> MaskedUpdate:
        """Client-side: blind a raw update with the client's net mask."""
        if client_id not in self._masks:
            raise KeyError(f"client {client_id} not part of this aggregation round")
        update = np.asarray(update, dtype=np.float64)
        if update.shape != (self._dim,):
            raise ValueError(f"update must have shape ({self._dim},), got {update.shape}")
        return MaskedUpdate(client_id, update + self._masks[client_id])

    def unmask_sum(self, submissions: list[MaskedUpdate]) -> np.ndarray:
        """Server-side: the sum of raw updates (masks cancel).

        Requires all participants to submit — the simulated protocol has no
        dropout-recovery phase.
        """
        got = sorted(s.client_id for s in submissions)
        if got != sorted(self._client_ids):
            raise ValueError(
                f"need submissions from exactly {sorted(self._client_ids)}, got {got}"
            )
        total = np.zeros(self._dim, dtype=np.float64)
        for submission in submissions:
            total += submission.blinded
        return total
