"""Federated-learning configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FLConfig:
    """Hyper-parameters of the federated process (paper Sec. II-B, VI-A).

    Attributes
    ----------
    num_clients:
        Total client population ``N`` (100 for CIFAR-10, 3550 for FEMNIST in
        the paper; scaled down by the experiment configs here).
    clients_per_round:
        Contributors ``n`` selected each round (paper: 10).
    local_epochs:
        Local training epochs per client per round (paper: 2).
    batch_size:
        Local mini-batch size.
    client_lr:
        Local SGD learning rate (paper: 0.1).
    client_momentum:
        Local SGD momentum.
    weight_decay:
        Local L2 regularisation.
    global_lr:
        Global learning rate ``lambda``; ``None`` means ``N/n`` (the global
        model is fully replaced by the average of local models).
    """

    num_clients: int = 100
    clients_per_round: int = 10
    local_epochs: int = 2
    batch_size: int = 32
    client_lr: float = 0.1
    client_momentum: float = 0.9
    weight_decay: float = 0.0
    global_lr: float | None = None

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {self.num_clients}")
        if not 1 <= self.clients_per_round <= self.num_clients:
            raise ValueError(
                f"clients_per_round must be in [1, {self.num_clients}], "
                f"got {self.clients_per_round}"
            )
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.client_lr <= 0:
            raise ValueError(f"client_lr must be positive, got {self.client_lr}")
        if self.global_lr is not None and self.global_lr <= 0:
            raise ValueError(f"global_lr must be positive, got {self.global_lr}")

    @property
    def effective_global_lr(self) -> float:
        """``lambda``, defaulting to full replacement ``N/n``."""
        if self.global_lr is not None:
            return self.global_lr
        return self.num_clients / self.clients_per_round

    @property
    def replacement_boost(self) -> float:
        """The scaling ``N / lambda`` a model-replacement attacker applies.

        With ``G' = G + (lambda/N) sum_i U_i``, submitting
        ``U = (N/lambda) (X - G)`` drives ``G'`` to ``X`` (plus the honest
        updates' perturbation) — eq. (3) of Bagdasaryan et al.
        """
        return self.num_clients / self.effective_global_lr
