"""The parallel round-execution engine.

``FederatedSimulation.run_round`` has two embarrassingly parallel fan-out
points: the selected clients' local training (``produce_update``) and the
BaFFLe validators' votes.  Both dominate the wall-clock cost of a round —
BackFed (Dao et al., 2025) identifies sequential client execution as *the*
bottleneck of FL-backdoor benchmarking — yet the seed implementation ran
them strictly sequentially on one core.

:class:`RoundExecutor` abstracts the fan-out:

- :class:`SequentialExecutor` (default) runs everything in-process, in
  deterministic order — byte-for-byte the classic behavior;
- :class:`ProcessPoolRoundExecutor` fans tasks out over a
  ``concurrent.futures.ProcessPoolExecutor`` with **batched dispatch**:
  each round phase submits exactly one task per worker, carrying that
  worker's whole slice of the fan-out (cohort chunks plus per-model
  clients, or a contiguous run of validators), so dispatch and pickling
  overhead is O(workers) per round instead of O(clients + validators);
- :class:`ThreadPoolRoundExecutor` fans the same work out over in-process
  threads: the training and validation kernels are numpy/BLAS-bound and
  release the GIL, so threads overlap them with **zero IPC** — no
  pickling, no arena attachments, direct use of the live client and
  validator objects;
- :class:`PipelinedRoundExecutor` wraps any of the above for the
  pipelined simulation loop: validator votes are *submitted*
  (:meth:`RoundExecutor.submit_validators`) rather than awaited, so round
  ``r + 1`` client tasks overlap round ``r`` validator tasks in the same
  worker pool, bounded by its ``pipeline_depth`` knob.

Cohort stacking (:mod:`repro.fl.cohort`) is **on by default** inside the
pool and thread engines (``cohort_size=None`` means "stack the whole
eligible fan-out"); the sequential executor keeps the classic per-model
loop unless a cohort size is requested explicitly.

Asynchronous validation
-----------------------
:meth:`RoundExecutor.submit_validators` returns a :class:`PendingVotes`
handle instead of blocking on the votes.  For a process pool the tasks are
genuinely in flight; the handle holds a store reference for every version
it shipped to workers, so a later rollback (which releases the history's
own references) can never unlink a shared-memory segment a straggler task
is still reading — references drop only when the handle is collected, or,
for abandoned handles (rolled-back rounds), when their last task finishes
(a deferred-release list the executor reaps opportunistically and drains
on ``close``).

Because every task's randomness comes from a keyed
:class:`~repro.fl.rng.RngStreams` child (not a shared sequential stream),
and weights travel losslessly in the active precision-policy dtype
(float64 by default, float32 under the opt-in policy), every
executor/store combination commits **bit-identical** global models and
round records for the same seed and policy.

Weight transport
----------------
Weights reach workers one of two ways, chosen by the bound
:class:`~repro.fl.model_store.ModelStore`:

- **Version keys** (shared-memory store): the server publishes each new
  model into the store's ``multiprocessing.shared_memory`` arena exactly
  once and ships only integer version keys per task.  Workers attach to
  the arena in their initializer and resolve keys locally, so per-round
  transport is O(1 new model) — independent of history length and of how
  many clients or validators fan out.
- **Codec blobs** (in-process store): the legacy path; candidate, global
  and history weights travel per task as self-describing
  :class:`~repro.fl.compression.CompressedSegment` bytes — encoded with
  the same :class:`~repro.fl.compression.WeightCodec` the bound store
  runs, so the pipe path compresses exactly like the arena path — costing
  O(model x (clients + validators x history)) per round (compressed
  payload bytes; the raw float64 figure is tracked alongside).

Either way the executor counts the model-weight bytes it moves across
process boundaries; :class:`~repro.fl.simulation.FederatedSimulation`
surfaces the per-round figure in its round records
(``RoundRecord.transport_bytes``).

Worker-side state
-----------------
Workers are initialized once per pool with the (parallel-safe) client and
validator populations, a structural template network, and the store's
attachment handle.  Worker processes keep per-version model caches and
arena attachments, both evicted as the server retires versions (the
server's minimum live version travels with each task as the eviction
floor).  Validator error profiles are shared through the server's
:class:`~repro.fl.model_store.ValidatorProfileTable`: tasks return the
profiles they compute, the server files them under committed versions, and
future tasks receive them as hints — so a profile is computed once
process-wide and the commit-time reuse (``note_committed``) reaches
workers.

Entities that are stateful across rounds in ways the parent must observe
(e.g. the adaptive attacker, which reads the live defense history and
records its self-check outcomes) declare ``parallel_safe = False`` and are
always executed in the parent process — correctness never depends on the
executor choice.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Mapping, Sequence
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import wait as _wait_futures
from typing import TYPE_CHECKING

import numpy as np

from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.cohort import cohort_updates, plan_cohorts
from repro.fl.compression import (
    CompressedSegment,
    IdentityCodec,
    WeightCodec,
    decode_segment,
)
from repro.fl.faults import (
    DEFAULT_POOL_REBUILDS,
    DEFAULT_TASK_RETRIES,
    FaultPlan,
    InjectedWorkerCrash,
    ResilienceStats,
)
from repro.fl.model_store import (
    ModelStore,
    ShmWorkerView,
    ValidatorProfileTable,
    make_model_store,
    reap_orphan_segments,
)
from repro.fl.registry import ClientRegistry
from repro.fl.rng import RngStreams
from repro.nn.network import Network
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: this module is
    # imported by repro.fl.simulation, which repro.core.baffle imports, so
    # importing repro.core here at runtime would close a circle.
    from repro.core.baffle import ValidatorPool
    from repro.core.validation import ValidationContext, Validator


#: Round-loop execution modes accepted by :func:`make_executor` /
#: :func:`make_engine` (also the config validation set and the CLI
#: ``--exec-mode`` choices).
EXECUTION_MODES = ("sync", "pipelined")

#: Multi-worker engine kinds accepted by :func:`make_executor` /
#: :func:`make_engine` (and the CLI ``--engine`` choices): ``"process"``
#: fans out over worker processes, ``"thread"`` over in-process threads,
#: ``"auto"`` resolves to ``"process"``.
ENGINE_KINDS = ("auto", "process", "thread")

#: Default speculation depth of the pipelined mode: how many rounds may
#: run ahead of their unresolved validator quorums (0 = synchronous).
DEFAULT_PIPELINE_DEPTH = 1


def _is_parallel_safe(obj: object) -> bool:
    """Whether an entity may run in a worker process (opt-in attribute)."""
    return bool(getattr(obj, "parallel_safe", False))


class PendingVotes:
    """Handle for one round's in-flight (or deferred) validator votes.

    ``collect()`` blocks until every vote is available, files the computed
    profiles, releases the handle's store references and returns the vote
    dict — calling it is exactly the second half of the synchronous
    ``run_validators``.  ``abandon()`` discards a handle whose round was
    rolled back: the result is dropped, but the store references stay
    alive until every in-flight task finished (``reap()`` / the executor's
    deferred-release list), so straggler workers never read an unlinked
    segment.
    """

    def __init__(
        self, gather, futures=(), cleanup=None, on_abandon=None, on_error=None
    ) -> None:
        self._gather = gather
        self._futures = list(futures)
        self._cleanup = cleanup
        self._on_abandon = on_abandon
        self._on_error = on_error
        self._votes: dict[int, int] | None = None
        self._errors_drained = False
        self._deferred = False
        self.abandoned = False

    def done(self) -> bool:
        """Whether no task of this handle is still executing."""
        return all(future.done() for future in self._futures)

    def collect(self) -> dict[int, int]:
        """Votes ``{validator_id: vote}`` (blocks; idempotent)."""
        if self.abandoned:
            raise RuntimeError("cannot collect abandoned votes")
        if self._votes is None:
            try:
                self._votes = self._gather()
            finally:
                self._release()
        return self._votes

    def abandon(self) -> None:
        """Discard the result; defer reference release until tasks finish."""
        if self.abandoned or self._votes is not None:
            self.abandoned = True
            return
        self.abandoned = True
        if self.done() or self._on_abandon is not None:
            self._release()
        # else: no deferral channel — wait so references cannot outlive us.
        else:  # pragma: no cover - defensive; executors always pass one
            self.wait()

    def reap(self) -> bool:
        """Release an abandoned handle's references if its tasks finished."""
        if not self.done():
            return False
        self._release()
        return True

    def wait(self) -> None:
        """Block until every task finished, then release references."""
        if self._futures:
            _wait_futures(self._futures)
        self._release()

    def _drain_errors(self) -> None:
        """Surface a written-off handle's task errors exactly once.

        A collected handle's errors already propagated through
        ``gather()``; only abandoned/deferred handles historically
        discarded theirs.  Those now flow through ``on_error`` so the
        executor can count (``abandoned_task_errors``) and trace them.
        """
        if self._errors_drained or not (self.abandoned or self._deferred):
            return
        self._errors_drained = True
        if self._on_error is None:
            return
        for future in self._futures:
            if not future.done() or future.cancelled():
                continue
            error = future.exception()
            if error is not None:
                self._on_error(error)

    def _release(self) -> None:
        if not self.done():
            # A task is still running (reassigned straggler): its store
            # references must outlive it.  Hand the handle to the
            # executor's deferred-release list instead of releasing now.
            if self._on_abandon is not None and not self._deferred:
                self._deferred = True
                self._on_abandon(self)
            return
        self._drain_errors()
        cleanup, self._cleanup = self._cleanup, None
        if cleanup is not None:
            cleanup()


#: A picklable reference to one model's weights: ``(version, blob)`` where
#: a ``None`` blob means "resolve ``version`` from the shared arena" and a
#: present blob carries the serialized weights through the pipe (version
#: ``None`` for unversioned one-shot models like blob-path candidates).
ModelRef = tuple[int | None, bytes | None]


class RoundExecutor:
    """Strategy interface for executing one round's independent tasks.

    ``bind`` hands the executor the static population *before* the first
    fan-out (process pools ship it to workers exactly once); ``run_clients``
    and ``run_validators`` execute one round's tasks and return results in
    deterministic order, regardless of completion order.

    Every executor also carries a resilience layer (``bind_faults``):
    an optional :class:`~repro.fl.faults.FaultPlan` to replay failures
    from, a per-task straggler deadline, retry/rebuild budgets, and the
    :class:`~repro.fl.faults.ResilienceStats` ledger recording what the
    recovery machinery did.
    """

    def __init__(self) -> None:
        #: Injected-failure schedule (empty = fault-free).
        self.fault_plan: FaultPlan = FaultPlan.empty()
        #: Per-task deadline in seconds (``None`` = wait forever); a task
        #: exceeding it is written off as a straggler and recomputed.
        self.task_deadline_s: float | None = None
        self.max_task_retries: int = DEFAULT_TASK_RETRIES
        self.max_pool_rebuilds: int = DEFAULT_POOL_REBUILDS
        #: Recovery-incident ledger; shared down the demotion ladder so
        #: one run keeps one ledger.
        self.resilience = ResilienceStats()
        # Vote drops already accounted for, as (round, validator) pairs —
        # a pipelined replay re-submits the round and must not re-count.
        self._counted_drops: set[tuple[int, int]] = set()

    def bind_faults(
        self,
        plan: "FaultPlan | str | None" = None,
        task_deadline_s: float | None = None,
        max_task_retries: int | None = None,
        max_pool_rebuilds: int | None = None,
    ) -> None:
        """Attach a fault plan and/or tune the recovery budgets."""
        if plan is not None:
            self.fault_plan = FaultPlan.parse(plan)
        if task_deadline_s is not None:
            if task_deadline_s <= 0:
                raise ValueError(
                    f"task_deadline_s must be > 0, got {task_deadline_s}"
                )
            self.task_deadline_s = float(task_deadline_s)
        if max_task_retries is not None:
            self.max_task_retries = int(max_task_retries)
        if max_pool_rebuilds is not None:
            self.max_pool_rebuilds = int(max_pool_rebuilds)

    def _note(
        self, name: str, round_idx: int | None = None, n: int = 1, **attrs
    ) -> None:
        """Record ``n`` recovery incidents (ledger + traced mirror)."""
        self.resilience.inc(name, n)
        tracer = getattr(self, "_tracer", NULL_TRACER)
        if tracer.enabled:
            tracer.metrics.counter(f"resilience.{name}").inc(n)
            tracer.event(
                f"resilience.{name}", cat="resilience",
                round_idx=round_idx, **attrs,
            )

    def _fault_directive(
        self, round_idx: int, phase: str, index: int, hard: bool = False
    ) -> tuple[str, float] | None:
        """Consume this dispatch slot's planned fault, if any.

        Returns the directive :func:`_apply_fault` executes at task
        start.  ``hard=True`` (process-pool dispatch) maps a crash to a
        worker ``os._exit`` so the parent sees a genuine
        ``BrokenProcessPool``; otherwise the task raises
        :class:`InjectedWorkerCrash` in-process.
        """
        if not self.fault_plan:
            return None
        if self.fault_plan.take("crash", round_idx, phase, index) is not None:
            return ("exit" if hard else "raise", 0.0)
        delay = self.fault_plan.take("delay", round_idx, phase, index)
        if delay is not None:
            return ("delay", delay.param)
        return None

    def _dropped_votes(
        self, round_idx: int, validator_ids: Sequence[int]
    ) -> frozenset[int]:
        """Requested validators whose votes this round loses."""
        if not self.fault_plan:
            return frozenset()
        dropped = self.fault_plan.dropped(round_idx) & set(validator_ids)
        for vid in sorted(dropped):
            if (round_idx, vid) not in self._counted_drops:
                self._counted_drops.add((round_idx, vid))
                self._note("dropped_votes", round_idx=round_idx, validator=vid)
        return dropped

    def _count_abandoned_error(self, error: BaseException) -> None:
        """A written-off task died after abandonment: count + log it."""
        self._note("abandoned_task_errors", error=repr(error)[:200])

    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        """Register the populations and stores this executor fans out over.

        ``tracer`` is pure instrumentation and rebindable (unlike the
        populations): the simulation hands its tracer down here so the
        executor can time fan-out work and merge worker span batches.
        """

    @property
    def transport_bytes(self) -> int:
        """Cumulative model-weight bytes moved across process boundaries
        (codec-compressed payload bytes on the store path)."""
        return 0

    @property
    def raw_transport_bytes(self) -> int:
        """What :attr:`transport_bytes` would be without compression."""
        return 0

    @property
    def store(self) -> ModelStore | None:
        """The model store bound to this executor (None = unbound)."""
        return None

    def submit_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> PendingVotes:
        """Launch one round's votes without waiting for them.

        The base implementation defers the whole computation into
        ``collect()`` (an in-process executor has nothing to overlap);
        process pools override it with genuine task submission.
        """
        return PendingVotes(
            gather=lambda: self.run_validators(
                pool, validator_ids, context, round_idx, streams
            )
        )

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        """Collect ``produce_update`` results, ordered as ``contributor_ids``."""
        raise NotImplementedError

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        """Collect votes ``{validator_id: vote}`` for the given context."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialExecutor(RoundExecutor):
    """In-process execution in deterministic order (the default).

    Execution never crosses a process boundary, so the store is not used
    for transport — but a store bound here (by :func:`make_executor`) is
    still exposed through :attr:`store` so
    :class:`~repro.fl.simulation.FederatedSimulation` adopts it for the
    defense history instead of silently defaulting to a fresh in-process
    store the caller never sees.

    ``cohort_size >= 2`` gathers a round's cohortable honest clients into
    stacked training chunks (:mod:`repro.fl.cohort`) of at most that many
    models — bit-identical updates, single batched kernels.  The default
    (``None``) keeps the classic per-model loop: the sequential executor
    is the reference implementation, so it only stacks on request.
    """

    def __init__(self, cohort_size: int | None = None) -> None:
        super().__init__()
        if cohort_size is not None and cohort_size < 0:
            raise ValueError(f"cohort_size must be >= 0, got {cohort_size}")
        self.cohort_size = cohort_size
        self._store: ModelStore | None = None
        self._tracer: Tracer | NullTracer = NULL_TRACER

    def _inject_inline(self, round_idx: int, phase: str) -> None:
        """Apply this phase's planned faults in the calling thread.

        The injection point is *before* any task work and before any rng
        stream is touched, so a planned crash here consumes the entry and
        counts the retry directly — re-running the not-yet-started phase
        body is literally what catching :class:`InjectedWorkerCrash` and
        retrying would do, with zero recomputed state either way.
        """
        if not self.fault_plan:
            return
        if self.fault_plan.take("crash", round_idx, phase, 0) is not None:
            self._note("retries", round_idx=round_idx, phase=phase)
        delay = self.fault_plan.take("delay", round_idx, phase, 0)
        if delay is not None:
            # No deadline machinery in-process: the straggler just runs
            # late, exactly like a slow validator on the caller's thread.
            time.sleep(delay.param)

    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if store is not None:
            self._store = store
        if tracer is not None:
            self._tracer = tracer

    @property
    def store(self) -> ModelStore | None:
        return self._store

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        self._inject_inline(round_idx, "train")
        chunks = plan_cohorts(
            clients,
            contributor_ids,
            global_model,
            self.cohort_size if self.cohort_size is not None else 1,
        )
        results: dict[int, np.ndarray] = {}
        for chunk in chunks:
            with self._tracer.span(
                "train.cohort", cat="worker", round_idx=round_idx,
                clients=len(chunk),
            ):
                updates = cohort_updates(
                    global_model,
                    [clients[cid].dataset for cid in chunk],
                    config,
                    [streams.client_rng(round_idx, cid) for cid in chunk],
                )
            results.update(zip(chunk, updates))
        for cid in contributor_ids:
            if cid in results:
                continue
            with self._tracer.span(
                "train.client", cat="worker", round_idx=round_idx, client=cid
            ):
                results[cid] = clients[cid].produce_update(
                    global_model, config, round_idx,
                    streams.client_rng(round_idx, cid),
                )
        return [results[cid] for cid in contributor_ids]

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        self._inject_inline(round_idx, "validate")
        dropped = self._dropped_votes(round_idx, validator_ids)
        votes: dict[int, int] = {}
        for vid in validator_ids:
            if vid in dropped:
                continue
            with self._tracer.span(
                "validate.vote", cat="worker", round_idx=round_idx,
                validator=vid,
            ):
                votes[vid] = pool.get(vid).vote(
                    context, streams.validator_rng(round_idx, vid)
                )
        return votes


# ----------------------------------------------------------------------
# Worker-process side of the process-pool backend
# ----------------------------------------------------------------------
_W_CLIENTS: dict[int, Client] = {}
_W_VALIDATORS: dict[int, Validator] = {}
_W_TEMPLATE: Network | None = None
_W_MODELS: dict[int, Network] = {}
_W_STORE: ShmWorkerView | None = None
_W_REGISTRY: ClientRegistry | None = None
_W_TRACING = False
#: Locally recorded span rows, drained into each task's return payload:
#: ``(name, cat, start_ns, dur_ns, tid, round_idx, attrs)`` on the
#: worker's own monotonic clock.
_W_SPANS: list[tuple] = []
#: ``(attach_count, cache_hits)`` of the worker store view already
#: reported to the server (deltas ship with each drain).
_W_STORE_STATS = [0, 0]


def _init_worker(
    clients: dict[int, Client],
    validators: dict[int, Validator],
    template: Network | None,
    store_handle,
    registry: ClientRegistry | None = None,
    trace_enabled: bool = False,
) -> None:
    global _W_TEMPLATE, _W_STORE, _W_REGISTRY, _W_TRACING
    _W_CLIENTS.clear()
    _W_CLIENTS.update(clients)
    _W_VALIDATORS.clear()
    _W_VALIDATORS.update(validators)
    _W_MODELS.clear()
    _W_TEMPLATE = template
    _W_STORE = store_handle.attach() if store_handle is not None else None
    _W_REGISTRY = registry
    _W_TRACING = bool(trace_enabled)
    _W_SPANS.clear()
    _W_STORE_STATS[0] = _W_STORE_STATS[1] = 0


#: ``id()`` of the executor whose world the *parent-process* copy of the
#: worker globals currently mirrors (see :func:`_bind_local_worker`).
#: Pool workers never consult this; their initializer overwrites the
#: globals regardless of what a fork inherited.
_W_LOCAL_OWNER: int | None = None


def _bind_local_worker(executor: "ProcessPoolRoundExecutor") -> None:
    """Point this process's worker globals at ``executor``'s world.

    Local replay of a worker slice (straggler reassignment, pool-death
    fallback) then runs the *same module-level task functions* a pool
    worker runs, initialized from the same inputs — so a recomputed
    slice is bit-identical to the one the lost worker would have
    returned.
    """
    global _W_LOCAL_OWNER
    if _W_LOCAL_OWNER == id(executor):
        return
    handle = executor._store.worker_handle() if executor._use_store else None
    registry = (
        executor._registry.worker_view()
        if executor._registry is not None
        else None
    )
    _init_worker(
        executor._clients,
        executor._validators,
        executor._template,
        handle,
        registry,
        executor._tracer.enabled,
    )
    _W_LOCAL_OWNER = id(executor)


def _apply_fault(directive: tuple[str, float] | None) -> None:
    """Execute one injected-fault directive at task start.

    ``("delay", s)`` sleeps — a straggler; ``("raise", _)`` dies with
    :class:`InjectedWorkerCrash` (the thread/sequential recovery path);
    ``("exit", _)`` hard-kills the worker process so the pool's parent
    observes a genuine ``BrokenProcessPool``, exactly like a segfault or
    an OOM kill.  Directives fire *before* any task work and before any
    rng stream argument is touched, which is what makes retry-by-replay
    with the same keyed streams bit-identical.
    """
    if directive is None:
        return
    kind, param = directive
    if kind == "delay":
        time.sleep(param)
    elif kind == "raise":
        raise InjectedWorkerCrash("planned task crash (fault plan)")
    elif kind == "exit":  # pragma: no cover - dies before coverage flushes
        os._exit(13)


class _WorkerSpan:
    """Worker-local span context: appends a row to :data:`_W_SPANS`."""

    __slots__ = ("name", "cat", "round_idx", "attrs", "_start_ns")

    def __init__(self, name, cat, round_idx, attrs):
        self.name = name
        self.cat = cat
        self.round_idx = round_idx
        self.attrs = attrs
        self._start_ns = 0

    def __enter__(self) -> "_WorkerSpan":
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        _W_SPANS.append(
            (
                self.name,
                self.cat,
                self._start_ns,
                time.monotonic_ns() - self._start_ns,
                threading.get_ident(),
                self.round_idx,
                self.attrs,
            )
        )
        return False


def _wspan(name: str, round_idx: int | None = None, **attrs):
    """A worker-side span when tracing is on, else the shared no-op."""
    if not _W_TRACING:
        return NULL_TRACER.span(name)
    return _WorkerSpan(name, "worker", round_idx, attrs)


def _drain_worker_trace():
    """Pack this worker's recorded spans for the task result payload.

    Returns ``None`` when tracing is off (the common case, so untraced
    task results are byte-identical to the pre-tracing wire format plus
    one ``None``).  Otherwise ``(pid, sent_ns, rows, store_stats)``:
    ``sent_ns`` is this worker's monotonic clock at packing time (the
    server's offset estimator), ``store_stats`` the ``(attaches,
    cache_hits)`` delta of the arena view since the previous drain.
    """
    if not _W_TRACING:
        return None
    rows = list(_W_SPANS)
    _W_SPANS.clear()
    store_stats = None
    if _W_STORE is not None:
        store_stats = (
            _W_STORE.attach_count - _W_STORE_STATS[0],
            _W_STORE.cache_hits - _W_STORE_STATS[1],
        )
        _W_STORE_STATS[0] = _W_STORE.attach_count
        _W_STORE_STATS[1] = _W_STORE.cache_hits
    return (os.getpid(), time.monotonic_ns(), rows, store_stats)


def _worker_client(cid: int) -> Client:
    """Resolve a client id inside a worker.

    Registry-backed pools materialize the client's shard *here*, from the
    worker's own copy of the pool + partition spec — per-round IPC never
    carries a shard; :func:`_client_slice_task` discards the
    materializations when its slice completes.
    """
    client = _W_CLIENTS.get(cid)
    if client is None:
        assert _W_REGISTRY is not None, f"unknown client id {cid} in worker"
        client = _W_REGISTRY[cid]
    return client


def _materialize(ref: ModelRef) -> Network:
    """A fresh ``Network`` carrying the referenced weights.

    Arena attachments are cached in the worker view keyed by version and
    dropped on the server's release path (the eviction floor travels with
    every task), so a version read twice never re-opens its segment.
    """
    assert _W_TEMPLATE is not None, "worker used before initialization"
    model = _W_TEMPLATE.clone()
    version, blob = ref
    if blob is not None:
        # Blobs are self-describing codec segments (same format the store
        # arena holds), decoded through the process-global registry.
        model.set_flat(decode_segment(CompressedSegment.from_buffer(blob)))
    else:
        assert _W_STORE is not None, "version ref without an attached store"
        assert version is not None
        model.set_flat(_W_STORE.get(version, _W_TEMPLATE.num_parameters))
    return model


def _evict_retired(live_floor: int | None) -> None:
    """Drop cached attachments for versions the server has retired."""
    if _W_STORE is not None:
        _W_STORE.evict_below(live_floor)


def _client_slice_task(
    cohorts: Sequence[Sequence[int]],
    singles: Sequence[int],
    model_ref: ModelRef,
    config: LocalTrainingConfig,
    round_idx: int,
    cohort_seed_seqs: Sequence[Sequence[np.random.SeedSequence]],
    single_seed_seqs: Sequence[np.random.SeedSequence],
    live_floor: int | None,
    fault: tuple[str, float] | None = None,
) -> tuple[list[tuple[int, np.ndarray]], tuple | None]:
    """Train one worker's whole slice of a round's client fan-out.

    One task per worker per round: the slice carries this worker's cohort
    chunks (stacked training) *and* its per-model clients, so the global
    model is materialized once for everything and dispatch overhead is
    O(workers), not O(clients).  Returns ``(results, trace_payload)``;
    the payload is ``None`` unless the pool was initialized with tracing
    on (:func:`_drain_worker_trace`).  ``fault`` is the slot's injected
    directive, applied before any work (:func:`_apply_fault`).
    """
    _apply_fault(fault)
    _evict_retired(live_floor)
    with _wspan("materialize", round_idx):
        model = _materialize(model_ref)
    out: list[tuple[int, np.ndarray]] = []
    try:
        for client_ids, seed_seqs in zip(cohorts, cohort_seed_seqs):
            with _wspan("train.cohort", round_idx, clients=len(client_ids)):
                updates = cohort_updates(
                    model,
                    [_worker_client(cid).dataset for cid in client_ids],
                    config,
                    [np.random.default_rng(seq) for seq in seed_seqs],
                )
            out.extend(zip(client_ids, updates))
        for cid, seq in zip(singles, single_seed_seqs):
            with _wspan("train.client", round_idx, client=cid):
                update = _worker_client(cid).produce_update(
                    model, config, round_idx, np.random.default_rng(seq)
                )
            out.append((cid, update))
    finally:
        # Registry-backed workers hold shards only for the slice's
        # lifetime — worker RSS is bounded by the slice, not the round.
        if _W_REGISTRY is not None:
            _W_REGISTRY.end_round()
    return out, _drain_worker_trace()


def _resolve_history(history_refs: Sequence[ModelRef]) -> list[int]:
    """Materialize history models into the per-version worker cache.

    Across rounds the history shifts by one entry, so all but one model
    are already cached; entries older than the oldest live history version
    are dropped.  An empty history (defense active before any model was
    accepted) resolves to an empty list and must fall through to the
    validator, which abstains on it — exactly like the sequential path.
    """
    history_versions = [version for version, _ in history_refs]
    for ref in history_refs:
        version = ref[0]
        assert version is not None  # history entries are always versioned
        if version not in _W_MODELS:
            _W_MODELS[version] = _materialize(ref)
    if history_versions:
        oldest = min(history_versions)
        for version in [v for v in _W_MODELS if v < oldest]:
            del _W_MODELS[version]
    return history_versions


def _materialize_candidate(candidate_ref: ModelRef) -> Network:
    """The round's candidate, warm-cached under its version when it has one.

    An accepted candidate becomes the next round's newest history entry,
    so caching it here (and its arena attachment) makes the steady-state
    per-round materialization cost exactly one new model.  Rejected
    versions never reappear and age out when the eviction floor passes
    them (versions are monotonic, so the pin is bounded by the look-back
    window).
    """
    version = candidate_ref[0]
    if version is not None and version in _W_MODELS:
        return _W_MODELS[version]
    model = _materialize(candidate_ref)
    if version is not None:
        _W_MODELS[version] = model
    return model


def _validate_one(
    validator_id: int,
    candidate: Network,
    history_versions: Sequence[int],
    round_idx: int,
    seed_seq: np.random.SeedSequence,
    profile_hints: Mapping[int, object],
) -> tuple[int, dict[int, object], object | None]:
    """One validator vote; returns ``(vote, new_profiles, candidate_profile)``.

    ``new_profiles`` are the history-version profiles this task computed
    beyond the server's hints, ``candidate_profile`` is the (yet
    uncommitted) candidate's profile — both flow back into the server's
    shared :class:`~repro.fl.model_store.ValidatorProfileTable`.
    """
    from repro.core.validation import ValidationContext

    validator = _W_VALIDATORS[validator_id]
    seed_cache = getattr(validator, "seed_profile_cache", None)
    if callable(seed_cache) and profile_hints:
        seed_cache(profile_hints)
    context = ValidationContext(
        candidate=candidate,
        history=[(v, _W_MODELS[v]) for v in history_versions],
    )
    rng = np.random.default_rng(seed_seq)
    vote = validator.vote(context, rng)

    new_profiles: dict[int, object] = {}
    cached = getattr(validator, "cached_profiles", None)
    if callable(cached):
        missing = [v for v in history_versions if v not in profile_hints]
        new_profiles = cached(missing)
    take_pending = getattr(validator, "take_pending_profile", None)
    candidate_profile = take_pending() if callable(take_pending) else None
    return vote, new_profiles, candidate_profile


def _validator_task(
    validator_id: int,
    candidate_ref: ModelRef,
    history_refs: Sequence[ModelRef],
    round_idx: int,
    seed_seq: np.random.SeedSequence,
    profile_hints: Mapping[int, object],
    live_floor: int | None,
) -> tuple[int, dict[int, object], object | None]:
    """One validator's vote as a standalone task (single-validator slice)."""
    _evict_retired(live_floor)
    history_versions = _resolve_history(history_refs)
    candidate = _materialize_candidate(candidate_ref)
    return _validate_one(
        validator_id, candidate, history_versions, round_idx, seed_seq,
        profile_hints,
    )


def _validator_slice_task(
    validator_ids: Sequence[int],
    candidate_ref: ModelRef,
    history_refs: Sequence[ModelRef],
    round_idx: int,
    seed_seqs: Sequence[np.random.SeedSequence],
    profile_hints: Mapping[int, Mapping[int, object]],
    live_floor: int | None,
    fault: tuple[str, float] | None = None,
) -> tuple[list[tuple[int, int, dict[int, object], object | None]], tuple | None]:
    """Vote one worker's whole slice of a round's validators in one task.

    The candidate and history are materialized once per slice (validators
    only read them), so per-round decode/attach work is O(new versions)
    and dispatch overhead is O(workers), not O(validators).  Returns
    ``(results, trace_payload)`` like :func:`_client_slice_task`.
    """
    _apply_fault(fault)
    _evict_retired(live_floor)
    with _wspan("materialize", round_idx):
        history_versions = _resolve_history(history_refs)
        candidate = _materialize_candidate(candidate_ref)
    results = []
    for vid, seq in zip(validator_ids, seed_seqs):
        with _wspan("validate.vote", round_idx, validator=vid):
            vote, new_profiles, candidate_profile = _validate_one(
                vid, candidate, history_versions, round_idx, seq,
                profile_hints.get(vid, {}),
            )
        results.append((vid, vote, new_profiles, candidate_profile))
    return results, _drain_worker_trace()


def _plan_slices(
    cohorts: Sequence[Sequence[int]],
    singles: Sequence[int],
    workers: int,
) -> list[tuple[list[list[int]], list[int]]]:
    """Pack cohort chunks and per-model clients into <= ``workers`` slices.

    Greedy least-loaded assignment by client count, deterministic (ties go
    to the lowest slice index), so each worker receives exactly one task
    per round phase carrying its whole share of the fan-out.
    """
    count = len(cohorts) + len(singles)
    if count == 0:
        return []
    slices: list[tuple[list[list[int]], list[int]]] = [
        ([], []) for _ in range(min(workers, count))
    ]
    loads = [0] * len(slices)
    for chunk in cohorts:
        index = loads.index(min(loads))
        slices[index][0].append(list(chunk))
        loads[index] += len(chunk)
    for cid in singles:
        index = loads.index(min(loads))
        slices[index][1].append(cid)
        loads[index] += 1
    return [s for s in slices if s[0] or s[1]]


def _traced_call(tracer, name, round_idx, attrs, fn, *args):
    """Run ``fn(*args)`` inside a span — the thread engine's task wrapper.

    With the null tracer this is one extra frame and a shared no-op
    context manager, so untraced thread rounds stay effectively free.
    """
    with tracer.span(name, cat="worker", round_idx=round_idx, **attrs):
        return fn(*args)


def _resilient_call(executor, fault, tracer, name, round_idx, attrs, fn, *args):
    """Thread-engine task body: fault injection, then retry-by-replay.

    The injected directive applies only to the first attempt (one-shot,
    like the plan entry that produced it) and fires *before* ``fn`` runs
    or any of its rng arguments is touched, so a retry recomputes from
    pristine keyed streams — bit-identical to the fault-free task.
    """
    attempt = 0
    while True:
        try:
            _apply_fault(fault)
            return _traced_call(tracer, name, round_idx, attrs, fn, *args)
        except InjectedWorkerCrash:
            fault = None
            attempt += 1
            executor._note("retries", round_idx=round_idx, task=name)
            if attempt > executor.max_task_retries:  # pragma: no cover
                raise


def _chunk_evenly(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, balanced runs."""
    items = list(items)
    if not items:
        return []
    parts = min(parts, len(items))
    base, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class ProcessPoolRoundExecutor(RoundExecutor):
    """Fan rounds out over worker processes, one task per worker per phase.

    Parameters
    ----------
    workers:
        Worker-process count (>= 2; use :func:`make_executor` to fall back
        to :class:`SequentialExecutor` for 0/1).
    cohort_size:
        Stack up to this many cohortable honest clients per cohort chunk
        (:mod:`repro.fl.cohort`); chunks spread over the workers so each
        stacks its slice of the fan-out.  ``None`` (the default) stacks
        the whole eligible fan-out; ``0``/``1`` disables stacking.
    """

    def __init__(self, workers: int, cohort_size: int | None = None) -> None:
        super().__init__()
        if workers < 2:
            raise ValueError(
                f"ProcessPoolRoundExecutor needs >= 2 workers, got {workers}; "
                "use make_executor() for an automatic sequential fallback"
            )
        if cohort_size is not None and cohort_size < 0:
            raise ValueError(f"cohort_size must be >= 0, got {cohort_size}")
        self.workers = workers
        self.cohort_size = cohort_size
        #: Monotonic pool generation; bumped on every rebuild so several
        #: futures of one breakage trigger exactly one teardown.
        self._pool_epoch = 0
        #: Set once the rebuild budget is exhausted: the thread engine
        #: this executor degraded to, which owns every later round.
        self._demoted: "ThreadPoolRoundExecutor | None" = None
        self._clients: dict[int, Client] = {}
        self._registry: ClientRegistry | None = None
        self._validators: dict[int, Validator] = {}
        self._template: Network | None = None
        self._store: ModelStore | None = None
        self._profile_table: ValidatorProfileTable | None = None
        self._bound: set[str] = set()
        self._pool: ProcessPoolExecutor | None = None
        self._held_global: int | None = None
        self._pipe_bytes = 0
        self._pipe_raw_bytes = 0
        self._tracer: Tracer | NullTracer = NULL_TRACER
        #: Deferred-release list: abandoned vote handles whose tasks are
        #: still in flight; their store references drop at the next reap.
        self._abandoned: list[PendingVotes] = []

    # ------------------------------------------------------------------
    # Population binding / pool lifecycle
    # ------------------------------------------------------------------
    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if tracer is not None:
            if self._pool is not None and tracer.enabled and not (
                self._tracer.enabled
            ):
                # Worker tracing is decided at pool start (initargs);
                # enabling it later would silently lose worker spans.
                raise RuntimeError(
                    "cannot enable tracing after the pool started"
                )
            self._tracer = tracer
        if (
            clients is None
            and validator_pool is None
            and template is None
            and store is None
            and profile_table is None
        ):
            return
        if self._pool is not None:
            raise RuntimeError("cannot bind populations after the pool started")
        # Each population binds exactly once: workers see one consistent
        # snapshot, and sharing an executor across simulations fails loudly
        # instead of silently running the first simulation against the
        # second's clients.
        for field, provided in (
            ("clients", clients),
            ("validator_pool", validator_pool),
            ("template", template),
            ("store", store),
            ("profile_table", profile_table),
        ):
            if provided is not None and field in self._bound:
                raise RuntimeError(
                    f"executor already has {field} bound; "
                    "use one executor per simulation"
                )
        if clients is not None:
            self._bound.add("clients")
            if isinstance(clients, ClientRegistry):
                # Virtual population: keep the handle; workers receive a
                # picklable view and materialize their own shards.
                self._registry = clients
            else:
                self._clients = {
                    c.client_id: c for c in clients if _is_parallel_safe(c)
                }
        if validator_pool is not None:
            self._bound.add("validator_pool")
            self._validators = {
                vid: validator
                for vid, validator in validator_pool.as_dict().items()
                if _is_parallel_safe(validator)
            }
        if template is not None:
            self._bound.add("template")
            self._template = template
        if store is not None:
            self._bound.add("store")
            self._store = store
        if profile_table is not None:
            self._bound.add("profile_table")
            self._profile_table = profile_table

    @property
    def _use_store(self) -> bool:
        """Ship version keys (shared arena) instead of pickled blobs?"""
        return self._store is not None and self._store.shareable

    @property
    def store(self) -> ModelStore | None:
        return self._store

    @property
    def transport_bytes(self) -> int:
        total = self._pipe_bytes
        if self._use_store:
            # Every byte copied into the shared arena is readable by all
            # workers at once — that copy *is* the transport (compressed
            # payload bytes when the store runs a non-identity codec).
            total += self._store.bytes_published
        return total

    @property
    def raw_transport_bytes(self) -> int:
        total = self._pipe_raw_bytes
        if self._use_store:
            total += self._store.raw_bytes_published
        return total

    @property
    def _codec(self) -> WeightCodec:
        """The weight codec blobs are encoded with (the bound store's)."""
        codec = getattr(self._store, "codec", None)
        return codec if codec is not None else IdentityCodec()

    def _encode_blob(self, model: Network) -> tuple[bytes, int]:
        """Codec-encoded pipe blob + the raw policy-dtype byte count it covers.

        Delta codecs fall back to their dense form here (a pipe blob has
        no resolvable parent version on the far side).
        """
        flat = model.get_flat()
        return self._codec.encode(flat).to_bytes(), flat.nbytes

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._template is None:
                raise RuntimeError(
                    "executor needs a template network; bind(template=...) "
                    "first (FederatedSimulation does this automatically)"
                )
            # The template travels once, as a pickled Network (float64
            # arrays pickle losslessly); per-round weights travel as store
            # version keys or, without a shareable store, as blobs.
            handle = self._store.worker_handle() if self._use_store else None
            worker_registry = (
                self._registry.worker_view() if self._registry is not None else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self._clients,
                    self._validators,
                    self._template,
                    handle,
                    worker_registry,
                    self._tracer.enabled,
                ),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for pending in self._abandoned:  # all tasks done after shutdown
            pending.wait()
        self._abandoned.clear()
        if self._demoted is not None:
            self._demoted.close()
        if self._held_global is not None:
            if self._store is not None and self._held_global in self._store:
                self._store.release(self._held_global)
            self._held_global = None
        self._reap_shm_orphans()

    def _defer_release(self, pending: PendingVotes) -> None:
        self._abandoned.append(pending)

    def _reap_abandoned(self) -> None:
        self._abandoned = [p for p in self._abandoned if not p.reap()]

    # ------------------------------------------------------------------
    # Crash recovery / degradation ladder
    # ------------------------------------------------------------------
    def _reap_shm_orphans(self, round_idx: int | None = None) -> None:
        """Unlink ``/dev/shm`` segments stranded by dead processes.

        Crash hygiene for the shared arena: a worker (or a whole previous
        run) that died while pinning versions must not leak tmpfs pages
        forever.  This run's own arenas are protected by prefix.
        """
        prefix = getattr(self._store, "name_prefix", None)
        reaped = reap_orphan_segments((prefix,) if prefix else ())
        if reaped:
            self._note("orphans_reaped", round_idx=round_idx, n=len(reaped))

    def _recover_pool(self, epoch: int, round_idx: int | None = None) -> bool:
        """Tear down a dead pool; ``True`` while the budget allows a new one.

        Epoch-tagged for idempotence: every future of one breakage raises
        ``BrokenExecutor``, but only the first observer (submitted against
        the still-current epoch) tears down, reaps and counts — late
        observers just resubmit against the already-rebuilt pool.
        """
        if epoch == self._pool_epoch:
            pool, self._pool = self._pool, None
            self._pool_epoch += 1
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self._note("pool_rebuilds", round_idx=round_idx)
            # The dead workers' futures all count as done now, so any
            # deferred references they pinned can drop, and segments
            # stranded by processes that no longer exist get unlinked.
            self._reap_abandoned()
            self._reap_shm_orphans(round_idx)
        return self.resilience.pool_rebuilds <= self.max_pool_rebuilds

    def _demote_to_thread(
        self, round_idx: int | None = None
    ) -> "ThreadPoolRoundExecutor":
        """Give up on worker processes: hand every later round to threads.

        The parent holds the exact populations it shipped to the pool, so
        the thread engine is populated directly from them; the fault plan,
        deadlines and the resilience ledger carry over — one run, one
        ledger, no matter how far down the ladder it slid.
        """
        if self._demoted is None:
            demoted = ThreadPoolRoundExecutor(
                self.workers, cohort_size=self.cohort_size
            )
            demoted._clients = dict(self._clients)
            demoted._registry = self._registry
            demoted._validators = dict(self._validators)
            demoted._vote_locks = {
                vid: threading.Lock() for vid in demoted._validators
            }
            demoted._store = self._store
            demoted._tracer = self._tracer
            demoted.fault_plan = self.fault_plan
            demoted.task_deadline_s = self.task_deadline_s
            demoted.max_task_retries = self.max_task_retries
            demoted.resilience = self.resilience
            demoted._counted_drops = self._counted_drops
            self._demoted = demoted
            self._note("engine_demotions", round_idx=round_idx, to="thread")
        return self._demoted

    def _result_with_deadline(self, future: Future):
        """``future.result()`` under the straggler deadline (if any)."""
        if self.task_deadline_s is None:
            return future.result()
        return future.result(timeout=self.task_deadline_s)

    def _run_slice_local(self, task_fn, plan: tuple):
        """Recompute one worker slice in the parent process.

        Runs the *same* module-level task function on the same arguments
        against locally bound worker globals (:func:`_bind_local_worker`),
        so the result is bit-identical to what the lost worker would have
        returned.
        """
        return _traced_call(
            self._tracer, "recover.local_replay", None, {},
            self._run_slice_local_inner, task_fn, plan,
        )

    def _run_slice_local_inner(self, task_fn, plan: tuple):
        _bind_local_worker(self)
        return task_fn(*plan)

    def _abandon_client_straggler(self, future: Future, model_ref: ModelRef) -> None:
        """Write off a straggling client slice without dropping its refs.

        The straggler worker may still be attached to the shipped global
        model version; a deferred handle pins it until the task actually
        finishes (and surfaces the task's eventual error through the
        ``abandoned_task_errors`` counter).
        """
        version = model_ref[0]
        held: int | None = None
        if (
            version is not None
            and self._store is not None
            and not self._store.closed
            and version in self._store
        ):
            self._store.acquire(version)
            held = version

        def cleanup() -> None:
            if (
                held is not None
                and self._store is not None
                and not self._store.closed
                and held in self._store
            ):
                self._store.release(held)

        PendingVotes(
            gather=lambda: {},
            futures=(future,),
            cleanup=cleanup,
            on_abandon=self._defer_release,
            on_error=self._count_abandoned_error,
        ).abandon()

    # ------------------------------------------------------------------
    # Round fan-out
    # ------------------------------------------------------------------
    def _global_model_ref(
        self, global_model: Network
    ) -> tuple[ModelRef, int, int]:
        """Reference for this round's global model + per-task pipe cost
        (compressed and raw bytes)."""
        if self._use_store:
            # Content-deduplicated publish: right after a committed round
            # the global model *is* the latest history entry, so this
            # usually resolves to an already-live version and ships zero
            # new bytes.  The executor keeps one reference so undefended
            # runs (no history holding the version) stay resolvable, and
            # trades it for the next round's version.
            version = self._store.publish(global_model.get_flat())
            if self._held_global is not None:
                self._store.release(self._held_global)
            self._held_global = version
            return (version, None), 0, 0
        blob, raw = self._encode_blob(global_model)
        return (None, blob), len(blob), raw

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        if self._demoted is not None:
            return self._demoted.run_clients(
                clients, contributor_ids, global_model, config, round_idx,
                streams,
            )
        self._reap_abandoned()
        self._ensure_pool()  # fails loudly when no template is bound
        if self._registry is not None:
            remote_ids = [
                cid
                for cid in contributor_ids
                if self._registry.is_parallel_safe(cid)
            ]
        else:
            remote_ids = [cid for cid in contributor_ids if cid in self._clients]
        model_ref, pipe_cost, pipe_raw = self._global_model_ref(global_model)
        live_floor = self._store.min_live_version() if self._use_store else None
        # Cohort chunks: each worker stacks its slice of the parallel-safe
        # fan-out (cohort_size=None stacks everything eligible, spread
        # evenly over the workers).  A registry plans from metadata — no
        # parent-side materialization.
        chunks = plan_cohorts(
            self._registry if self._registry is not None else self._clients,
            remote_ids,
            global_model,
            self.cohort_size if self.cohort_size is not None else len(remote_ids),
            spread_over=self.workers,
        )
        cohorted = {cid for chunk in chunks for cid in chunk}
        singles = [cid for cid in remote_ids if cid not in cohorted]
        # Batched dispatch: exactly one task per worker, carrying that
        # worker's cohort chunks and per-model clients together.  The
        # fully built argument tuples are kept so crash recovery can
        # resubmit (or locally replay) a slice bit-identically.
        slice_plans: list[tuple] = [
            (
                slice_cohorts,
                slice_singles,
                model_ref,
                config,
                round_idx,
                [
                    [streams.client_seq(round_idx, cid) for cid in chunk]
                    for chunk in slice_cohorts
                ],
                [streams.client_seq(round_idx, cid) for cid in slice_singles],
                live_floor,
            )
            for slice_cohorts, slice_singles in _plan_slices(
                chunks, singles, self.workers
            )
        ]
        self._pipe_bytes += pipe_cost * len(slice_plans)
        self._pipe_raw_bytes += pipe_raw * len(slice_plans)
        remote = cohorted.union(singles)
        # Entities that must run in the parent (stateful / unpicklable)
        # overlap with the workers' wall-clock, then everything is gathered
        # in contributor order so results are order-deterministic.
        results: dict[int, np.ndarray] = {
            cid: clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
            if cid not in remote
        }
        for rows, trace_payload in self._run_client_slices(
            slice_plans, round_idx
        ):
            self._tracer.merge_worker(trace_payload)
            results.update(rows)
        return [results[cid] for cid in contributor_ids]

    def _run_client_slices(
        self, slice_plans: list[tuple], round_idx: int
    ) -> list[tuple]:
        """Execute the round's training slices, surviving crashes/stragglers.

        A straggling slice (deadline exceeded) is written off and replayed
        locally; a dead pool is rebuilt and the whole phase resubmitted —
        the plans are pure argument tuples over keyed rng streams, so any
        re-execution is bit-identical and nothing is merged until the
        phase as a whole succeeded (no duplicated worker spans).
        """
        if not slice_plans:
            return []
        attempts = 0
        while True:
            epoch = self._pool_epoch
            try:
                pool = self._ensure_pool()
                futures: list[Future] = [
                    pool.submit(
                        _client_slice_task,
                        *plan,
                        self._fault_directive(round_idx, "train", i, hard=True),
                    )
                    for i, plan in enumerate(slice_plans)
                ]
                collected: list[tuple] = []
                for index, future in enumerate(futures):
                    try:
                        collected.append(self._result_with_deadline(future))
                    except FuturesTimeout:
                        self._note(
                            "straggler_reassignments", round_idx=round_idx,
                            phase="train", slot=index,
                        )
                        self._abandon_client_straggler(
                            future, slice_plans[index][2]
                        )
                        collected.append(
                            self._run_slice_local(
                                _client_slice_task, slice_plans[index]
                            )
                        )
                return collected
            except BrokenExecutor:
                attempts += 1
                self._note(
                    "retries", round_idx=round_idx, n=len(slice_plans),
                    phase="train",
                )
                if (
                    self._recover_pool(epoch, round_idx)
                    and attempts <= self.max_task_retries
                ):
                    continue
                # Budget exhausted: finish this round in the parent, then
                # demote permanently so later rounds skip the dead pool.
                collected = [
                    self._run_slice_local(_client_slice_task, plan)
                    for plan in slice_plans
                ]
                self._demote_to_thread(round_idx)
                return collected

    def submit_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> PendingVotes:
        if self._demoted is not None:
            return self._demoted.submit_validators(
                pool, validator_ids, context, round_idx, streams
            )
        self._reap_abandoned()
        history_versions = [version for version, _ in context.history]
        held_versions: list[int] = []
        if self._use_store:
            candidate_version = context.candidate_version
            if candidate_version is None or candidate_version not in self._store:
                # Standalone contexts (defense not staged through a store)
                # publish the candidate here; the initial publish reference
                # is the hold, released with the handle.
                candidate_version = self._store.publish_new(
                    context.candidate.get_flat()
                )
            else:
                self._store.acquire(candidate_version)
            held_versions.append(candidate_version)
            candidate_ref: ModelRef = (candidate_version, None)
            history_refs: list[ModelRef] = []
            per_task_pipe = 0
            per_task_raw = 0
            for version, model in context.history:
                if version in self._store:
                    # Hold every version shipped by key: a rollback may
                    # release the history's reference while these tasks are
                    # still in flight; this hold keeps the segment mapped
                    # (and the worker eviction floor below it) until then.
                    self._store.acquire(version)
                    held_versions.append(version)
                    history_refs.append((version, None))
                else:
                    # Same standalone case for the history: a version the
                    # arena cannot resolve travels as a blob (keyed by its
                    # history version so worker caches stay correct).
                    blob, raw = self._encode_blob(model)
                    history_refs.append((version, blob))
                    per_task_pipe += len(blob)
                    per_task_raw += raw
        else:
            candidate_blob, candidate_raw = self._encode_blob(context.candidate)
            history_blobs = [
                self._encode_blob(model) for _, model in context.history
            ]
            candidate_ref = (None, candidate_blob)
            history_refs = list(
                zip(history_versions, (blob for blob, _ in history_blobs))
            )
            per_task_pipe = len(candidate_blob) + sum(
                len(blob) for blob, _ in history_blobs
            )
            per_task_raw = candidate_raw + sum(raw for _, raw in history_blobs)
        live_floor = self._store.min_live_version() if self._use_store else None

        table = self._profile_table
        dropped = self._dropped_votes(round_idx, validator_ids)
        remote_vids = [
            vid
            for vid in validator_ids
            if vid in self._validators and vid not in dropped
        ]
        # Batched dispatch: one contiguous slice of validators per worker,
        # sharing a single candidate/history materialization per task.
        # The argument tuples are kept so crash recovery can resubmit (or
        # locally replay) any slice bit-identically.
        slice_plans: list[tuple] = [
            (
                vids,
                candidate_ref,
                history_refs,
                round_idx,
                [streams.validator_seq(round_idx, vid) for vid in vids],
                {vid: table.hints(vid, history_versions) for vid in vids}
                if table is not None
                else {},
                live_floor,
            )
            for vids in _chunk_evenly(remote_vids, self.workers)
        ]
        # One mutable [future, submit_epoch] slot per slice; a slot whose
        # submission found the pool already broken holds ``None`` and is
        # recovered at gather time.
        futures: list[Future] = []
        slots: list[list] = []
        try:
            executor_pool = self._ensure_pool()
            for index, plan in enumerate(slice_plans):
                future = executor_pool.submit(
                    _validator_slice_task,
                    *plan,
                    self._fault_directive(
                        round_idx, "validate", index, hard=True
                    ),
                )
                futures.append(future)
                slots.append([future, self._pool_epoch])
        except BrokenExecutor:
            while len(slots) < len(slice_plans):
                slots.append([None, self._pool_epoch])
        self._pipe_bytes += per_task_pipe * len(slice_plans)
        self._pipe_raw_bytes += per_task_raw * len(slice_plans)
        remote = set(remote_vids)

        def gather() -> dict[int, int]:
            # Parent-side (non-parallel-safe) votes run while the workers
            # chew, then everything is gathered in id order.
            collected: dict[int, int] = {
                vid: pool.get(vid).vote(
                    context, streams.validator_rng(round_idx, vid)
                )
                for vid in validator_ids
                if vid not in remote and vid not in dropped
            }
            for index, plan in enumerate(slice_plans):
                rows, trace_payload = self._collect_validator_slice(
                    slots[index], plan, round_idx, index
                )
                self._tracer.merge_worker(trace_payload)
                for vid, vote, new_profiles, candidate_profile in rows:
                    collected[vid] = vote
                    if table is None:
                        continue
                    for version, profile in new_profiles.items():
                        table.put(vid, version, profile)
                    if candidate_profile is not None and (
                        context.candidate_version is not None
                    ):
                        table.stage(
                            vid, context.candidate_version, candidate_profile
                        )
            return {
                vid: collected[vid] for vid in validator_ids if vid in collected
            }

        def cleanup() -> None:
            if self._store is None or self._store.closed:
                return
            for version in held_versions:
                self._store.release(version)

        return PendingVotes(
            gather=gather,
            futures=futures,
            cleanup=cleanup,
            on_abandon=self._defer_release,
            on_error=self._count_abandoned_error,
        )

    def _collect_validator_slice(
        self, slot: list, plan: tuple, round_idx: int, index: int
    ) -> tuple:
        """One validation slice's rows, surviving stragglers and pool death.

        A straggler (deadline exceeded) is written off and replayed
        locally — its future stays in the vote handle, whose release
        auto-defers until the abandoned task actually finished, so the
        store references it may still read stay alive.  A dead pool is
        rebuilt and the slice resubmitted while the budget lasts, then
        the executor demotes and replays locally.
        """
        attempts = 0
        while True:
            future, epoch = slot
            if future is None:
                return self._run_slice_local(_validator_slice_task, plan)
            try:
                return self._result_with_deadline(future)
            except FuturesTimeout:
                self._note(
                    "straggler_reassignments", round_idx=round_idx,
                    phase="validate", slot=index,
                )
                return self._run_slice_local(_validator_slice_task, plan)
            except BrokenExecutor:
                attempts += 1
                self._note("retries", round_idx=round_idx, phase="validate")
                if (
                    not self._recover_pool(epoch, round_idx)
                    or attempts > self.max_task_retries
                ):
                    self._demote_to_thread(round_idx)
                    return self._run_slice_local(_validator_slice_task, plan)
                try:
                    slot[0] = self._ensure_pool().submit(
                        _validator_slice_task, *plan
                    )
                    slot[1] = self._pool_epoch
                except BrokenExecutor:  # pragma: no cover - raced breakage
                    slot[0] = None

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        return self.submit_validators(
            pool, validator_ids, context, round_idx, streams
        ).collect()


class ThreadPoolRoundExecutor(RoundExecutor):
    """Fan rounds out over in-process threads — zero IPC, zero pickling.

    The training and validation kernels are numpy/BLAS-bound and release
    the GIL, so a thread pool overlaps them while every object stays
    live: clients and validators are used directly (their caches persist
    across rounds exactly like the sequential path), models are shared by
    reference, and :attr:`transport_bytes` is structurally zero.

    Thread-safety contract
    ----------------------
    Only ``parallel_safe`` entities run on pool threads; everything else
    runs in the calling thread, like the process pool's parent fallback.
    Candidate and history networks are shared read-only across voting
    threads (eval-mode forward does not mutate layer state), and a
    per-validator lock serializes votes of the *same* validator across
    overlapping pipelined rounds, so a validator's instance state is only
    ever mutated under its lock or from the simulation thread between
    rounds.

    Cohort stacking defaults to the whole eligible fan-out in a single
    stacked task (``cohort_size=None``): the stacked kernels already feed
    BLAS batched matmuls (which multithread internally), so splitting the
    stack across Python threads would mostly duplicate the Python-side
    training loop instead of adding parallelism.
    """

    def __init__(self, workers: int, cohort_size: int | None = None) -> None:
        super().__init__()
        if workers < 2:
            raise ValueError(
                f"ThreadPoolRoundExecutor needs >= 2 workers, got {workers}; "
                "use make_executor() for an automatic sequential fallback"
            )
        if cohort_size is not None and cohort_size < 0:
            raise ValueError(f"cohort_size must be >= 0, got {cohort_size}")
        self.workers = workers
        self.cohort_size = cohort_size
        self._clients: dict[int, Client] = {}
        self._registry: ClientRegistry | None = None
        self._validators: dict[int, Validator] = {}
        self._store: ModelStore | None = None
        self._bound: set[str] = set()
        self._pool: ThreadPoolExecutor | None = None
        self._vote_locks: dict[int, threading.Lock] = {}
        self._tracer: Tracer | NullTracer = NULL_TRACER
        #: Bottom rung of the degradation ladder: once the thread pool
        #: cannot accept work any more, tasks run on the calling thread.
        self._inline = False

    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if tracer is not None:
            # Threads share the server's clock and tracer: spans record
            # directly, no batching or offset normalization needed.
            self._tracer = tracer
        # Same one-shot semantics as the process pool: sharing an executor
        # across simulations fails loudly.  Template and profile table are
        # accepted for interface parity but unused — threads read the live
        # objects, so there is nothing to ship or to shuttle back.
        for field, provided in (
            ("clients", clients),
            ("validator_pool", validator_pool),
            ("store", store),
        ):
            if provided is not None and field in self._bound:
                raise RuntimeError(
                    f"executor already has {field} bound; "
                    "use one executor per simulation"
                )
        if clients is not None:
            self._bound.add("clients")
            if isinstance(clients, ClientRegistry):
                # Zero-IPC engine: materialization happens in the calling
                # thread (shard lists are built before submit), so the
                # registry is used directly — no worker view needed.
                self._registry = clients
            else:
                self._clients = {
                    c.client_id: c for c in clients if _is_parallel_safe(c)
                }
        if validator_pool is not None:
            self._bound.add("validator_pool")
            self._validators = {
                vid: validator
                for vid, validator in validator_pool.as_dict().items()
                if _is_parallel_safe(validator)
            }
            self._vote_locks = {vid: threading.Lock() for vid in self._validators}
        if store is not None:
            self._bound.add("store")
            self._store = store

    @property
    def store(self) -> ModelStore | None:
        return self._store

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-round"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _submit(self, fn, *args) -> Future:
        """Submit to the thread pool, degrading to the calling thread.

        A pool that cannot accept work any more (shut down / interpreter
        teardown mid-run) is the thread engine's flavor of pool death:
        instead of failing the round, the engine demotes itself to
        sequential-in-place execution — same task wrappers, same keyed
        streams, so the results do not change.
        """
        if not self._inline:
            try:
                return self._ensure_pool().submit(fn, *args)
            except RuntimeError:
                self._inline = True
                self._note("engine_demotions", to="sequential")
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:
            future.set_exception(error)
        return future

    def _thread_result(self, future: Future, recompute, round_idx, phase, slot):
        """A task's result under the straggler deadline.

        ``recompute`` rebuilds the task from *fresh* keyed streams in the
        calling thread (the straggler may still be consuming the rng
        objects it was handed, so the originals must not be reused) —
        keyed streams make the recomputation bit-identical.
        """
        if self.task_deadline_s is None:
            return future.result()
        try:
            return future.result(timeout=self.task_deadline_s)
        except FuturesTimeout:
            self._note(
                "straggler_reassignments", round_idx=round_idx, phase=phase,
                slot=slot,
            )
            return recompute()

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        if self._registry is not None:
            remote_ids = [
                cid
                for cid in contributor_ids
                if self._registry.is_parallel_safe(cid)
            ]
            resolve = self._registry.__getitem__
            plan_source = self._registry
        else:
            remote_ids = [cid for cid in contributor_ids if cid in self._clients]
            resolve = self._clients.__getitem__
            plan_source = self._clients
        chunks = plan_cohorts(
            plan_source,
            remote_ids,
            global_model,
            self.cohort_size if self.cohort_size is not None else len(remote_ids),
        )
        cohorted = {cid for chunk in chunks for cid in chunk}
        # Shard lists and bound methods are resolved here, in the calling
        # thread, so a registry materializes clients race-free before any
        # pool thread runs; the simulation discards them after the round.
        # Submission ordinals are the fault plan's dispatch slots.
        slot = 0
        chunk_futures: list[tuple[list[int], int, Future]] = []
        for chunk in chunks:
            chunk_futures.append((
                chunk,
                slot,
                self._submit(
                    _resilient_call,
                    self,
                    self._fault_directive(round_idx, "train", slot),
                    self._tracer,
                    "train.cohort",
                    round_idx,
                    {"clients": len(chunk)},
                    cohort_updates,
                    global_model,
                    [resolve(cid).dataset for cid in chunk],
                    config,
                    [streams.client_rng(round_idx, cid) for cid in chunk],
                ),
            ))
            slot += 1
        futures: dict[int, tuple[int, Future]] = {}
        for cid in remote_ids:
            if cid in cohorted:
                continue
            futures[cid] = (
                slot,
                self._submit(
                    _resilient_call,
                    self,
                    self._fault_directive(round_idx, "train", slot),
                    self._tracer,
                    "train.client",
                    round_idx,
                    {"client": cid},
                    resolve(cid).produce_update,
                    global_model,
                    config,
                    round_idx,
                    streams.client_rng(round_idx, cid),
                ),
            )
            slot += 1
        results: dict[int, np.ndarray] = {
            cid: clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
            if cid not in futures and cid not in cohorted
        }
        for chunk, chunk_slot, future in chunk_futures:
            updates = self._thread_result(
                future,
                lambda chunk=chunk: cohort_updates(
                    global_model,
                    [resolve(cid).dataset for cid in chunk],
                    config,
                    [streams.client_rng(round_idx, cid) for cid in chunk],
                ),
                round_idx, "train", chunk_slot,
            )
            results.update(zip(chunk, updates))
        for cid, (cid_slot, future) in futures.items():
            results[cid] = self._thread_result(
                future,
                lambda cid=cid: resolve(cid).produce_update(
                    global_model, config, round_idx,
                    streams.client_rng(round_idx, cid),
                ),
                round_idx, "train", cid_slot,
            )
        return [results[cid] for cid in contributor_ids]

    def submit_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> PendingVotes:
        tracer = self._tracer

        def vote_under_lock(vid, validator, lock, rng):
            # The per-validator lock also serializes a straggler's late
            # vote against its deadline-driven local recomputation — the
            # two compute identical values, never concurrently.
            with lock:
                with tracer.span(
                    "validate.vote", cat="worker", round_idx=round_idx,
                    validator=vid,
                ):
                    return validator.vote(context, rng)

        dropped = self._dropped_votes(round_idx, validator_ids)
        futures: dict[int, tuple[int, Future]] = {}
        slot = 0
        for vid in validator_ids:
            if vid not in self._validators or vid in dropped:
                continue
            futures[vid] = (
                slot,
                self._submit(
                    _resilient_call,  # repro: allow[pickle-safety] -- thread pool shares the address space, nothing pickles
                    self,
                    self._fault_directive(round_idx, "validate", slot),
                    NULL_TRACER,  # vote_under_lock opens the span itself
                    "validate.task",
                    round_idx,
                    {},
                    vote_under_lock,
                    vid,
                    self._validators[vid],
                    self._vote_locks[vid],
                    streams.validator_rng(round_idx, vid),
                ),
            )
            slot += 1

        def gather() -> dict[int, int]:
            local: dict[int, int] = {
                vid: pool.get(vid).vote(
                    context, streams.validator_rng(round_idx, vid)
                )
                for vid in validator_ids
                if vid not in futures and vid not in dropped
            }
            collected: dict[int, int] = {}
            for vid in validator_ids:
                if vid in dropped:
                    continue
                if vid not in futures:
                    collected[vid] = local[vid]
                    continue
                vid_slot, future = futures[vid]
                collected[vid] = self._thread_result(
                    future,
                    lambda vid=vid: vote_under_lock(
                        vid,
                        self._validators[vid],
                        self._vote_locks[vid],
                        streams.validator_rng(round_idx, vid),
                    ),
                    round_idx, "validate", vid_slot,
                )
            return collected

        # No store references travel (the context holds the models alive),
        # so an abandoned handle needs no deferred release — stragglers
        # just finish and their results are dropped.  Their errors are
        # still drained and counted, though.
        return PendingVotes(
            gather=gather,
            futures=[future for _, future in futures.values()],
            on_abandon=lambda pending: None,
            on_error=self._count_abandoned_error,
        )

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        return self.submit_validators(
            pool, validator_ids, context, round_idx, streams
        ).collect()


class PipelinedRoundExecutor(RoundExecutor):
    """Executor for the pipelined round loop: overlap rounds ``r`` and ``r+1``.

    Wraps an inner executor (sequential or process pool) and exposes
    ``pipeline_depth`` — the number of rounds
    :class:`~repro.fl.simulation.FederatedSimulation` may run ahead of
    their unresolved validator quorums.  The simulation detects this
    attribute and switches to its pipelined loop: round ``r``'s votes are
    *submitted* (:meth:`submit_validators`), round ``r + 1``'s client tasks
    are then fed into the same pool, so both kinds of task interleave on
    the workers; ``pipeline_depth = 0`` degenerates to today's synchronous
    semantics and commits bit-identical models.
    """

    def __init__(self, inner: RoundExecutor, pipeline_depth: int = DEFAULT_PIPELINE_DEPTH) -> None:
        if pipeline_depth < 0:
            raise ValueError(
                f"pipeline_depth must be >= 0, got {pipeline_depth}"
            )
        if isinstance(inner, PipelinedRoundExecutor):
            raise ValueError("cannot nest pipelined executors")
        self.inner = inner
        self.pipeline_depth = pipeline_depth

    def bind(self, **populations) -> None:
        self.inner.bind(**populations)

    def bind_faults(self, **kwargs) -> None:
        self.inner.bind_faults(**kwargs)

    @property
    def resilience(self) -> ResilienceStats:
        return self.inner.resilience

    @property
    def fault_plan(self) -> FaultPlan:
        return self.inner.fault_plan

    @property
    def task_deadline_s(self) -> float | None:
        return self.inner.task_deadline_s

    @property
    def transport_bytes(self) -> int:
        return self.inner.transport_bytes

    @property
    def raw_transport_bytes(self) -> int:
        return self.inner.raw_transport_bytes

    @property
    def store(self) -> ModelStore | None:
        return self.inner.store

    def run_clients(self, *args, **kwargs) -> list[np.ndarray]:
        return self.inner.run_clients(*args, **kwargs)

    def run_validators(self, *args, **kwargs) -> dict[int, int]:
        return self.inner.run_validators(*args, **kwargs)

    def submit_validators(self, *args, **kwargs) -> PendingVotes:
        return self.inner.submit_validators(*args, **kwargs)

    def close(self) -> None:
        self.inner.close()


def make_executor(
    workers: int,
    store: ModelStore | None = None,
    mode: str = "sync",
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    cohort_size: int | None = None,
    engine: str = "auto",
    faults: "FaultPlan | str | None" = None,
    task_deadline_s: float | None = None,
) -> RoundExecutor:
    """Executor for a worker count: 0/1 -> sequential, N>=2 -> worker pool.

    ``engine`` picks the multi-worker backend (:data:`ENGINE_KINDS`):
    ``"process"`` (and ``"auto"``) builds a
    :class:`ProcessPoolRoundExecutor`, ``"thread"`` a
    :class:`ThreadPoolRoundExecutor`.  ``store`` binds the configured
    model store at construction, so a pool executor can never silently
    fall back to pickle-pipe transport because a caller forgot to connect
    the two (the historical failure mode: store and executor were built
    by separate factories and only met inside ``FederatedSimulation``).
    ``mode="pipelined"`` wraps the executor for the pipelined round loop
    with the given speculation depth.  ``cohort_size`` controls stacked
    cohort training (:mod:`repro.fl.cohort`): ``None`` keeps each
    executor's default (stack everything eligible on the pools, classic
    per-model on sequential), ``>= 2`` forces that chunk size everywhere,
    ``0``/``1`` disables stacking.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
        )
    if engine not in ENGINE_KINDS:
        raise ValueError(
            f"engine must be one of {ENGINE_KINDS}, got {engine!r}"
        )
    executor: RoundExecutor
    if workers <= 1:
        executor = SequentialExecutor(cohort_size=cohort_size)
    elif engine == "thread":
        executor = ThreadPoolRoundExecutor(workers, cohort_size=cohort_size)
    else:
        executor = ProcessPoolRoundExecutor(workers, cohort_size=cohort_size)
    if store is not None:
        executor.bind(store=store)
    if faults is not None or task_deadline_s is not None:
        executor.bind_faults(plan=faults, task_deadline_s=task_deadline_s)
    if mode == "pipelined":
        executor = PipelinedRoundExecutor(executor, pipeline_depth)
    return executor


class RoundEngine:
    """A matched (executor, store) pair from :func:`make_engine`.

    Context manager closing both in the safe order — executor first (its
    shutdown waits for in-flight tasks and drains the deferred-release
    list), store second (unlinking any remaining segments).
    """

    def __init__(self, executor: RoundExecutor, store: ModelStore) -> None:
        self.executor = executor
        self.store = store

    @property
    def codec(self):
        """The store's transport codec (:mod:`repro.fl.compression`)."""
        return self.store.codec

    def __enter__(self) -> "RoundEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.executor.close()
        finally:
            self.store.close()


def make_engine(
    workers: int,
    store: str = "auto",
    mode: str = "sync",
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    codec: str | None = None,
    require_lossless: bool = True,
    cohort_size: int | None = None,
    engine: str = "auto",
    faults: "FaultPlan | str | None" = None,
    task_deadline_s: float | None = None,
) -> RoundEngine:
    """The one factory for a round-execution engine.

    Builds the model store for the worker count (``store`` is a
    :data:`~repro.fl.model_store.STORE_KINDS` name) and an executor with
    that store pre-bound, so the transport path is decided here, in one
    place, instead of emerging from whether two separately constructed
    objects happened to meet.  ``engine`` picks the multi-worker backend
    (:data:`ENGINE_KINDS`); the thread engine shares the caller's address
    space, so ``store="auto"`` resolves to the in-process store for it —
    a shared-memory arena would only add copies.

    ``codec`` selects the store's weight-compression codec
    (:mod:`repro.fl.compression`; name or instance, default identity);
    with ``require_lossless=True`` (the default) lossy codecs are rejected
    here, before anything is built — the bit-identical equivalence matrix
    only holds for lossless codecs, so admitting a lossy one for a scale
    run is an explicit opt-out (``require_lossless=False``).

    ``cohort_size`` controls stacked cohort client training
    (bit-identical, pure throughput — see :mod:`repro.fl.cohort`);
    ``None`` keeps the per-executor default.

    ``faults`` (a spec string or :class:`~repro.fl.faults.FaultPlan`) and
    ``task_deadline_s`` arm the executor's resilience layer — see
    :mod:`repro.fl.faults` and :meth:`RoundExecutor.bind_faults`.
    """
    if engine not in ENGINE_KINDS:
        raise ValueError(
            f"engine must be one of {ENGINE_KINDS}, got {engine!r}"
        )
    if store == "auto" and engine == "thread":
        store = "inprocess"
    model_store = make_model_store(
        workers, store, codec=codec, require_lossless=require_lossless
    )
    executor = make_executor(
        workers,
        store=model_store,
        mode=mode,
        pipeline_depth=pipeline_depth,
        cohort_size=cohort_size,
        engine=engine,
        faults=faults,
        task_deadline_s=task_deadline_s,
    )
    return RoundEngine(executor, model_store)
