"""The parallel round-execution engine.

``FederatedSimulation.run_round`` has two embarrassingly parallel fan-out
points: the selected clients' local training (``produce_update``) and the
BaFFLe validators' votes.  Both dominate the wall-clock cost of a round —
BackFed (Dao et al., 2025) identifies sequential client execution as *the*
bottleneck of FL-backdoor benchmarking — yet the seed implementation ran
them strictly sequentially on one core.

:class:`RoundExecutor` abstracts the fan-out:

- :class:`SequentialExecutor` (default) runs everything in-process, in
  deterministic order — byte-for-byte the classic behavior;
- :class:`ProcessPoolRoundExecutor` fans tasks out over a
  ``concurrent.futures.ProcessPoolExecutor``.

Because every task's randomness comes from a keyed
:class:`~repro.fl.rng.RngStreams` child (not a shared sequential stream),
and weights travel losslessly in float64, every executor/store combination
commits **bit-identical** global models and round records for the same
seed.

Weight transport
----------------
Weights reach workers one of two ways, chosen by the bound
:class:`~repro.fl.model_store.ModelStore`:

- **Version keys** (shared-memory store): the server publishes each new
  model into the store's ``multiprocessing.shared_memory`` arena exactly
  once and ships only integer version keys per task.  Workers attach to
  the arena in their initializer and resolve keys locally, so per-round
  transport is O(1 new model) — independent of history length and of how
  many clients or validators fan out.
- **Pickle-pipe blobs** (in-process store): the legacy path; candidate,
  global and history weights are serialized per task via
  :mod:`repro.nn.serialization`, costing
  O(model x (clients + validators x history)) per round.

Either way the executor counts the model-weight bytes it moves across
process boundaries; :class:`~repro.fl.simulation.FederatedSimulation`
surfaces the per-round figure in its round records
(``RoundRecord.transport_bytes``).

Worker-side state
-----------------
Workers are initialized once per pool with the (parallel-safe) client and
validator populations, a structural template network, and the store's
attachment handle.  Worker processes keep per-version model caches and
arena attachments, both evicted as the server retires versions (the
server's minimum live version travels with each task as the eviction
floor).  Validator error profiles are shared through the server's
:class:`~repro.fl.model_store.ValidatorProfileTable`: tasks return the
profiles they compute, the server files them under committed versions, and
future tasks receive them as hints — so a profile is computed once
process-wide and the commit-time reuse (``note_committed``) reaches
workers.

Entities that are stateful across rounds in ways the parent must observe
(e.g. the adaptive attacker, which reads the live defense history and
records its self-check outcomes) declare ``parallel_safe = False`` and are
always executed in the parent process — correctness never depends on the
executor choice.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.model_store import (
    ModelStore,
    ShmWorkerView,
    ValidatorProfileTable,
)
from repro.fl.rng import RngStreams
from repro.nn.network import Network
from repro.nn.serialization import params_from_bytes, params_to_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: this module is
    # imported by repro.fl.simulation, which repro.core.baffle imports, so
    # importing repro.core here at runtime would close a circle.
    from repro.core.baffle import ValidatorPool
    from repro.core.validation import ValidationContext, Validator


def _is_parallel_safe(obj: object) -> bool:
    """Whether an entity may run in a worker process (opt-in attribute)."""
    return bool(getattr(obj, "parallel_safe", False))


#: A picklable reference to one model's weights: ``(version, blob)`` where
#: a ``None`` blob means "resolve ``version`` from the shared arena" and a
#: present blob carries the serialized weights through the pipe (version
#: ``None`` for unversioned one-shot models like blob-path candidates).
ModelRef = tuple[int | None, bytes | None]


class RoundExecutor:
    """Strategy interface for executing one round's independent tasks.

    ``bind`` hands the executor the static population *before* the first
    fan-out (process pools ship it to workers exactly once); ``run_clients``
    and ``run_validators`` execute one round's tasks and return results in
    deterministic order, regardless of completion order.
    """

    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
    ) -> None:
        """Register the populations and stores this executor fans out over."""

    @property
    def transport_bytes(self) -> int:
        """Cumulative model-weight bytes moved across process boundaries."""
        return 0

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        """Collect ``produce_update`` results, ordered as ``contributor_ids``."""
        raise NotImplementedError

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        """Collect votes ``{validator_id: vote}`` for the given context."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialExecutor(RoundExecutor):
    """In-process execution in deterministic order (the default)."""

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        return [
            clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
        ]

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        return {
            vid: pool.get(vid).vote(context, streams.validator_rng(round_idx, vid))
            for vid in validator_ids
        }


# ----------------------------------------------------------------------
# Worker-process side of the process-pool backend
# ----------------------------------------------------------------------
_W_CLIENTS: dict[int, Client] = {}
_W_VALIDATORS: dict[int, Validator] = {}
_W_TEMPLATE: Network | None = None
_W_MODELS: dict[int, Network] = {}
_W_STORE: ShmWorkerView | None = None


def _init_worker(
    clients: dict[int, Client],
    validators: dict[int, Validator],
    template: Network | None,
    store_handle,
) -> None:
    global _W_TEMPLATE, _W_STORE
    _W_CLIENTS.clear()
    _W_CLIENTS.update(clients)
    _W_VALIDATORS.clear()
    _W_VALIDATORS.update(validators)
    _W_MODELS.clear()
    _W_TEMPLATE = template
    _W_STORE = store_handle.attach() if store_handle is not None else None


def _materialize(ref: ModelRef, cache_attachment: bool = True) -> Network:
    """A fresh ``Network`` carrying the referenced weights.

    ``cache_attachment=False`` marks one-shot versions (candidates): their
    arena segments are read without keeping an attachment, since a rejected
    candidate's version never reappears and would otherwise pin unlinked
    memory until the eviction floor catches up.
    """
    assert _W_TEMPLATE is not None, "worker used before initialization"
    model = _W_TEMPLATE.clone()
    version, blob = ref
    if blob is not None:
        params_from_bytes(model, blob)
    else:
        assert _W_STORE is not None, "version ref without an attached store"
        assert version is not None
        model.set_flat(
            _W_STORE.get(version, _W_TEMPLATE.num_parameters, cache=cache_attachment)
        )
    return model


def _evict_retired(live_floor: int | None) -> None:
    """Drop cached attachments for versions the server has retired."""
    if _W_STORE is not None:
        _W_STORE.evict_below(live_floor)


def _client_task(
    client_id: int,
    model_ref: ModelRef,
    config: LocalTrainingConfig,
    round_idx: int,
    seed_seq: np.random.SeedSequence,
    live_floor: int | None,
) -> np.ndarray:
    _evict_retired(live_floor)
    model = _materialize(model_ref)
    rng = np.random.default_rng(seed_seq)
    return _W_CLIENTS[client_id].produce_update(model, config, round_idx, rng)


def _validator_task(
    validator_id: int,
    candidate_ref: ModelRef,
    history_refs: Sequence[ModelRef],
    round_idx: int,
    seed_seq: np.random.SeedSequence,
    profile_hints: Mapping[int, object],
    live_floor: int | None,
) -> tuple[int, dict[int, object], object | None]:
    """One validator vote; returns ``(vote, new_profiles, candidate_profile)``.

    ``new_profiles`` are the history-version profiles this task computed
    beyond the server's hints, ``candidate_profile`` is the (yet
    uncommitted) candidate's profile — both flow back into the server's
    shared :class:`~repro.fl.model_store.ValidatorProfileTable`.
    """
    from repro.core.validation import ValidationContext

    _evict_retired(live_floor)
    # Per-version model cache: across rounds the history shifts by one
    # entry, so all but one model are already materialized.  An empty
    # history (defense active before any model was accepted) must fall
    # through to the validator, which abstains on it — exactly like the
    # sequential path.
    history_versions = [version for version, _ in history_refs]
    for ref in history_refs:
        version = ref[0]
        assert version is not None  # history entries are always versioned
        if version not in _W_MODELS:
            _W_MODELS[version] = _materialize(ref)
    if history_versions:
        oldest = min(history_versions)
        for version in [v for v in _W_MODELS if v < oldest]:
            del _W_MODELS[version]

    validator = _W_VALIDATORS[validator_id]
    seed_cache = getattr(validator, "seed_profile_cache", None)
    if callable(seed_cache) and profile_hints:
        seed_cache(profile_hints)
    context = ValidationContext(
        candidate=_materialize(candidate_ref, cache_attachment=False),
        history=[(v, _W_MODELS[v]) for v in history_versions],
    )
    rng = np.random.default_rng(seed_seq)
    vote = validator.vote(context, rng)

    new_profiles: dict[int, object] = {}
    cached = getattr(validator, "cached_profiles", None)
    if callable(cached):
        missing = [v for v in history_versions if v not in profile_hints]
        new_profiles = cached(missing)
    take_pending = getattr(validator, "take_pending_profile", None)
    candidate_profile = take_pending() if callable(take_pending) else None
    return vote, new_profiles, candidate_profile


class ProcessPoolRoundExecutor(RoundExecutor):
    """Fan rounds out over worker processes.

    Parameters
    ----------
    workers:
        Worker-process count (>= 2; use :func:`make_executor` to fall back
        to :class:`SequentialExecutor` for 0/1).
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"ProcessPoolRoundExecutor needs >= 2 workers, got {workers}; "
                "use make_executor() for an automatic sequential fallback"
            )
        self.workers = workers
        self._clients: dict[int, Client] = {}
        self._validators: dict[int, Validator] = {}
        self._template: Network | None = None
        self._store: ModelStore | None = None
        self._profile_table: ValidatorProfileTable | None = None
        self._bound: set[str] = set()
        self._pool: ProcessPoolExecutor | None = None
        self._held_global: int | None = None
        self._pipe_bytes = 0

    # ------------------------------------------------------------------
    # Population binding / pool lifecycle
    # ------------------------------------------------------------------
    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
        store: ModelStore | None = None,
        profile_table: ValidatorProfileTable | None = None,
    ) -> None:
        if self._pool is not None:
            raise RuntimeError("cannot bind populations after the pool started")
        # Each population binds exactly once: workers see one consistent
        # snapshot, and sharing an executor across simulations fails loudly
        # instead of silently running the first simulation against the
        # second's clients.
        for field, provided in (
            ("clients", clients),
            ("validator_pool", validator_pool),
            ("template", template),
            ("store", store),
            ("profile_table", profile_table),
        ):
            if provided is not None and field in self._bound:
                raise RuntimeError(
                    f"executor already has {field} bound; "
                    "use one executor per simulation"
                )
        if clients is not None:
            self._bound.add("clients")
            self._clients = {
                c.client_id: c for c in clients if _is_parallel_safe(c)
            }
        if validator_pool is not None:
            self._bound.add("validator_pool")
            self._validators = {
                vid: validator
                for vid, validator in validator_pool.as_dict().items()
                if _is_parallel_safe(validator)
            }
        if template is not None:
            self._bound.add("template")
            self._template = template
        if store is not None:
            self._bound.add("store")
            self._store = store
        if profile_table is not None:
            self._bound.add("profile_table")
            self._profile_table = profile_table

    @property
    def _use_store(self) -> bool:
        """Ship version keys (shared arena) instead of pickled blobs?"""
        return self._store is not None and self._store.shareable

    @property
    def transport_bytes(self) -> int:
        total = self._pipe_bytes
        if self._use_store:
            # Every byte copied into the shared arena is readable by all
            # workers at once — that copy *is* the transport.
            total += self._store.bytes_published
        return total

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._template is None:
                raise RuntimeError(
                    "executor needs a template network; bind(template=...) "
                    "first (FederatedSimulation does this automatically)"
                )
            # The template travels once, as a pickled Network (float64
            # arrays pickle losslessly); per-round weights travel as store
            # version keys or, without a shareable store, as blobs.
            handle = self._store.worker_handle() if self._use_store else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._clients, self._validators, self._template, handle),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._held_global is not None:
            if self._store is not None and self._held_global in self._store:
                self._store.release(self._held_global)
            self._held_global = None

    # ------------------------------------------------------------------
    # Round fan-out
    # ------------------------------------------------------------------
    def _global_model_ref(self, global_model: Network) -> tuple[ModelRef, int]:
        """Reference for this round's global model + per-task pipe cost."""
        if self._use_store:
            # Content-deduplicated publish: right after a committed round
            # the global model *is* the latest history entry, so this
            # usually resolves to an already-live version and ships zero
            # new bytes.  The executor keeps one reference so undefended
            # runs (no history holding the version) stay resolvable, and
            # trades it for the next round's version.
            version = self._store.publish(global_model.get_flat())
            if self._held_global is not None:
                self._store.release(self._held_global)
            self._held_global = version
            return (version, None), 0
        blob = params_to_bytes(global_model, dtype=np.float64)
        return (None, blob), len(blob)

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        pool = self._ensure_pool()
        remote_ids = [cid for cid in contributor_ids if cid in self._clients]
        model_ref, pipe_cost = self._global_model_ref(global_model)
        live_floor = self._store.min_live_version() if self._use_store else None
        futures: dict[int, Future] = {
            cid: pool.submit(
                _client_task,
                cid,
                model_ref,
                config,
                round_idx,
                streams.client_seq(round_idx, cid),
                live_floor,
            )
            for cid in remote_ids
        }
        self._pipe_bytes += pipe_cost * len(futures)
        # Entities that must run in the parent (stateful / unpicklable)
        # overlap with the workers' wall-clock, then everything is gathered
        # in contributor order so results are order-deterministic.
        local: dict[int, np.ndarray] = {
            cid: clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
            if cid not in futures
        }
        return [
            futures[cid].result() if cid in futures else local[cid]
            for cid in contributor_ids
        ]

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        executor_pool = self._ensure_pool()
        history_versions = [version for version, _ in context.history]
        ephemeral_candidate: int | None = None
        if self._use_store:
            candidate_version = context.candidate_version
            if candidate_version is None or candidate_version not in self._store:
                # Standalone contexts (defense not staged through a store)
                # publish the candidate here and release it after the round.
                candidate_version = self._store.publish_new(
                    context.candidate.get_flat()
                )
                ephemeral_candidate = candidate_version
            candidate_ref: ModelRef = (candidate_version, None)
            history_refs: list[ModelRef] = []
            per_task_pipe = 0
            for version, model in context.history:
                if version in self._store:
                    history_refs.append((version, None))
                else:
                    # Same standalone case for the history: a version the
                    # arena cannot resolve travels as a blob (keyed by its
                    # history version so worker caches stay correct).
                    blob = params_to_bytes(model, dtype=np.float64)
                    history_refs.append((version, blob))
                    per_task_pipe += len(blob)
        else:
            candidate_blob = params_to_bytes(context.candidate, dtype=np.float64)
            history_blobs = [
                params_to_bytes(model, dtype=np.float64)
                for _, model in context.history
            ]
            candidate_ref = (None, candidate_blob)
            history_refs = list(zip(history_versions, history_blobs))
            per_task_pipe = len(candidate_blob) + sum(map(len, history_blobs))
        live_floor = self._store.min_live_version() if self._use_store else None

        table = self._profile_table
        futures: dict[int, Future] = {
            vid: executor_pool.submit(
                _validator_task,
                vid,
                candidate_ref,
                history_refs,
                round_idx,
                streams.validator_seq(round_idx, vid),
                table.hints(vid, history_versions) if table is not None else {},
                live_floor,
            )
            for vid in validator_ids
            if vid in self._validators
        }
        self._pipe_bytes += per_task_pipe * len(futures)
        # As in run_clients: parent-side (non-parallel-safe) votes run while
        # the workers chew, then everything is gathered in id order.
        local: dict[int, int] = {
            vid: pool.get(vid).vote(context, streams.validator_rng(round_idx, vid))
            for vid in validator_ids
            if vid not in futures
        }
        votes: dict[int, int] = {}
        try:
            for vid in validator_ids:
                if vid not in futures:
                    votes[vid] = local[vid]
                    continue
                vote, new_profiles, candidate_profile = futures[vid].result()
                votes[vid] = vote
                if table is not None:
                    for version, profile in new_profiles.items():
                        table.put(vid, version, profile)
                    if candidate_profile is not None:
                        table.stage(vid, candidate_profile)
        finally:
            if ephemeral_candidate is not None:
                self._store.release(ephemeral_candidate)
        return votes


def make_executor(workers: int) -> RoundExecutor:
    """Executor for a worker count: 0/1 -> sequential, N>=2 -> process pool."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1:
        return SequentialExecutor()
    return ProcessPoolRoundExecutor(workers)
