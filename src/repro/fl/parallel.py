"""The parallel round-execution engine.

``FederatedSimulation.run_round`` has two embarrassingly parallel fan-out
points: the selected clients' local training (``produce_update``) and the
BaFFLe validators' votes.  Both dominate the wall-clock cost of a round —
BackFed (Dao et al., 2025) identifies sequential client execution as *the*
bottleneck of FL-backdoor benchmarking — yet the seed implementation ran
them strictly sequentially on one core.

:class:`RoundExecutor` abstracts the fan-out:

- :class:`SequentialExecutor` (default) runs everything in-process, in
  deterministic order — byte-for-byte the classic behavior;
- :class:`ProcessPoolRoundExecutor` fans tasks out over a
  ``concurrent.futures.ProcessPoolExecutor``.

Because every task's randomness comes from a keyed
:class:`~repro.fl.rng.RngStreams` child (not a shared sequential stream),
and weights travel as lossless float64 blobs via
:mod:`repro.nn.serialization`, both executors commit **bit-identical**
global models and round records for the same seed.

Worker-side state
-----------------
Workers are initialized once per pool with the (parallel-safe) client and
validator populations plus a structural template network; per task only the
candidate/history *weights* and a picklable seed sequence travel.  Worker
processes keep their own per-version model and error-profile caches, so a
validator vote costs one forward pass per model *new to that worker*.  The
caches are per worker copy: a validator's successive votes may land on
different workers, and the commit-time profile reuse
(``note_committed``) only reaches the parent's validator objects — so
parallel validation spends up to one extra forward pass per validator per
round compared to the sequential path (see the ROADMAP's shared-memory
open item).

Entities that are stateful across rounds in ways the parent must observe
(e.g. the adaptive attacker, which reads the live defense history and
records its self-check outcomes) declare ``parallel_safe = False`` and are
always executed in the parent process — correctness never depends on the
executor choice.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.rng import RngStreams
from repro.nn.network import Network
from repro.nn.serialization import params_from_bytes, params_to_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: this module is
    # imported by repro.fl.simulation, which repro.core.baffle imports, so
    # importing repro.core here at runtime would close a circle.
    from repro.core.baffle import ValidatorPool
    from repro.core.validation import ValidationContext, Validator


def _is_parallel_safe(obj: object) -> bool:
    """Whether an entity may run in a worker process (opt-in attribute)."""
    return bool(getattr(obj, "parallel_safe", False))


class RoundExecutor:
    """Strategy interface for executing one round's independent tasks.

    ``bind`` hands the executor the static population *before* the first
    fan-out (process pools ship it to workers exactly once); ``run_clients``
    and ``run_validators`` execute one round's tasks and return results in
    deterministic order, regardless of completion order.
    """

    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
    ) -> None:
        """Register the populations this executor will fan out over."""

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        """Collect ``produce_update`` results, ordered as ``contributor_ids``."""
        raise NotImplementedError

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        """Collect votes ``{validator_id: vote}`` for the given context."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "RoundExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialExecutor(RoundExecutor):
    """In-process execution in deterministic order (the default)."""

    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        return [
            clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
        ]

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        return {
            vid: pool.get(vid).vote(context, streams.validator_rng(round_idx, vid))
            for vid in validator_ids
        }


# ----------------------------------------------------------------------
# Worker-process side of the process-pool backend
# ----------------------------------------------------------------------
_W_CLIENTS: dict[int, Client] = {}
_W_VALIDATORS: dict[int, Validator] = {}
_W_TEMPLATE: Network | None = None
_W_MODELS: dict[int, Network] = {}


def _init_worker(
    clients: dict[int, Client],
    validators: dict[int, Validator],
    template: Network | None,
) -> None:
    global _W_TEMPLATE
    _W_CLIENTS.clear()
    _W_CLIENTS.update(clients)
    _W_VALIDATORS.clear()
    _W_VALIDATORS.update(validators)
    _W_MODELS.clear()
    _W_TEMPLATE = template


def _materialize(blob: bytes) -> Network:
    assert _W_TEMPLATE is not None, "worker used before initialization"
    model = _W_TEMPLATE.clone()
    params_from_bytes(model, blob)
    return model


def _client_task(
    client_id: int,
    weights_blob: bytes,
    config: LocalTrainingConfig,
    round_idx: int,
    seed_seq: np.random.SeedSequence,
) -> np.ndarray:
    model = _materialize(weights_blob)
    rng = np.random.default_rng(seed_seq)
    return _W_CLIENTS[client_id].produce_update(model, config, round_idx, rng)


def _validator_task(
    validator_id: int,
    candidate_blob: bytes,
    history_blobs: Sequence[tuple[int, bytes]],
    round_idx: int,
    seed_seq: np.random.SeedSequence,
) -> int:
    from repro.core.validation import ValidationContext

    # Per-version model cache: across rounds the history shifts by one
    # entry, so all but one model are already materialized (and their
    # error profiles already cached inside the validator objects).  An
    # empty history (defense active before any model was accepted) must
    # fall through to the validator, which abstains on it — exactly like
    # the sequential path.
    for version, blob in history_blobs:
        if version not in _W_MODELS:
            _W_MODELS[version] = _materialize(blob)
    if history_blobs:
        oldest = min(version for version, _ in history_blobs)
        for version in [v for v in _W_MODELS if v < oldest]:
            del _W_MODELS[version]
    context = ValidationContext(
        candidate=_materialize(candidate_blob),
        history=[(version, _W_MODELS[version]) for version, _ in history_blobs],
    )
    rng = np.random.default_rng(seed_seq)
    return _W_VALIDATORS[validator_id].vote(context, rng)


class ProcessPoolRoundExecutor(RoundExecutor):
    """Fan rounds out over worker processes.

    Parameters
    ----------
    workers:
        Worker-process count (>= 2; use :func:`make_executor` to fall back
        to :class:`SequentialExecutor` for 0/1).
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"ProcessPoolRoundExecutor needs >= 2 workers, got {workers}; "
                "use make_executor() for an automatic sequential fallback"
            )
        self.workers = workers
        self._clients: dict[int, Client] = {}
        self._validators: dict[int, Validator] = {}
        self._template: Network | None = None
        self._bound: set[str] = set()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Population binding / pool lifecycle
    # ------------------------------------------------------------------
    def bind(
        self,
        clients: Sequence[Client] | None = None,
        validator_pool: "ValidatorPool | None" = None,
        template: Network | None = None,
    ) -> None:
        if self._pool is not None:
            raise RuntimeError("cannot bind populations after the pool started")
        # Each population binds exactly once: workers see one consistent
        # snapshot, and sharing an executor across simulations fails loudly
        # instead of silently running the first simulation against the
        # second's clients.
        for field, provided in (
            ("clients", clients),
            ("validator_pool", validator_pool),
            ("template", template),
        ):
            if provided is not None and field in self._bound:
                raise RuntimeError(
                    f"executor already has {field} bound; "
                    "use one executor per simulation"
                )
        if clients is not None:
            self._bound.add("clients")
            self._clients = {
                c.client_id: c for c in clients if _is_parallel_safe(c)
            }
        if validator_pool is not None:
            self._bound.add("validator_pool")
            self._validators = {
                vid: validator
                for vid, validator in validator_pool.as_dict().items()
                if _is_parallel_safe(validator)
            }
        if template is not None:
            self._bound.add("template")
            self._template = template

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._template is None:
                raise RuntimeError(
                    "executor needs a template network; bind(template=...) "
                    "first (FederatedSimulation does this automatically)"
                )
            # The template travels once, as a pickled Network (float64
            # arrays pickle losslessly); per-round weights travel as blobs.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._clients, self._validators, self._template),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Round fan-out
    # ------------------------------------------------------------------
    def run_clients(
        self,
        clients: Sequence[Client],
        contributor_ids: Sequence[int],
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        streams: RngStreams,
    ) -> list[np.ndarray]:
        pool = self._ensure_pool()
        weights_blob = params_to_bytes(global_model, dtype=np.float64)
        futures: dict[int, Future] = {
            cid: pool.submit(
                _client_task,
                cid,
                weights_blob,
                config,
                round_idx,
                streams.client_seq(round_idx, cid),
            )
            for cid in contributor_ids
            if cid in self._clients
        }
        # Entities that must run in the parent (stateful / unpicklable)
        # overlap with the workers' wall-clock, then everything is gathered
        # in contributor order so results are order-deterministic.
        local: dict[int, np.ndarray] = {
            cid: clients[cid].produce_update(
                global_model, config, round_idx, streams.client_rng(round_idx, cid)
            )
            for cid in contributor_ids
            if cid not in futures
        }
        return [
            futures[cid].result() if cid in futures else local[cid]
            for cid in contributor_ids
        ]

    def run_validators(
        self,
        pool: "ValidatorPool",
        validator_ids: Sequence[int],
        context: ValidationContext,
        round_idx: int,
        streams: RngStreams,
    ) -> dict[int, int]:
        executor_pool = self._ensure_pool()
        candidate_blob = params_to_bytes(context.candidate, dtype=np.float64)
        history_blobs = [
            (version, params_to_bytes(model, dtype=np.float64))
            for version, model in context.history
        ]
        futures: dict[int, Future] = {
            vid: executor_pool.submit(
                _validator_task,
                vid,
                candidate_blob,
                history_blobs,
                round_idx,
                streams.validator_seq(round_idx, vid),
            )
            for vid in validator_ids
            if vid in self._validators
        }
        # As in run_clients: parent-side (non-parallel-safe) votes run while
        # the workers chew, then everything is gathered in id order.
        local: dict[int, int] = {
            vid: pool.get(vid).vote(context, streams.validator_rng(round_idx, vid))
            for vid in validator_ids
            if vid not in futures
        }
        return {
            vid: futures[vid].result() if vid in futures else local[vid]
            for vid in validator_ids
        }


def make_executor(workers: int) -> RoundExecutor:
    """Executor for a worker count: 0/1 -> sequential, N>=2 -> process pool."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1:
        return SequentialExecutor()
    return ProcessPoolRoundExecutor(workers)
