"""Cohort client training: one stacked SGD loop for a round's honest clients.

Every selected honest client runs the same algorithm —
``local_train(clone(G), shard)`` — differing only in data and RNG stream.
The per-model engine dispatches those trainings one Python-driven model at
a time; this module gathers a round's *cohortable* clients into one
:class:`~repro.nn.stacked.StackedNetwork` and trains all of them in single
batched calls, then scatters the resulting update vectors back per client.

Bit-identity
------------
Cohort results are **bit-identical** to the per-model path (the engine
equivalence matrix includes cohort-enabled runs):

- Each client keeps its own ``(round, client)`` RNG stream for epoch
  permutations, and its own per-model dropout generator (deep-copied from
  the template, exactly like ``Network.clone()``), drawn in the per-model
  call order.
- Batches are never padded.  A GEMM over ``b`` rows zero-padded to ``b' >
  b`` rows may round differently (different kernel path), so each training
  step partitions the active clients by their *exact* batch size and runs
  one stacked forward/backward per size group — unequal shard sizes cost
  extra group dispatches only on the ragged tail steps, while all
  full-size batches stay in one stack.
- Clients whose epoch ran out of batches skip the optimizer step entirely
  (masked), keeping weights and momentum bit-untouched.

Eligibility
-----------
Only clients whose update is *provably* plain honest local SGD are
cohorted: ``produce_update`` must be exactly
:meth:`~repro.fl.client.HonestClient.produce_update` (subclasses that
override it — every attacker — fall back to the per-model path), the
client must not opt out via ``cohort_safe = False``, and the model
architecture must be stackable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.client import Client, HonestClient, LocalTrainingConfig
from repro.nn.network import Network
from repro.nn.stacked import (
    StackedNetwork,
    StackedSGD,
    clip_gradients_stacked,
    stacked_softmax_ce_grad,
    supports_stacking,
)


def is_cohortable(client: Client) -> bool:
    """Whether ``client``'s update may be computed by the stacked trainer."""
    return (
        getattr(client, "cohort_safe", False)
        and type(client).produce_update is HonestClient.produce_update
        and len(client.dataset) > 0
    )


def plan_cohorts(
    clients: Sequence[Client] | Mapping[int, Client],
    contributor_ids: Sequence[int],
    global_model: Network,
    cohort_size: int,
    spread_over: int | None = None,
) -> list[list[int]]:
    """Partition a round's cohortable contributors into stacked chunks.

    Returns chunks of at least two clients (a single leftover trains
    per-model — identical result, no stacking overhead), preserving
    contributor order.  ``spread_over`` caps the chunk size so ``n`` chunks
    spread evenly over that many workers (each worker stacks its slice of
    the fan-out); ``cohort_size < 2`` or an unstackable architecture plans
    nothing.
    """
    if cohort_size < 2 or not supports_stacking(global_model):
        return []
    # A ClientRegistry answers cohortability from metadata (factory
    # contract + shard length) without materializing anyone; eager
    # lists/dicts probe the client object itself.
    probe = getattr(clients, "is_cohortable", None)
    if callable(probe):
        eligible = [cid for cid in contributor_ids if probe(cid)]
    else:
        eligible = [cid for cid in contributor_ids if is_cohortable(clients[cid])]
    if len(eligible) < 2:
        return []
    size = cohort_size
    if spread_over is not None and spread_over > 0:
        size = min(size, -(-len(eligible) // spread_over))
    size = max(size, 2)
    chunks = [eligible[i : i + size] for i in range(0, len(eligible), size)]
    return [chunk for chunk in chunks if len(chunk) >= 2]


def cohort_updates(
    global_model: Network,
    shards: Sequence[Dataset],
    config: LocalTrainingConfig,
    rngs: Sequence[np.random.Generator],
) -> list[np.ndarray]:
    """Train one clone of ``global_model`` per shard, stacked; return updates.

    The returned flat vectors are ``U_m = L_m - G``, bit-identical to what
    ``HonestClient.produce_update`` computes one model at a time with the
    same ``rngs`` (see module docstring for why).
    """
    if len(shards) != len(rngs):
        raise ValueError(f"{len(shards)} shards but {len(rngs)} rng streams")
    if not shards:
        return []
    for shard in shards:
        if len(shard) == 0:
            raise ValueError("cannot train on an empty dataset")
    num_models = len(shards)
    global_flat = global_model.get_flat()
    stacked = StackedNetwork.from_models([global_model] * num_models)
    optimizer = StackedSGD(
        stacked.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    sizes = [len(shard) for shard in shards]
    batch = config.batch_size
    steps = max(-(-n // batch) for n in sizes)
    for _ in range(config.epochs):
        # Per-client permutation, drawn at epoch start from the client's
        # own stream — the same draw, at the same point in the stream, as
        # the per-model loop makes.
        orders = [rng.permutation(n) for rng, n in zip(rngs, sizes)]
        for step in range(steps):
            start = step * batch
            groups: dict[int, list[int]] = {}
            for m, n in enumerate(sizes):
                if start < n:
                    groups.setdefault(min(batch, n - start), []).append(m)
            if not groups:
                break
            active = np.zeros(num_models, dtype=bool)
            stacked.zero_grad()
            for batch_size in sorted(groups):
                idx = groups[batch_size]
                rows = [orders[m][start : start + batch_size] for m in idx]
                xb = np.stack([shards[m].x[r] for m, r in zip(idx, rows)])
                yb = np.stack([shards[m].y[r] for m, r in zip(idx, rows)])
                # A group spanning the whole stack (the common case: all
                # shards still have full batches) skips the per-group
                # weight gather/scatter entirely.
                logits = stacked.forward(
                    xb, train=True, idx=None if len(idx) == num_models else idx
                )
                stacked.backward(stacked_softmax_ce_grad(logits, yb))
                active[idx] = True
            if config.max_grad_norm is not None:
                clip_gradients_stacked(
                    stacked.parameters(), config.max_grad_norm, active
                )
            optimizer.step(active=None if active.all() else active)
    flats = stacked.get_flat()
    return [flats[m] - global_flat for m in range(num_models)]


__all__ = ["cohort_updates", "is_cohortable", "plan_cohorts"]
