"""Versioned, refcounted stores for flat model-weight vectors.

BaFFLe's feedback loop moves the same few models around constantly: the
candidate goes to every validating client together with the ``l + 1``-model
history (Sec. VI-D estimates ~10 MB per model), and every selected client
receives the current global model.  Shipping those float64 blobs through
pickle pipes makes per-round transport O(model x (clients + validators +
history)) — the redundant data movement BackFed (Dao et al., 2025)
identifies as the bottleneck of FL-backdoor benchmarking at scale.

A :class:`ModelStore` removes the redundancy.  Weights are *published* once
under a monotonically increasing integer version and every consumer — the
server's :class:`~repro.core.history.ModelHistory`, the
:class:`~repro.fl.parallel.ProcessPoolRoundExecutor`, worker processes —
refers to them by that version key.  Two implementations share the exact
same publish/release bookkeeping (so engine runs are bit-identical across
stores):

- :class:`InProcessModelStore` (default): a plain in-process dict of
  read-only arrays.  Zero-copy references inside one process; a process
  pool on top of it falls back to pickle-pipe weight transport.
- :class:`SharedMemoryModelStore`: one ``multiprocessing.shared_memory``
  segment per version.  Worker processes attach to the arena once (via the
  picklable :meth:`~SharedMemoryModelStore.worker_handle`) and resolve
  version keys locally, so per-round transport drops to O(1 new model):
  only the bytes *newly copied into the arena* move, independent of
  history length and fan-out width.

Publishing is content-addressed: :meth:`ModelStore.publish` digests the
weight bytes and returns the existing version when identical content is
already live (the common case: the global model a round starts from *is*
the latest committed history entry, so re-publishing it costs zero bytes).
:meth:`ModelStore.publish_new` bypasses the digest lookup for callers that
need a fresh version tag per call (the history's strictly increasing
version numbering).

Segments are refcounted — :meth:`~ModelStore.acquire` / :meth:`release` —
and a shared-memory segment is unlinked the moment its count reaches zero.
:meth:`~ModelStore.close` (also ``__exit__`` and a best-effort ``__del__``)
unlinks every live segment, so a crashed *worker* never leaks ``/dev/shm``
entries: workers only attach, the owning process is the only creator.

Weight compression rides on the publish/attach seam: every store applies a
:class:`~repro.fl.compression.WeightCodec` when a vector is published and
decodes on :meth:`~ModelStore.get`, so compressed transport needs no
second code path — the arena simply holds codec-encoded segments (a
self-describing header plus payload, see
:class:`~repro.fl.compression.CompressedSegment`) and workers decode
locally after attaching.  Delta codecs pin their parent versions with
store references (released in cascade on eviction), so a rolled-back or
evicted child can never leave a straggler with an unresolvable chain;
:data:`~repro.fl.compression.MAX_DELTA_CHAIN` bounds the chain length by
re-basing on a dense segment.  ``bytes_published`` counts *compressed*
payload bytes (what transport actually moves); ``raw_bytes_published``
keeps the uncompressed figure for the compression-ratio telemetry.

:class:`ValidatorProfileTable` rides along: a table of validator error
profiles keyed by ``(validator_id, version)``.  Profiles are deterministic
functions of (model, dataset), so the parent collects the profiles workers
compute, files them under the committed version, and ships the relevant
entries back as per-task hints — commit-time profile reuse
(``note_committed``) thereby reaches worker processes without a
cross-process mutable dict.  Profiles are a few hundred bytes (two arrays
of ``num_classes`` floats), orders of magnitude below one model, so the
hint traffic is negligible next to the weight transport it eliminates.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from collections.abc import Iterable
from multiprocessing import shared_memory

import numpy as np

from repro.fl.compression import (
    MAX_DELTA_CHAIN,
    CompressedSegment,
    WeightCodec,
    decode_segment,
    make_codec,
)
from repro.nn.precision import active_dtype

#: Prefix shared by every shared-memory segment this package creates; the
#: CI leak check greps ``/dev/shm`` for it.
SHM_NAME_PREFIX = "bfl"

#: Store backends accepted by :func:`make_model_store` (also the config
#: validation set and the CLI ``--store`` choices).
STORE_KINDS = ("auto", "inprocess", "shared")


def _as_flat(flat: np.ndarray) -> np.ndarray:
    """Flatten-check + cast to the active precision-policy dtype.

    The store's content digests and byte counters are taken over the
    policy-dtype bytes, so a float32 run dedups, transports, and accounts
    in float32 end to end (exactly half the identity-codec bytes).
    """
    flat = np.ascontiguousarray(flat, dtype=active_dtype())
    if flat.ndim != 1:
        raise ValueError(f"model store holds flat vectors, got shape {flat.shape}")
    return flat


class ModelStore:
    """Versioned weight-vector store with refcounted entries.

    Subclasses implement the four storage primitives (``_write``, ``_read``,
    ``_delete``, ``_delete_all``); all version allocation, content
    addressing and refcount bookkeeping lives here so every store behaves
    identically — the spine of the cross-store equivalence guarantee.
    """

    #: Whether worker processes can attach to this store's storage
    #: (:meth:`worker_handle` returns a picklable handle).
    shareable = False

    def __init__(self, codec: "WeightCodec | str | None" = None) -> None:
        #: The transport codec applied at publish time (identity default).
        self.codec: WeightCodec = make_codec(codec)
        self._refs: dict[int, int] = {}
        #: ``digest -> live versions holding that content`` (``publish_new``
        #: can legitimately create several); dedup resolves to the newest.
        self._digests: dict[bytes, list[int]] = {}
        self._by_version_digest: dict[int, bytes] = {}
        #: Exact vector lengths per version (delta-parent eligibility, and
        #: ``segment.size`` is page-rounded on some platforms).
        self._lengths: dict[int, int] = {}
        #: ``child version -> parent version`` pins for delta segments; the
        #: child holds one reference on its parent until it is evicted.
        self._parents: dict[int, int] = {}
        #: Delta-chain depth per version (0 = dense); bounded by
        #: :data:`~repro.fl.compression.MAX_DELTA_CHAIN` via re-basing.
        self._chain_depth: dict[int, int] = {}
        self._next_version = 0
        self._bytes_published = 0
        self._raw_bytes_published = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Publishing / lookup
    # ------------------------------------------------------------------
    def publish(self, flat: np.ndarray) -> int:
        """Store ``flat`` and return its version (content-deduplicated).

        If a live version already holds identical bytes, that version's
        refcount is incremented and no data is copied — publishing the
        unchanged global model round after round costs zero bytes.
        """
        flat = _as_flat(flat)
        digest = hashlib.sha1(flat.tobytes()).digest()
        live = self._digests.get(digest)
        if live:
            version = live[-1]
            self._refs[version] += 1
            return version
        return self._publish_at(self._alloc_version(), flat, digest)

    def publish_new(self, flat: np.ndarray) -> int:
        """Store ``flat`` under a guaranteed-fresh version (no dedup)."""
        flat = _as_flat(flat)
        digest = hashlib.sha1(flat.tobytes()).digest()
        return self._publish_at(self._alloc_version(), flat, digest)

    def adopt(self, version: int, flat: np.ndarray) -> int:
        """Store ``flat`` under an explicit ``version`` (store migration).

        Used by :meth:`repro.core.history.ModelHistory.bind_store` to carry
        already-assigned version numbers into a new store; the internal
        counter jumps past ``version`` so future allocations stay unique.
        """
        if version in self._refs:
            raise ValueError(f"version {version} is already live in this store")
        flat = _as_flat(flat)
        digest = hashlib.sha1(flat.tobytes()).digest()
        self._next_version = max(self._next_version, version + 1)
        return self._publish_at(version, flat, digest)

    def _alloc_version(self) -> int:
        version = self._next_version
        self._next_version += 1
        return version

    def _publish_at(self, version: int, flat: np.ndarray, digest: bytes) -> int:
        if self._closed:
            raise RuntimeError("model store is closed")
        segment = self._encode(flat)
        self._write(version, segment)
        self._bytes_published += segment.nbytes
        self._raw_bytes_published += flat.nbytes
        self._refs[version] = 1
        self._digests.setdefault(digest, []).append(version)
        self._by_version_digest[version] = digest
        self._lengths[version] = flat.shape[0]
        if segment.parent_version is not None:
            # Delta segment: pin the parent so the chain stays decodable
            # for any consumer (including stragglers holding this version
            # after a rollback) until this child itself is evicted.
            self.acquire(segment.parent_version)
            self._parents[version] = segment.parent_version
            self._chain_depth[version] = (
                self._chain_depth.get(segment.parent_version, 0) + 1
            )
        else:
            self._chain_depth[version] = 0
        return version

    def _encode(self, flat: np.ndarray) -> CompressedSegment:
        """Codec-encode ``flat``, choosing a delta parent when eligible.

        The returned segment records the parent version iff the codec
        actually encoded against it.
        """
        parent_version = None
        parent = None
        if self.codec.needs_parent:
            parent_version = self._pick_parent(flat.shape[0])
            if parent_version is not None:
                parent = self.get(parent_version)
        return self.codec.encode(flat, parent, parent_version)

    def _pick_parent(self, num_params: int) -> int | None:
        """Newest live version usable as a delta parent (or None).

        The newest same-length version is the only candidate (it is the
        closest base, so deltas stay small); when its chain depth reaches
        :data:`~repro.fl.compression.MAX_DELTA_CHAIN` the publish re-bases
        on a dense segment instead — bounding reconstruction cost and the
        transitive parent pins a single segment can hold.
        """
        for version in sorted(self._refs, reverse=True):
            if self._lengths.get(version) == num_params:
                if self._chain_depth.get(version, 0) < MAX_DELTA_CHAIN:
                    return version
                return None
        return None

    def get(self, version: int) -> np.ndarray:
        """Read-only flat weight vector stored under ``version``.

        Decodes the stored segment through the codec registry, resolving
        delta parents recursively (chains are bounded by the re-base cap).
        """
        if version not in self._refs:
            raise KeyError(f"version {version} is not live in this store")
        segment = self._read(version)
        parent = (
            self.get(segment.parent_version)
            if segment.parent_version is not None
            else None
        )
        return decode_segment(segment, parent)

    def __contains__(self, version: int) -> bool:
        return version in self._refs

    def versions(self) -> list[int]:
        """Live versions, ascending."""
        return sorted(self._refs)

    def min_live_version(self) -> int | None:
        """The oldest live version (workers' attachment-eviction floor).

        Rollback safety: every consumer that ships a version key to a
        worker first ``acquire``-s that version and releases it only after
        the worker task completed (see
        :class:`~repro.fl.parallel.PendingVotes`).  The floor is therefore
        always <= any version an in-flight task may still resolve, even
        while a rollback is releasing the history's own references to a
        withdrawn suffix — eviction can never race a straggler.
        """
        return min(self._refs) if self._refs else None

    @property
    def bytes_published(self) -> int:
        """Cumulative *compressed* payload bytes copied into the store
        (dedup hits cost 0; the identity codec makes this the raw figure)."""
        return self._bytes_published

    @property
    def raw_bytes_published(self) -> int:
        """Cumulative uncompressed float64 bytes published (dedup = 0)."""
        return self._raw_bytes_published

    @property
    def compression_ratio(self) -> float:
        """``raw / compressed`` bytes published so far (1.0 when empty)."""
        if not self._bytes_published:
            return 1.0
        return self._raw_bytes_published / self._bytes_published

    # ------------------------------------------------------------------
    # Refcounting
    # ------------------------------------------------------------------
    def acquire(self, version: int) -> None:
        """Add a reference to a live version."""
        if version not in self._refs:
            raise KeyError(f"version {version} is not live in this store")
        self._refs[version] += 1

    def release(self, version: int) -> None:
        """Drop a reference; the entry is evicted when none remain.

        Evicting a delta segment releases its pinned parent in turn, so a
        chain whose last external consumer disappears unwinds completely
        (and a parent still referenced elsewhere survives the cascade).
        """
        count = self._refs.get(version)
        if count is None:
            raise KeyError(f"version {version} is not live in this store")
        if count > 1:
            self._refs[version] = count - 1
            return
        del self._refs[version]
        digest = self._by_version_digest.pop(version)
        live = self._digests[digest]
        live.remove(version)
        if not live:
            del self._digests[digest]
        self._lengths.pop(version, None)
        self._chain_depth.pop(version, None)
        self._delete(version)
        parent = self._parents.pop(version, None)
        if parent is not None:
            self.release(parent)

    def refcount(self, version: int) -> int:
        return self._refs.get(version, 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran (releases become no-ops)."""
        return self._closed

    def worker_handle(self):
        """Picklable handle for worker-process attachment (None here)."""
        return None

    def close(self) -> None:
        """Evict every entry and release backing storage (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._refs.clear()
        self._digests.clear()
        self._by_version_digest.clear()
        self._lengths.clear()
        self._parents.clear()
        self._chain_depth.clear()
        self._delete_all()

    def __enter__(self) -> "ModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-exit safety net
        try:
            self.close()
        except Exception:  # repro: allow[swallowed-exception] -- interpreter teardown: close() may race module unloading and must stay silent
            pass

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------
    def _write(self, version: int, segment: CompressedSegment) -> None:
        """Copy the codec-encoded ``segment`` into storage."""
        raise NotImplementedError

    def _read(self, version: int) -> CompressedSegment:
        raise NotImplementedError

    def _delete(self, version: int) -> None:
        raise NotImplementedError

    def _delete_all(self) -> None:
        raise NotImplementedError


class InProcessModelStore(ModelStore):
    """Plain in-process storage: codec segments in a dict (the default)."""

    def __init__(self, codec: "WeightCodec | str | None" = None) -> None:
        super().__init__(codec)
        self._segments: dict[int, CompressedSegment] = {}

    def _write(self, version: int, segment: CompressedSegment) -> None:
        # Pin the payload down as immutable bytes: encode may hand back a
        # view into a caller-owned buffer.
        segment.payload = bytes(segment.payload)
        self._segments[version] = segment

    def _read(self, version: int) -> CompressedSegment:
        return self._segments[version]

    def _delete(self, version: int) -> None:
        del self._segments[version]

    def _delete_all(self) -> None:
        self._segments.clear()


class SharedMemoryModelStore(ModelStore):
    """One ``multiprocessing.shared_memory`` segment per live version.

    The creating process is the sole owner: it creates and unlinks every
    segment.  Worker processes attach read-only through the picklable
    handle from :meth:`worker_handle` and never create or unlink, so a
    worker crash cannot leak ``/dev/shm`` entries — cleanup is entirely
    :meth:`close`'s (or eviction's) responsibility here in the parent.
    """

    shareable = True

    def __init__(
        self,
        name_prefix: str | None = None,
        codec: "WeightCodec | str | None" = None,
    ) -> None:
        super().__init__(codec)
        self.name_prefix = name_prefix or (
            f"{SHM_NAME_PREFIX}-{os.getpid():x}-{secrets.token_hex(4)}"
        )
        self._segments: dict[int, shared_memory.SharedMemory] = {}

    def segment_name(self, version: int) -> str:
        return f"{self.name_prefix}-{version}"

    def worker_handle(self) -> "ShmStoreHandle":
        return ShmStoreHandle(self.name_prefix)

    def _write(self, version: int, segment: CompressedSegment) -> None:
        # The shared segment holds the self-describing wire form (header +
        # payload): attached workers parse the header and decode locally,
        # so no out-of-band metadata needs to travel per version.
        raw = segment.to_bytes()
        shm_segment = shared_memory.SharedMemory(
            name=self.segment_name(version), create=True, size=len(raw)
        )
        shm_segment.buf[: len(raw)] = raw
        self._segments[version] = shm_segment

    def _read(self, version: int) -> CompressedSegment:
        return CompressedSegment.from_buffer(self._segments[version].buf)

    def _delete(self, version: int) -> None:
        self._destroy(self._segments.pop(version))

    def _delete_all(self) -> None:
        for segment in self._segments.values():
            self._destroy(segment)
        self._segments.clear()

    @staticmethod
    def _destroy(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a caller still holds a view;
            pass  # the mapping dies with its last reference, unlink below works
        segment.unlink()


class ShmStoreHandle:
    """Picklable attachment recipe for a :class:`SharedMemoryModelStore`.

    Travels to worker processes once (in the pool initializer); ``attach``
    builds the worker-side view on the far side.
    """

    def __init__(self, name_prefix: str) -> None:
        self.name_prefix = name_prefix

    def attach(self) -> "ShmWorkerView":
        return ShmWorkerView(self.name_prefix)


class ShmWorkerView:
    """Worker-side, attach-only view of a shared-memory arena.

    Segment attachments are cached per version; :meth:`evict_below` closes
    attachments for versions the owner has already retired (the owner ships
    its current minimum live version with each task as the floor).  Unlike
    the owning store, ``close`` here never unlinks.
    """

    def __init__(self, name_prefix: str) -> None:
        self.name_prefix = name_prefix
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        # Telemetry: attach traffic vs. cache reuse, drained by the
        # worker's trace payload when tracing is enabled.
        self.attach_count = 0
        self.cache_hits = 0

    def get(self, version: int, num_params: int, cache: bool = True) -> np.ndarray:
        """Read-only flat vector for ``version`` (attaches on first use).

        The attached segment is self-describing (codec header + payload):
        the vector is decoded locally through the codec registry, and a
        delta segment's parent chain is resolved recursively via cached
        attachments (the owner pins parents with store references, so a
        chain is always attachable while any child of it is in flight).

        ``cache=False`` is for one-shot versions (rejected candidates never
        come back): the attachment is closed immediately and a copy is
        returned, so short-lived segments are not pinned past the owner's
        unlink while the eviction floor stalls on a run of rejections.
        """
        segment = self._segments.get(version)
        if segment is not None:
            self.cache_hits += 1
        if segment is None and not cache:
            self.attach_count += 1
            one_shot = shared_memory.SharedMemory(
                name=f"{self.name_prefix}-{version}"
            )
            try:
                flat = np.array(self._decode(one_shot, num_params))
            finally:
                self._close_segment(one_shot)
            flat.flags.writeable = False
            return flat
        if segment is None:
            # Attaching registers the name with the resource tracker even
            # though this process does not own the segment (fixed by
            # ``track=False`` in Python 3.13+).  Pool workers share the
            # owner's tracker process, whose cache is a set: the duplicate
            # registration collapses and is cleared by the owner's
            # ``unlink``, so no unregister dance is needed here — and
            # unregistering would wrongly drop the owner's entry.
            self.attach_count += 1
            segment = shared_memory.SharedMemory(
                name=f"{self.name_prefix}-{version}"
            )
            self._segments[version] = segment
        return self._decode(segment, num_params)

    def _decode(
        self, shm_segment: shared_memory.SharedMemory, num_params: int
    ) -> np.ndarray:
        """Decode one attached segment, resolving its parent chain."""
        segment = CompressedSegment.from_buffer(shm_segment.buf)
        parent = None
        if segment.parent_version is not None:
            # Parents are long-lived (the owner pins them), so resolve them
            # through the caching path regardless of how the child is read.
            parent = self.get(segment.parent_version, num_params)
        return decode_segment(segment, parent)

    def evict_below(self, floor: int | None) -> None:
        """Close cached attachments for versions below ``floor``."""
        if floor is None:
            return
        for version in [v for v in self._segments if v < floor]:
            self._close_segment(self._segments.pop(version))

    def close(self) -> None:
        for segment in self._segments.values():
            self._close_segment(segment)
        self._segments.clear()

    @staticmethod
    def _close_segment(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view still alive in a task
            pass


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive but not ours
        return True
    return True


def reap_orphan_segments(keep_prefixes: Iterable[str] = ()) -> list[str]:
    """Unlink ``/dev/shm`` segments whose owning process is dead.

    Every segment this package creates encodes its owner's pid in the
    store's name prefix (``bfl-<pid hex>-<token>-<version>``), and only
    the owning process ever creates or unlinks — workers attach-only.  A
    *worker* crash therefore cannot leak, but a killed owner (a previous
    run's parent, a crashed driver) strands its whole arena.  This reaper
    is the recovery path the executors run after a pool death and on
    close: any ``bfl-`` segment whose embedded owner pid no longer exists
    is unlinked, so crashes cannot pin ``/dev/shm`` refcounts forever.

    ``keep_prefixes`` protects the calling run's own live arenas (their
    owner is alive anyway; the guard makes the call safe even mid-crash).
    Returns the reaped segment names.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    marker = f"{SHM_NAME_PREFIX}-"
    reaped: list[str] = []
    keep = tuple(prefix for prefix in keep_prefixes if prefix)
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return []
    for name in names:
        if not name.startswith(marker):
            continue
        if any(name.startswith(prefix) for prefix in keep):
            continue
        try:
            owner_pid = int(name.split("-")[1], 16)
        except (IndexError, ValueError):
            continue  # not our naming scheme; leave it alone
        if owner_pid == os.getpid() or _pid_alive(owner_pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
        except OSError:  # pragma: no cover - raced another reaper
            continue
        reaped.append(name)
    return reaped


def make_model_store(
    workers: int,
    kind: str = "auto",
    codec: "WeightCodec | str | None" = None,
    require_lossless: bool = True,
) -> ModelStore:
    """Store for an execution setting.

    ``"auto"`` picks shared memory whenever a process pool will exist
    (``workers >= 2``) and the cheap in-process store otherwise;
    ``"inprocess"``/``"shared"`` force a choice (the forced shared store is
    how the benchmarks compare transport paths at equal worker counts).

    ``codec`` selects the transport compression
    (:mod:`repro.fl.compression`).  ``require_lossless=True`` (default)
    rejects lossy codecs: they void the cross-engine bit-identical
    equivalence guarantee and must be admitted explicitly
    (``require_lossless=False``; the experiment layer's ``allow_lossy``).
    """
    if kind not in STORE_KINDS:
        raise ValueError(f"store kind must be one of {STORE_KINDS}, got {kind!r}")
    codec_obj = make_codec(codec)
    if require_lossless and not codec_obj.lossless:
        raise ValueError(
            f"codec {codec_obj.name!r} is lossy and voids the bit-identical "
            "equivalence guarantee; pass require_lossless=False (config/CLI: "
            "allow_lossy / --allow-lossy) to admit it for scale runs"
        )
    if kind == "shared" or (kind == "auto" and workers >= 2):
        return SharedMemoryModelStore(codec=codec_obj)
    return InProcessModelStore(codec=codec_obj)


class ValidatorProfileTable:
    """Error profiles keyed by ``(validator_id, version)``.

    The parent-process side of cross-worker profile reuse.  Worker tasks
    return the profiles they compute; the executor files committed-version
    profiles directly (:meth:`put`) and *stages* candidate profiles
    (:meth:`stage`) until the server decides the round.  Staged entries are
    keyed by the candidate's staged store version, so several rounds may be
    pending at once (the pipelined engine overlaps validation of round
    ``r`` with round ``r + 1``) without their candidate profiles
    cross-filing.  On acceptance the defense calls :meth:`commit_staged`
    with that version — commit is a refcount-style key transfer, the staged
    version *is* the committed history version — and the next round ships
    those profiles back to whichever worker votes for that validator,
    saving the forward pass ``note_committed`` saves on the sequential
    path.  On rejection (or rollback of an optimistic commit)
    :meth:`discard_staged` drops that round's entries, and
    :meth:`evict_version` follows the history's eviction/rollback so
    rejected, rolled-back or retired profiles never accumulate.
    """

    def __init__(self) -> None:
        self._profiles: dict[tuple[int, int], object] = {}
        self._staged: dict[tuple[int, int], object] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def get(self, validator_id: int, version: int):
        return self._profiles.get((validator_id, version))

    def put(self, validator_id: int, version: int, profile) -> None:
        self._profiles[(validator_id, version)] = profile

    def hints(self, validator_id: int, versions: Iterable[int]) -> dict[int, object]:
        """Known profiles of ``validator_id`` for the given versions.

        Staged entries count as known: a staged profile is a deterministic
        function of the weight bytes stored under its (unique) version, so
        a pipelined round whose history contains a still-pending optimistic
        commit reuses the pending candidate's profile instead of
        recomputing it per validator.
        """
        hints: dict[int, object] = {}
        for version in versions:
            profile = self._profiles.get((validator_id, version))
            if profile is None:
                profile = self._staged.get((validator_id, version))
            if profile is not None:
                hints[version] = profile
        return hints

    def stage(self, validator_id: int, version: int, profile) -> None:
        """Hold a candidate profile (staged under ``version``) until the
        round is decided."""
        self._staged[(validator_id, version)] = profile

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def commit_staged(self, version: int) -> None:
        """File the profiles staged under ``version`` as committed."""
        for key in [k for k in self._staged if k[1] == version]:
            self._profiles[key] = self._staged.pop(key)

    def discard_staged(self, version: int | None = None) -> None:
        """Drop staged profiles of ``version`` (``None`` = every round)."""
        if version is None:
            self._staged.clear()
            return
        for key in [k for k in self._staged if k[1] == version]:
            del self._staged[key]

    def evict_version(self, version: int) -> None:
        """Drop all profiles of a version no longer retained by the history."""
        for key in [k for k in self._profiles if k[1] == version]:
            del self._profiles[key]
        self.discard_staged(version)

    def clear(self) -> None:
        self._profiles.clear()
        self._staged.clear()


__all__ = [
    "ModelStore",
    "InProcessModelStore",
    "SharedMemoryModelStore",
    "ShmStoreHandle",
    "ShmWorkerView",
    "ValidatorProfileTable",
    "make_model_store",
    "reap_orphan_segments",
    "SHM_NAME_PREFIX",
    "STORE_KINDS",
]
