"""Deterministic fault injection for the round-execution engine.

BaFFLe's deployment model has feedback arriving from *remote client
validators* — machines that crash, stall, and drop offline — so the
executors (:mod:`repro.fl.parallel`) carry a resilience layer: per-task
deadlines, ``BrokenProcessPool`` detection with pool rebuild, retry by
replay, and graceful engine degradation.  This module supplies the two
things that layer needs to be *testable*: a replayable fault plan and a
ledger of what the recovery machinery actually did.

Fault-spec grammar
------------------
A plan is a ``,``/``;``-separated list of entries::

    kind@round.phase[.index][=param]

========  ============================================================
kind      meaning
========  ============================================================
crash     kill the task at slot ``index`` (worker ``os._exit`` under
          the process pool — a genuine ``BrokenProcessPool``; an
          :class:`InjectedWorkerCrash` raise under the thread and
          sequential engines)
delay     sleep ``param`` seconds at task start (a straggler; combined
          with a task deadline this forces a reassignment)
drop      the named validator's vote never arrives (phase must be
          ``vote``, ``index`` is the validator id)
========  ============================================================

``phase`` is ``train`` or ``validate`` for crash/delay (``index`` is the
dispatch slot: the slice index under the process pool, the submission
ordinal under the thread engine, always ``0`` sequentially; omitted =
first task of the phase) and ``vote`` for drop.  Examples::

    crash@3.train            # kill round 3's first training task
    delay@4.validate.1=0.3   # second validation slice straggles 300 ms
    drop@5.vote.7            # validator 7's round-5 vote is lost

Crash and delay entries are consumed **one-shot** at dispatch time, so
the retry that recovers from them is clean — recovery re-executes the
task *without* the fault, and per-``(round, entity)`` RNG streams make
the replay bit-identical.  Drop entries are **pure** functions of the
round (:meth:`FaultPlan.dropped`): a pipelined replay or a re-collected
quorum sees the same loss, so fault placement never depends on execution
order.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

#: Fault kinds accepted by :meth:`FaultPlan.parse`.
FAULT_KINDS = ("crash", "delay", "drop")

#: Dispatch phases a crash/delay entry may target.
TASK_PHASES = ("train", "validate")

#: Quorum policies for rounds whose votes go missing (config validation
#: set and the CLI ``--quorum-policy`` choices): ``strict`` stalls the
#: round (raises :class:`QuorumStallError`), ``degrade`` recomputes the
#: accept/reject decision over the reduced quorum once ``quorum_min``
#: votes arrived.
QUORUM_POLICIES = ("strict", "degrade")

#: How many times a crashed/straggling task is re-executed before the
#: failure propagates.
DEFAULT_TASK_RETRIES = 2

#: How many pool deaths an executor absorbs (rebuilding each time)
#: before it demotes itself down the engine ladder.
DEFAULT_POOL_REBUILDS = 2


class InjectedWorkerCrash(RuntimeError):
    """A planned in-process task death (thread / sequential engines).

    The process pool does not raise this — a planned crash there is a
    worker ``os._exit``, indistinguishable from a segfault or OOM kill.
    """


class QuorumStallError(RuntimeError):
    """A round's validator quorum cannot be decided.

    Raised under the ``strict`` quorum policy whenever a requested vote
    went missing, and under ``degrade`` when fewer than ``quorum_min``
    votes arrived.
    """


_ENTRY_RE = re.compile(
    r"""^(?P<kind>[a-z]+)
        @(?P<round>\d+)
        \.(?P<phase>[a-z]+)
        (?:\.(?P<index>\d+))?
        (?:=(?P<param>[0-9.]+))?$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault-plan entry."""

    kind: str
    round_idx: int
    phase: str
    #: Dispatch slot (crash/delay; ``None`` = first task of the phase)
    #: or validator id (drop).
    index: int | None = None
    #: Delay seconds (``delay`` only).
    param: float = 0.0

    def __str__(self) -> str:
        text = f"{self.kind}@{self.round_idx}.{self.phase}"
        if self.index is not None:
            text += f".{self.index}"
        if self.kind == "delay":
            text += f"={self.param:g}"
        return text


class FaultPlan:
    """A deterministic, replayable schedule of injected failures.

    Crash/delay entries are handed out one-shot by :meth:`take` (the
    recovery path must not re-trip the fault it recovers from); drop
    entries are answered statelessly by :meth:`dropped` so replays and
    re-collections observe the identical loss.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] = ()) -> None:
        self.specs = tuple(specs)
        self._consumed: set[int] = set()
        # take() may be called from pool threads (the thread engine's
        # submit path); consumption must not double-fire a fault.
        self._lock = threading.Lock()

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def parse(cls, spec: "str | FaultPlan | None") -> "FaultPlan":
        """Parse a fault-spec string (see the module grammar).

        ``None``/empty parses to the empty plan; an existing plan passes
        through unchanged (idempotent config plumbing).
        """
        if spec is None:
            return cls.empty()
        if isinstance(spec, FaultPlan):
            return spec
        entries: list[FaultSpec] = []
        for raw in re.split(r"[,;]", spec):
            raw = raw.strip()
            if not raw:
                continue
            match = _ENTRY_RE.match(raw)
            if match is None:
                raise ValueError(
                    f"bad fault entry {raw!r}; expected "
                    "kind@round.phase[.index][=param], e.g. 'crash@3.train', "
                    "'delay@4.validate.1=0.3', 'drop@5.vote.7'"
                )
            kind = match.group("kind")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in {raw!r}; "
                    f"known: {FAULT_KINDS}"
                )
            phase = match.group("phase")
            index = match.group("index")
            param = match.group("param")
            if kind == "drop":
                if phase != "vote":
                    raise ValueError(
                        f"drop faults target votes: write 'drop@R.vote.V', "
                        f"got {raw!r}"
                    )
                if index is None:
                    raise ValueError(
                        f"drop fault {raw!r} needs a validator id: "
                        "'drop@R.vote.V'"
                    )
            elif phase not in TASK_PHASES:
                raise ValueError(
                    f"{kind} faults target a task phase {TASK_PHASES}, "
                    f"got {phase!r} in {raw!r}"
                )
            if param is not None and kind != "delay":
                raise ValueError(
                    f"only delay faults take a =param, got {raw!r}"
                )
            entries.append(FaultSpec(
                kind=kind,
                round_idx=int(match.group("round")),
                phase=phase,
                index=None if index is None else int(index),
                param=float(param) if param is not None else 0.0,
            ))
        return cls(tuple(entries))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __str__(self) -> str:
        return ";".join(str(spec) for spec in self.specs)

    def take(
        self, kind: str, round_idx: int, phase: str, index: int
    ) -> FaultSpec | None:
        """Consume the matching crash/delay entry for one dispatch slot.

        An entry without an index matches the phase's slot 0 (the first
        dispatched task).  Each entry fires at most once — the retry that
        recovers from it re-dispatches fault-free.
        """
        with self._lock:
            for position, spec in enumerate(self.specs):
                if position in self._consumed:
                    continue
                if spec.kind != kind or spec.round_idx != round_idx:
                    continue
                if spec.phase != phase:
                    continue
                if (spec.index if spec.index is not None else 0) != index:
                    continue
                self._consumed.add(position)
                return spec
        return None

    def dropped(self, round_idx: int) -> frozenset[int]:
        """Validator ids whose round-``round_idx`` votes are lost.

        Pure (never consumes): a pipelined replay of the round observes
        the identical loss, keeping the plan order-independent.
        """
        return frozenset(
            spec.index
            for spec in self.specs
            if spec.kind == "drop" and spec.round_idx == round_idx
            and spec.index is not None
        )


class ResilienceStats:
    """Ledger of what the executors' recovery machinery did.

    Plain integer counters (thread-safe via one lock — the thread engine
    notes incidents from pool threads) so untraced runs still surface
    retries in their round records; traced runs mirror each increment
    into the tracer's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    FIELDS = (
        "retries",
        "pool_rebuilds",
        "straggler_reassignments",
        "dropped_votes",
        "quorum_degradations",
        "engine_demotions",
        "abandoned_task_errors",
        "orphans_reaped",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def inc(self, name: str, n: int = 1) -> int:
        """Add ``n`` to a counter; returns the new value."""
        if name not in self.FIELDS:
            raise KeyError(f"unknown resilience counter {name!r}")
        with self._lock:
            value = getattr(self, name) + n
            setattr(self, name, value)
        return value

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}

    def total(self) -> int:
        """Sum of every counter (0 = the run never hit the recovery path)."""
        return sum(self.as_dict().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ResilienceStats({inner})"


__all__ = [
    "DEFAULT_POOL_REBUILDS",
    "DEFAULT_TASK_RETRIES",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "QUORUM_POLICIES",
    "QuorumStallError",
    "ResilienceStats",
    "TASK_PHASES",
]
