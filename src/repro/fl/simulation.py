"""The federated round loop with attack and defense hooks.

:class:`FederatedSimulation` drives the process of the paper's Sec. II-B
and Fig. 1: select contributors, collect updates (optionally through the
secure-aggregation simulation), derive the candidate global model, let the
defense accept or reject it, and commit or roll back.

Rejection semantics follow Algorithm 1: a rejected round leaves the global
model unchanged (``G_r <- G_{r-1}``) and the rejected candidate is *not*
added to any history of accepted models.

Execution modes
---------------
Two round loops share the same per-round machinery:

- **sync** (default): each round blocks on its validator quorum before
  committing — validation latency sits on the training critical path.
- **pipelined** (:class:`~repro.fl.parallel.PipelinedRoundExecutor`): the
  server commits the aggregated candidate *optimistically*, immediately
  starts round ``r + 1`` client training, and collects round ``r``'s votes
  concurrently — up to ``pipeline_depth`` rounds run ahead of their open
  quorums.  If a quorum later rejects, the provisional history suffix is
  rolled back and the invalidated rounds are *replayed* from the restored
  state.

Replay makes the pipeline exact, not approximate: per-entity randomness is
keyed by ``(round, entity)`` (:mod:`repro.fl.rng`), and each speculative
round snapshots the sequential server RNG state after contributor
selection, so a replayed round re-derives the aggregation and
validator-sampling draws from a detached generator instead of consuming
fresh randomness.  Committed models and round records are therefore
**bit-identical** to a synchronous run — for every ``pipeline_depth``, not
just the degenerate ``pipeline_depth = 0``.  (Sole caveat: a speculative
candidate whose *finiteness* differs between the speculative and the
replayed base model would shift the sequential stream; non-finite updates
come from diverged or faulty clients, which produce them independently of
the base model, so this does not arise in practice.)
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.fl.aggregation import Aggregator, FedAvgAggregator, apply_global_update
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.config import FLConfig
from repro.fl.model_store import InProcessModelStore, ModelStore
from repro.fl.parallel import RoundExecutor, SequentialExecutor, _is_parallel_safe
from repro.fl.registry import ClientRegistry
from repro.fl.rng import RngStreams
from repro.fl.secure_agg import SecureAggregator
from repro.fl.selection import Selector, UniformSelector
from repro.nn.network import Network
from repro.nn.precision import active_dtype
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def _peak_rss_kb() -> int:
    """Parent-process peak RSS in KiB (0 where unobservable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        rss //= 1024
    return int(rss)


@dataclass(frozen=True)
class DefenseDecision:
    """Outcome of a defense's review of one candidate global model.

    ``reject_votes``/``votes`` carry the feedback-loop detail needed by the
    vote-distribution analysis (paper Fig. 5); a trivial always-accept
    decision uses the defaults.
    """

    accepted: bool
    reject_votes: int = 0
    num_validators: int = 0
    client_votes: Mapping[int, int] = field(default_factory=dict)
    server_vote: int | None = None
    #: Whether this decision was made over a reduced quorum (requested
    #: votes went missing and the defense's ``quorum_policy="degrade"``
    #: proceeded once ``quorum_min`` arrived).
    quorum_degraded: bool = False


@runtime_checkable
class Defense(Protocol):
    """Interface the simulation uses to consult a defense.

    ``review`` judges a candidate global model; ``record_outcome`` tells the
    defense whether the server committed it (so history-based defenses can
    update their trusted-model history).
    """

    def review(
        self, candidate: Network, round_idx: int, rng: np.random.Generator
    ) -> DefenseDecision: ...

    def record_outcome(self, candidate: Network, accepted: bool) -> None: ...


@dataclass
class RoundRecord:
    """Everything the experiments need to know about one round."""

    round_idx: int
    contributor_ids: list[int]
    malicious_present: bool
    accepted: bool
    decision: DefenseDecision
    metrics: dict[str, float] = field(default_factory=dict)
    #: Model-weight bytes the executor moved across process boundaries this
    #: round: 0 for in-process execution, pickled blob bytes for the
    #: pipe-transport pool, bytes newly copied into the shared-memory arena
    #: for a store-backed pool (O(1 new model) per round).  Store-path
    #: bytes are codec-*compressed* payload bytes.
    transport_bytes: int = 0
    #: What ``transport_bytes`` would have been uncompressed (equal under
    #: the identity codec; the basis of ``compression_ratio``).
    raw_transport_bytes: int = 0
    #: Name of the weight codec the round's model store ran
    #: (:mod:`repro.fl.compression`).
    codec: str = "identity"
    #: The highest round index already aggregated when this round's quorum
    #: resolved.  Synchronous rounds resolve within themselves
    #: (``accepted_at_round == round_idx``); pipelined rounds resolve up to
    #: ``pipeline_depth`` rounds later.  The name follows the accepting
    #: case; rejected rounds record their rejection point the same way.
    accepted_at_round: int = -1
    #: ``accepted_at_round - round_idx``: how many rounds of training ran
    #: between this round's aggregation and its quorum resolution (0 in
    #: synchronous mode — the paper's Sec. IV feedback is one round late,
    #: the pipeline makes that latency explicit and off the critical path).
    validation_lag: int = 0
    #: How many times this round was re-executed because an earlier
    #: round's late rejection rolled back the speculative suffix it was
    #: part of (always 0 in synchronous mode).
    rollback_count: int = 0
    #: Parent-process peak RSS in KiB when this round's record was built
    #: (monotone within a run — the OS high-water mark — so the *last*
    #: round's value is the run's peak; 0 where unobservable).
    peak_rss_kb: int = 0
    #: Clients resident in the parent when this round's training finished:
    #: the whole population on the eager path, cohort-sized (overrides
    #: included) under a virtual registry — the observable form of the
    #: bounded-memory claim.  Worker processes materialize and discard
    #: their own slices and are not counted here.
    materialized_clients: int = 0
    #: Wall-clock seconds per round phase (``select``/``train``/
    #: ``aggregate``/``validate``/...), populated only when the simulation
    #: runs with a tracer.  Excluded from equality: timings are
    #: observational and must never break the bit-identity comparisons
    #: the equivalence tests make on records.
    phase_times: dict[str, float] = field(default_factory=dict, compare=False)
    #: Recovery incidents (task retries, pool rebuilds, straggler
    #: reassignments, ...) the executor's resilience ledger accumulated
    #: while this round ran — the per-round delta of
    #: ``executor.resilience.total()``.  Excluded from equality: recovery
    #: effort is observational, the recovered results are bit-identical.
    retries: int = field(default=0, compare=False)
    #: Client votes actually collected for this round's decision (equal to
    #: the requested sample unless votes went missing and the ``degrade``
    #: quorum policy shrank the quorum).  Excluded from equality so
    #: fault-injected runs still compare clean against fault-free ones on
    #: the committed trajectory.
    quorum_size: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.accepted_at_round < 0:
            self.accepted_at_round = self.round_idx

    @property
    def compressed_bytes(self) -> int:
        """The round's transport volume after codec encoding (alias of
        ``transport_bytes``, named for the compression telemetry)."""
        return self.transport_bytes

    @property
    def compression_ratio(self) -> float:
        """``raw / compressed`` transport bytes this round (1.0 when the
        round moved nothing)."""
        if not self.transport_bytes:
            return 1.0
        return self.raw_transport_bytes / self.transport_bytes


@dataclass
class _SpeculativeRound:
    """One issued-but-unresolved round of the pipelined loop.

    Holds everything needed to (a) finalize the round when its quorum
    resolves and (b) *replay* it deterministically if an earlier round's
    rejection rolls it back: the recorded contributor selection and the
    sequential-RNG state snapshot taken right after that selection, from
    which a detached generator re-derives the aggregation and
    validator-sampling draws without touching the live stream.
    """

    round_idx: int
    contributor_ids: list[int]
    base_model: Network
    candidate: Network
    post_select_state: dict
    #: The defense's PendingReview (quorum open), or None when the
    #: decision was known at speculation time.
    pending: object | None
    decision: DefenseDecision | None
    transport_bytes: int
    raw_transport_bytes: int = 0
    rollback_count: int = 0
    materialized_clients: int = 0
    #: Partial phase timings gathered at speculation time (tracing only);
    #: the resolve step adds the validate phase and moves the dict onto
    #: the round's record.
    phase_times: dict[str, float] = field(default_factory=dict)


def _restored_generator(
    template_rng: np.random.Generator, state: dict
) -> np.random.Generator:
    """A detached generator replaying ``template_rng`` from ``state``."""
    generator = np.random.Generator(type(template_rng.bit_generator)())
    generator.bit_generator.state = state
    return generator


#: Methods a defense must provide for genuinely asynchronous (overlapped)
#: validation; defenses lacking them still run under a pipelined executor,
#: resolving at the round boundary like the synchronous loop.
_ASYNC_DEFENSE_METHODS = (
    "review_async",
    "commit_optimistic",
    "resolve_review",
    "finalize_review",
    "rollback_review",
    "cancel_review",
)


class FederatedSimulation:
    """Server-side orchestration of federated training.

    Parameters
    ----------
    global_model:
        The initial global model ``G_0`` (mutated in place across rounds).
    clients:
        The full client population, indexed by ``client_id``.
    config:
        FL hyper-parameters.
    rng:
        Source of the server-side randomness (selection, validator
        sampling).  Client training and validator votes draw from
        independent per-``(round, entity)`` streams spawned off this
        generator's seed sequence (see :mod:`repro.fl.rng`), so their
        results do not depend on execution order.
    selector:
        Client-selection policy; defaults to uniform sampling.
    aggregator:
        Update-combination rule; defaults to FedAvg.
    use_secure_agg:
        Route updates through the secure-aggregation simulation.  Only
        sum-based aggregators are compatible (``FedAvgAggregator`` is).
    defense:
        Optional :class:`Defense`; when absent every round is accepted.
    metric_hooks:
        ``{name: fn(model) -> float}`` evaluated on the committed global
        model after every round (used for paper Fig. 4 time series).
    executor:
        The :class:`~repro.fl.parallel.RoundExecutor` that fans out client
        training and validator votes; defaults to in-process sequential
        execution.  The caller owns the executor's lifecycle.
    model_store:
        The :class:`~repro.fl.model_store.ModelStore` holding the round
        loop's weight vectors (global model, candidate, defense history).
        Defaults to an in-process store; pass a
        :class:`~repro.fl.model_store.SharedMemoryModelStore` so a process
        pool ships version keys instead of weight blobs.  The caller owns
        the store's lifecycle (close it after the executor).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` recording phase spans
        and run metrics (see :mod:`repro.obs`).  Defaults to the zero-cost
        :data:`~repro.obs.trace.NULL_TRACER`; tracing is pure
        instrumentation — it draws no randomness and a traced run commits
        bit-identical models to an untraced one.
    """

    def __init__(
        self,
        global_model: Network,
        clients: Sequence[Client],
        config: FLConfig,
        rng: np.random.Generator,
        selector: Selector | None = None,
        aggregator: Aggregator | None = None,
        use_secure_agg: bool = False,
        defense: Defense | None = None,
        metric_hooks: Mapping[str, Callable[[Network], float]] | None = None,
        executor: RoundExecutor | None = None,
        model_store: ModelStore | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        if len(clients) != config.num_clients:
            raise ValueError(
                f"config says {config.num_clients} clients, got {len(clients)}"
            )
        self.registry = clients if isinstance(clients, ClientRegistry) else None
        if self.registry is None:
            ids = [c.client_id for c in clients]
            if ids != list(range(len(clients))):
                raise ValueError("clients must be ordered with client_id == index")
        # A registry guarantees id == index by construction and is kept
        # as-is: materializing a population list would defeat it.
        self.global_model = global_model
        self.clients = self.registry if self.registry is not None else list(clients)
        self.config = config
        self.rng = rng
        self.selector = selector or UniformSelector(
            config.num_clients, config.clients_per_round
        )
        self.aggregator = aggregator or FedAvgAggregator()
        self.use_secure_agg = use_secure_agg
        if use_secure_agg and self.aggregator.requires_individual_updates:
            raise ValueError(
                f"{type(self.aggregator).__name__} inspects individual updates "
                "and cannot run under secure aggregation"
            )
        self.defense = defense
        self.metric_hooks = dict(metric_hooks or {})
        self.streams = RngStreams.from_rng(rng)
        self.executor = executor or SequentialExecutor()
        # A factory-built executor (make_executor / make_engine) arrives
        # with its store already bound; adopt it rather than double-binding
        # — and refuse a conflicting explicit store outright.
        executor_store = self.executor.store
        if (
            model_store is not None
            and executor_store is not None
            and model_store is not executor_store
        ):
            raise ValueError(
                "executor is already bound to a different model store; "
                "build both through make_engine() or pass the same store"
            )
        self.model_store = model_store or executor_store or InProcessModelStore()
        #: The store's transport codec.  Non-transparent codecs project
        #: every vector they are asked to carry onto their exactly
        #: representable domain, so the simulation *canonicalizes* the
        #: initial model and each aggregated candidate through the codec
        #: before review/commit: everything transported then round-trips
        #: bit-exactly for lossless codecs, preserving the cross-engine
        #: equivalence guarantee (see repro.fl.compression).
        self._codec = getattr(self.model_store, "codec", None)
        if self._codec is not None and not self._codec.transparent:
            self.global_model.set_flat(
                self._codec.canonicalize(self.global_model.get_flat())
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        bind_kwargs = {
            "clients": self.clients,
            "template": global_model.clone(),
        }
        if executor_store is None:
            bind_kwargs["store"] = self.model_store
        if self.tracer.enabled:
            bind_kwargs["tracer"] = self.tracer
        self.executor.bind(**bind_kwargs)
        bind_runtime = getattr(defense, "bind_runtime", None)
        if callable(bind_runtime):
            bind_runtime(
                executor=self.executor, streams=self.streams, store=self.model_store
            )
        bind_tracer = getattr(defense, "bind_tracer", None)
        if self.tracer.enabled and callable(bind_tracer):
            bind_tracer(self.tracer)
        #: Resilience-ledger total already attributed to emitted records
        #: (per-round ``retries`` deltas).
        self._resilience_seen = 0
        if self.tracer.enabled:
            stats = getattr(self.executor, "resilience", None)
            if stats is not None:
                # Snapshots then carry a live "resilience" section even if
                # no individual increment was mirrored as a counter yet.
                self.tracer.metrics.bind_resilience(stats.as_dict)
        #: Pipelined mode is selected by the executor: a
        #: PipelinedRoundExecutor carries the speculation depth.
        self._pipeline_depth: int | None = getattr(
            self.executor, "pipeline_depth", None
        )
        self._async_defense = defense is not None and all(
            callable(getattr(defense, method, None))
            for method in _ASYNC_DEFENSE_METHODS
        )
        self._issued_high = -1
        self.round_idx = 0
        self.history: list[RoundRecord] = []
        #: Runtime sanitizer (repro.analysis.sanitize), bound when
        #: REPRO_SANITIZE is truthy at construction.  Imported lazily —
        #: repro.analysis imports back into repro.fl, so a module-level
        #: import would be cyclic.  When active, every aggregated
        #: candidate is dtype-checked and hashed per layer into
        #: ``sanitize_trace`` for cross-engine divergence diffing.
        self._sanitize = None
        self.sanitize_trace = None
        if os.environ.get("REPRO_SANITIZE"):
            from repro.analysis import sanitize

            if sanitize.enabled():
                self._sanitize = sanitize
                self.sanitize_trace = sanitize.HashTrace()

    # ------------------------------------------------------------------
    # Round loop (synchronous)
    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        """Execute one full round and return its record."""
        if self._pipeline_depth is not None:
            # Single-round stepping through the pipelined engine: issue and
            # drain immediately (equivalent to a depth-0 burst).
            return self._run_pipelined(1)[0]
        round_idx = self.round_idx
        tracer = self.tracer
        transport_before = self.executor.transport_bytes
        raw_before = self.executor.raw_transport_bytes
        with tracer.span("select", round_idx=round_idx) as span_select:
            contributor_ids = self.selector.select(round_idx, self.rng)
        with tracer.span("train", round_idx=round_idx) as span_train:
            updates = self.executor.run_clients(
                self.clients,
                contributor_ids,
                self.global_model,
                self._local_config(),
                round_idx,
                self.streams,
            )
        with tracer.span("aggregate", round_idx=round_idx) as span_aggregate:
            candidate, candidate_flat = self._aggregate(
                contributor_ids, updates, round_idx, self.rng
            )
        resident_clients = self._end_client_round()
        if tracer.enabled:
            tracer.event(
                "materialize", round_idx=round_idx, clients=resident_clients
            )

        span_validate = None
        if not np.isfinite(candidate_flat).all():
            # A client produced a non-finite update (diverged training or a
            # crash-faulty participant).  Under secure aggregation the
            # server cannot identify or drop the culprit — the whole round
            # is poisoned by NaN/inf — so the only safe reaction is to
            # discard the round, exactly like a defense rejection.
            decision = DefenseDecision(accepted=False)
        elif self.defense is None:
            decision = DefenseDecision(accepted=True)
        else:
            with tracer.span("validate", round_idx=round_idx) as span_validate:
                decision = self.defense.review(candidate, round_idx, self.rng)
        outcome = "commit" if decision.accepted else "reject"
        with tracer.span(outcome, cat="round", round_idx=round_idx):
            if decision.accepted:
                self.global_model = candidate
            if self.defense is not None:
                self.defense.record_outcome(candidate, decision.accepted)

        record = RoundRecord(
            round_idx=round_idx,
            contributor_ids=contributor_ids,
            malicious_present=any(
                self._client_is_malicious(cid) for cid in contributor_ids
            ),
            accepted=decision.accepted,
            decision=decision,
            metrics={
                name: hook(self.global_model) for name, hook in self.metric_hooks.items()
            },
            transport_bytes=self.executor.transport_bytes - transport_before,
            raw_transport_bytes=self.executor.raw_transport_bytes - raw_before,
            codec=self._codec_name(),
            peak_rss_kb=_peak_rss_kb(),
            materialized_clients=resident_clients,
            retries=self._resilience_delta(),
            quorum_size=len(decision.client_votes),
        )
        if tracer.enabled:
            record.phase_times.update(
                select=span_select.duration_s,
                train=span_train.duration_s,
                aggregate=span_aggregate.duration_s,
            )
            if span_validate is not None:
                record.phase_times["validate"] = span_validate.duration_s
            self._observe_round(record)
        self.history.append(record)
        self.round_idx += 1
        return record

    def _codec_name(self) -> str:
        return self._codec.name if self._codec is not None else "identity"

    def _resilience_delta(self) -> int:
        """Recovery incidents since the last emitted record.

        Pipelined rounds overlap, so the attribution is at-emission (the
        incidents land on the record being resolved when they surfaced) —
        the per-run sum is exact either way.
        """
        stats = getattr(self.executor, "resilience", None)
        if stats is None:
            return 0
        total = stats.total()
        delta = total - self._resilience_seen
        self._resilience_seen = total
        return max(delta, 0)

    def _observe_round(self, record: RoundRecord) -> None:
        """Fold one finished round into the tracer's metrics registry."""
        metrics = self.tracer.metrics
        metrics.counter("rounds_total").inc()
        metrics.counter(
            "rounds_accepted" if record.accepted else "rounds_rejected"
        ).inc()
        if record.rollback_count:
            metrics.counter("rollback_replays").inc(record.rollback_count)
        metrics.histogram("acceptance_lag_rounds").observe(
            record.validation_lag
        )
        metrics.counter("transport_bytes").inc(record.transport_bytes)
        metrics.counter("raw_transport_bytes").inc(record.raw_transport_bytes)
        metrics.gauge("compression_ratio").set(record.compression_ratio)
        metrics.gauge("peak_rss_kb").set(record.peak_rss_kb)
        metrics.gauge("materialized_clients").set(record.materialized_clients)
        rounds = metrics.counter("rounds_total").value
        elapsed = self.tracer.elapsed_s()
        if elapsed > 0:
            metrics.gauge("rounds_per_s").set(rounds / elapsed)
        metrics.gauge("rollback_rate").set(
            metrics.counter("rollback_replays").value / rounds
        )

    def run(self, num_rounds: int) -> list[RoundRecord]:
        """Run ``num_rounds`` rounds and return their records."""
        if self._pipeline_depth is not None:
            return self._run_pipelined(num_rounds)
        return [self.run_round() for _ in range(num_rounds)]

    # ------------------------------------------------------------------
    # Round loop (pipelined)
    # ------------------------------------------------------------------
    def _run_pipelined(self, num_rounds: int) -> list[RoundRecord]:
        """Issue rounds ahead of their quorums, bounded by pipeline_depth.

        The loop keeps a FIFO of speculative rounds.  Issuing a round
        optimistically commits its candidate and submits its votes; before
        speculation may run more than ``pipeline_depth`` rounds ahead, the
        oldest open quorum is resolved (rounds resolve strictly in order —
        a rejection invalidates everything after it, so out-of-order
        resolution could act on withdrawn state).  Each ``run`` call drains
        its pipeline before returning, so callers observe fully committed
        state between calls.
        """
        open_rounds: deque[_SpeculativeRound] = deque()
        records: list[RoundRecord] = []
        end = self.round_idx + num_rounds
        while self.round_idx < end:
            round_idx = self.round_idx
            with self.tracer.span("select", round_idx=round_idx) as span_select:
                contributor_ids = self.selector.select(round_idx, self.rng)
            post_select_state = self.rng.bit_generator.state
            if any(
                not self._client_parallel_safe(cid) for cid in contributor_ids
            ):
                # A stateful contributor (e.g. the adaptive attacker, which
                # reads the live defense history) must observe exactly the
                # committed state a synchronous run would show it — and
                # must never be replayed, since replaying would repeat its
                # observable side effects.  Resolving every open quorum
                # first guarantees both: the history it reads is final, and
                # no earlier rejection can roll this round back.
                while open_rounds:
                    records.append(self._resolve_oldest(open_rounds))
            spec = self._speculate(
                round_idx, contributor_ids, post_select_state, self.rng, 0
            )
            if self.tracer.enabled:
                spec.phase_times["select"] = span_select.duration_s
            self._issued_high = round_idx
            self.round_idx += 1
            open_rounds.append(spec)
            # Rounds whose outcome was known at speculation time (pre-start
            # auto-accepts, non-finite rejections) hold no open quorum:
            # retire them from the queue front immediately, and only count
            # open quorums against the depth bound (a decision-known round
            # queued behind an open quorum merely awaits FIFO record
            # emission, it is not speculation the pipeline must throttle).
            while open_rounds and open_rounds[0].decision is not None:
                records.append(self._resolve_oldest(open_rounds))
            while (
                sum(1 for s in open_rounds if s.pending is not None)
                > self._pipeline_depth
            ):
                records.append(self._resolve_oldest(open_rounds))
        while open_rounds:
            records.append(self._resolve_oldest(open_rounds))
        return records

    def _replay(self, rolled_back: _SpeculativeRound) -> _SpeculativeRound:
        """Re-execute a round whose speculative run was invalidated.

        The recorded contributor selection is reused and all
        post-selection server draws (aggregation, validator sampling,
        dropout) come from a detached generator restored to the recorded
        state, so a replay consumes no fresh randomness and reproduces
        exactly the draws a synchronous run would have made.
        """
        return self._speculate(
            rolled_back.round_idx,
            rolled_back.contributor_ids,
            rolled_back.post_select_state,
            _restored_generator(self.rng, rolled_back.post_select_state),
            rolled_back.rollback_count + 1,
        )

    def _speculate(
        self,
        round_idx: int,
        contributor_ids: list[int],
        post_select_state: dict,
        round_rng: np.random.Generator,
        rollback_count: int,
    ) -> _SpeculativeRound:
        """Run one round up to (and including) its optimistic commit."""
        base_model = self.global_model
        tracer = self.tracer
        transport_before = self.executor.transport_bytes
        raw_before = self.executor.raw_transport_bytes
        with tracer.span("train", round_idx=round_idx) as span_train:
            updates = self.executor.run_clients(
                self.clients,
                contributor_ids,
                base_model,
                self._local_config(),
                round_idx,
                self.streams,
            )
        with tracer.span("aggregate", round_idx=round_idx) as span_aggregate:
            candidate, candidate_flat = self._aggregate(
                contributor_ids, updates, round_idx, round_rng
            )
        resident_clients = self._end_client_round()
        if tracer.enabled:
            tracer.event(
                "materialize", round_idx=round_idx, clients=resident_clients
            )

        pending: object | None = None
        decision: DefenseDecision | None = None
        if not np.isfinite(candidate_flat).all():
            # Known instantly — no quorum to await, nothing committed.  The
            # defense is *not* notified here (unlike the synchronous loop):
            # its record_outcome would discard the staged profiles of every
            # still-open earlier round.  For BaFFLe the synchronous call is
            # a no-op in this branch anyway (nothing of this round was
            # staged), so the behavior is identical.
            decision = DefenseDecision(accepted=False)
            if self.defense is not None and not self._async_defense:
                self.defense.record_outcome(candidate, False)
        elif self.defense is None:
            decision = DefenseDecision(accepted=True)
            self.global_model = candidate
        elif self._async_defense:
            with tracer.span("validate.submit", round_idx=round_idx):
                result = self.defense.review_async(
                    candidate, round_idx, round_rng
                )
            if isinstance(result, DefenseDecision):
                # Pre-start_round auto-accept: decided without validation.
                decision = result
                self.defense.record_outcome(candidate, decision.accepted)
                if decision.accepted:
                    self.global_model = candidate
            else:
                pending = result
                self.defense.commit_optimistic(pending)
                self.global_model = candidate
        else:
            # Defense without the async protocol: resolve at the round
            # boundary, synchronous semantics inside the pipelined loop.
            with tracer.span("validate", round_idx=round_idx):
                decision = self.defense.review(candidate, round_idx, round_rng)
            self.defense.record_outcome(candidate, decision.accepted)
            if decision.accepted:
                self.global_model = candidate
        phase_times = (
            {"train": span_train.duration_s,
             "aggregate": span_aggregate.duration_s}
            if tracer.enabled
            else {}
        )
        return _SpeculativeRound(
            round_idx=round_idx,
            contributor_ids=contributor_ids,
            base_model=base_model,
            candidate=candidate,
            post_select_state=post_select_state,
            pending=pending,
            decision=decision,
            transport_bytes=self.executor.transport_bytes - transport_before,
            raw_transport_bytes=self.executor.raw_transport_bytes - raw_before,
            rollback_count=rollback_count,
            materialized_clients=resident_clients,
            phase_times=phase_times,
        )

    def _resolve_oldest(
        self, open_rounds: deque[_SpeculativeRound]
    ) -> RoundRecord:
        """Resolve the oldest open quorum; roll back and replay on reject."""
        spec = open_rounds.popleft()
        tracer = self.tracer
        if spec.decision is not None:
            decision = spec.decision
            model_after = spec.candidate if decision.accepted else spec.base_model
            outcome = "commit" if decision.accepted else "reject"
            with tracer.span(outcome, cat="round", round_idx=spec.round_idx):
                pass
        else:
            with tracer.span(
                "validate", round_idx=spec.round_idx
            ) as span_validate:
                decision = self.defense.resolve_review(spec.pending)
            if tracer.enabled:
                spec.phase_times["validate"] = span_validate.duration_s
            if decision.accepted:
                with tracer.span(
                    "commit", cat="round", round_idx=spec.round_idx
                ):
                    self.defense.finalize_review(spec.pending)
                model_after = spec.candidate
            else:
                # Late rejection: withdraw this round's optimistic commit
                # and the speculative suffix built on it, restore the
                # pre-round global model, then replay the invalidated
                # rounds against the corrected state.  Replays re-enter the
                # pipeline as fresh speculative rounds (their quorums are
                # open again), so back-to-back rejections unwind correctly.
                with tracer.span(
                    "rollback", round_idx=spec.round_idx,
                    invalidated=len(open_rounds),
                ):
                    self.defense.rollback_review(spec.pending)
                    self.global_model = spec.base_model
                    model_after = spec.base_model
                    invalidated = list(open_rounds)
                    open_rounds.clear()
                    for later in invalidated:
                        if later.pending is not None:
                            self.defense.cancel_review(later.pending)
                if tracer.enabled:
                    tracer.event("reject", cat="round", round_idx=spec.round_idx)
                for later in invalidated:
                    with tracer.span("replay", round_idx=later.round_idx):
                        open_rounds.append(self._replay(later))
        # A round whose decision was known at speculation time resolved at
        # its own aggregation, whenever its record is emitted; only rounds
        # that actually awaited a quorum report acceptance lag.
        resolved_at = (
            spec.round_idx if spec.decision is not None else self._issued_high
        )
        record = RoundRecord(
            round_idx=spec.round_idx,
            contributor_ids=spec.contributor_ids,
            malicious_present=any(
                self._client_is_malicious(cid) for cid in spec.contributor_ids
            ),
            accepted=decision.accepted,
            decision=decision,
            metrics={
                name: hook(model_after) for name, hook in self.metric_hooks.items()
            },
            transport_bytes=spec.transport_bytes,
            raw_transport_bytes=spec.raw_transport_bytes,
            codec=self._codec_name(),
            accepted_at_round=resolved_at,
            validation_lag=resolved_at - spec.round_idx,
            rollback_count=spec.rollback_count,
            peak_rss_kb=_peak_rss_kb(),
            materialized_clients=spec.materialized_clients,
            retries=self._resilience_delta(),
            quorum_size=len(decision.client_votes),
        )
        if tracer.enabled:
            record.phase_times.update(spec.phase_times)
            self._observe_round(record)
        self.history.append(record)
        return record

    # ------------------------------------------------------------------
    # Shared per-round machinery
    # ------------------------------------------------------------------
    def _local_config(self) -> LocalTrainingConfig:
        return LocalTrainingConfig(
            epochs=self.config.local_epochs,
            batch_size=self.config.batch_size,
            lr=self.config.client_lr,
            momentum=self.config.client_momentum,
            weight_decay=self.config.weight_decay,
        )

    def _client_is_malicious(self, cid: int) -> bool:
        """Metadata query — never materializes a registry client."""
        if self.registry is not None:
            return self.registry.is_malicious(cid)
        return bool(self.clients[cid].is_malicious)

    def _client_parallel_safe(self, cid: int) -> bool:
        """Metadata query — never materializes a registry client."""
        if self.registry is not None:
            return self.registry.is_parallel_safe(cid)
        return _is_parallel_safe(self.clients[cid])

    def _end_client_round(self) -> int:
        """Release the round's materialized clients; report how many were
        resident (the whole population on the eager path)."""
        if self.registry is not None:
            return self.registry.end_round()
        return len(self.clients)

    def _aggregate(
        self,
        contributor_ids: list[int],
        updates: list[np.ndarray],
        round_idx: int,
        rng: np.random.Generator,
    ) -> tuple[Network, np.ndarray]:
        """Combine updates into the candidate global model.

        With a non-transparent codec the candidate is canonicalized here —
        the single point every downstream consumer (defense review,
        history commit, next round's training base) inherits from — so the
        committed trajectory is the codec's exactly-representable one and
        identical across executors and stores.
        """
        mean_update = self._combine(contributor_ids, updates, round_idx, rng)
        candidate_flat = apply_global_update(
            self.global_model.get_flat(),
            mean_update,
            num_selected=len(contributor_ids),
            global_lr=self.config.effective_global_lr,
            num_clients=self.config.num_clients,
        )
        if self._codec is not None and not self._codec.transparent:
            candidate_flat = self._codec.canonicalize(candidate_flat)
        # The secure-aggregation simulation and the lossy codecs compute in
        # float64 internally; under a float32 policy the committed
        # trajectory must still be policy-dtype everywhere (no-op under
        # float64, and under float32 every value is float64-exact so the
        # cast loses nothing on the lossless paths).
        candidate_flat = np.ascontiguousarray(candidate_flat, dtype=active_dtype())
        candidate = self.global_model.clone()
        candidate.set_flat(candidate_flat)
        if self._sanitize is not None:
            self._sanitize.assert_dtype(
                candidate_flat, f"aggregate[round {round_idx}]"
            )
            self.sanitize_trace.record_model(round_idx, candidate)
        return candidate, candidate_flat

    def _combine(
        self,
        contributor_ids: list[int],
        updates: list[np.ndarray],
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self.use_secure_agg:
            protocol = SecureAggregator(
                contributor_ids, dim=len(updates[0]), round_seed=round_idx
            )
            submissions = [
                protocol.blind(cid, update)
                for cid, update in zip(contributor_ids, updates)
            ]
            # The server-side view: only the unmasked *sum* exists here.
            return protocol.unmask_sum(submissions) / len(submissions)
        return self.aggregator.aggregate(updates, rng)
