"""The federated round loop with attack and defense hooks.

:class:`FederatedSimulation` drives the process of the paper's Sec. II-B
and Fig. 1: select contributors, collect updates (optionally through the
secure-aggregation simulation), derive the candidate global model, let the
defense accept or reject it, and commit or roll back.

Rejection semantics follow Algorithm 1: a rejected round leaves the global
model unchanged (``G_r <- G_{r-1}``) and the rejected candidate is *not*
added to any history of accepted models.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.fl.aggregation import Aggregator, FedAvgAggregator, apply_global_update
from repro.fl.client import Client, LocalTrainingConfig
from repro.fl.config import FLConfig
from repro.fl.model_store import InProcessModelStore, ModelStore
from repro.fl.parallel import RoundExecutor, SequentialExecutor
from repro.fl.rng import RngStreams
from repro.fl.secure_agg import SecureAggregator
from repro.fl.selection import Selector, UniformSelector
from repro.nn.network import Network


@dataclass(frozen=True)
class DefenseDecision:
    """Outcome of a defense's review of one candidate global model.

    ``reject_votes``/``votes`` carry the feedback-loop detail needed by the
    vote-distribution analysis (paper Fig. 5); a trivial always-accept
    decision uses the defaults.
    """

    accepted: bool
    reject_votes: int = 0
    num_validators: int = 0
    client_votes: Mapping[int, int] = field(default_factory=dict)
    server_vote: int | None = None


@runtime_checkable
class Defense(Protocol):
    """Interface the simulation uses to consult a defense.

    ``review`` judges a candidate global model; ``record_outcome`` tells the
    defense whether the server committed it (so history-based defenses can
    update their trusted-model history).
    """

    def review(
        self, candidate: Network, round_idx: int, rng: np.random.Generator
    ) -> DefenseDecision: ...

    def record_outcome(self, candidate: Network, accepted: bool) -> None: ...


@dataclass
class RoundRecord:
    """Everything the experiments need to know about one round."""

    round_idx: int
    contributor_ids: list[int]
    malicious_present: bool
    accepted: bool
    decision: DefenseDecision
    metrics: dict[str, float] = field(default_factory=dict)
    #: Model-weight bytes the executor moved across process boundaries this
    #: round: 0 for in-process execution, pickled blob bytes for the
    #: pipe-transport pool, bytes newly copied into the shared-memory arena
    #: for a store-backed pool (O(1 new model) per round).
    transport_bytes: int = 0


class FederatedSimulation:
    """Server-side orchestration of federated training.

    Parameters
    ----------
    global_model:
        The initial global model ``G_0`` (mutated in place across rounds).
    clients:
        The full client population, indexed by ``client_id``.
    config:
        FL hyper-parameters.
    rng:
        Source of the server-side randomness (selection, validator
        sampling).  Client training and validator votes draw from
        independent per-``(round, entity)`` streams spawned off this
        generator's seed sequence (see :mod:`repro.fl.rng`), so their
        results do not depend on execution order.
    selector:
        Client-selection policy; defaults to uniform sampling.
    aggregator:
        Update-combination rule; defaults to FedAvg.
    use_secure_agg:
        Route updates through the secure-aggregation simulation.  Only
        sum-based aggregators are compatible (``FedAvgAggregator`` is).
    defense:
        Optional :class:`Defense`; when absent every round is accepted.
    metric_hooks:
        ``{name: fn(model) -> float}`` evaluated on the committed global
        model after every round (used for paper Fig. 4 time series).
    executor:
        The :class:`~repro.fl.parallel.RoundExecutor` that fans out client
        training and validator votes; defaults to in-process sequential
        execution.  The caller owns the executor's lifecycle.
    model_store:
        The :class:`~repro.fl.model_store.ModelStore` holding the round
        loop's weight vectors (global model, candidate, defense history).
        Defaults to an in-process store; pass a
        :class:`~repro.fl.model_store.SharedMemoryModelStore` so a process
        pool ships version keys instead of weight blobs.  The caller owns
        the store's lifecycle (close it after the executor).
    """

    def __init__(
        self,
        global_model: Network,
        clients: Sequence[Client],
        config: FLConfig,
        rng: np.random.Generator,
        selector: Selector | None = None,
        aggregator: Aggregator | None = None,
        use_secure_agg: bool = False,
        defense: Defense | None = None,
        metric_hooks: Mapping[str, Callable[[Network], float]] | None = None,
        executor: RoundExecutor | None = None,
        model_store: ModelStore | None = None,
    ) -> None:
        if len(clients) != config.num_clients:
            raise ValueError(
                f"config says {config.num_clients} clients, got {len(clients)}"
            )
        ids = [c.client_id for c in clients]
        if ids != list(range(len(clients))):
            raise ValueError("clients must be ordered with client_id == index")
        self.global_model = global_model
        self.clients = list(clients)
        self.config = config
        self.rng = rng
        self.selector = selector or UniformSelector(
            config.num_clients, config.clients_per_round
        )
        self.aggregator = aggregator or FedAvgAggregator()
        self.use_secure_agg = use_secure_agg
        if use_secure_agg and self.aggregator.requires_individual_updates:
            raise ValueError(
                f"{type(self.aggregator).__name__} inspects individual updates "
                "and cannot run under secure aggregation"
            )
        self.defense = defense
        self.metric_hooks = dict(metric_hooks or {})
        self.streams = RngStreams.from_rng(rng)
        self.model_store = model_store or InProcessModelStore()
        self.executor = executor or SequentialExecutor()
        self.executor.bind(
            clients=self.clients,
            template=global_model.clone(),
            store=self.model_store,
        )
        bind_runtime = getattr(defense, "bind_runtime", None)
        if callable(bind_runtime):
            bind_runtime(
                executor=self.executor, streams=self.streams, store=self.model_store
            )
        self.round_idx = 0
        self.history: list[RoundRecord] = []

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def run_round(self) -> RoundRecord:
        """Execute one full round and return its record."""
        round_idx = self.round_idx
        transport_before = self.executor.transport_bytes
        contributor_ids = self.selector.select(round_idx, self.rng)
        local_cfg = LocalTrainingConfig(
            epochs=self.config.local_epochs,
            batch_size=self.config.batch_size,
            lr=self.config.client_lr,
            momentum=self.config.client_momentum,
            weight_decay=self.config.weight_decay,
        )
        updates = self.executor.run_clients(
            self.clients,
            contributor_ids,
            self.global_model,
            local_cfg,
            round_idx,
            self.streams,
        )
        mean_update = self._combine(contributor_ids, updates, round_idx)
        candidate_flat = apply_global_update(
            self.global_model.get_flat(),
            mean_update,
            num_selected=len(contributor_ids),
            global_lr=self.config.effective_global_lr,
            num_clients=self.config.num_clients,
        )
        candidate = self.global_model.clone()
        candidate.set_flat(candidate_flat)

        if not np.isfinite(candidate_flat).all():
            # A client produced a non-finite update (diverged training or a
            # crash-faulty participant).  Under secure aggregation the
            # server cannot identify or drop the culprit — the whole round
            # is poisoned by NaN/inf — so the only safe reaction is to
            # discard the round, exactly like a defense rejection.
            decision = DefenseDecision(accepted=False)
        elif self.defense is None:
            decision = DefenseDecision(accepted=True)
        else:
            decision = self.defense.review(candidate, round_idx, self.rng)
        if decision.accepted:
            self.global_model = candidate
        if self.defense is not None:
            self.defense.record_outcome(candidate, decision.accepted)

        record = RoundRecord(
            round_idx=round_idx,
            contributor_ids=contributor_ids,
            malicious_present=any(
                self.clients[cid].is_malicious for cid in contributor_ids
            ),
            accepted=decision.accepted,
            decision=decision,
            metrics={
                name: hook(self.global_model) for name, hook in self.metric_hooks.items()
            },
            transport_bytes=self.executor.transport_bytes - transport_before,
        )
        self.history.append(record)
        self.round_idx += 1
        return record

    def run(self, num_rounds: int) -> list[RoundRecord]:
        """Run ``num_rounds`` rounds and return their records."""
        return [self.run_round() for _ in range(num_rounds)]

    # ------------------------------------------------------------------
    # Aggregation paths
    # ------------------------------------------------------------------
    def _combine(
        self, contributor_ids: list[int], updates: list[np.ndarray], round_idx: int
    ) -> np.ndarray:
        if self.use_secure_agg:
            protocol = SecureAggregator(
                contributor_ids, dim=len(updates[0]), round_seed=round_idx
            )
            submissions = [
                protocol.blind(cid, update)
                for cid, update in zip(contributor_ids, updates)
            ]
            # The server-side view: only the unmasked *sum* exists here.
            return protocol.unmask_sum(submissions) / len(submissions)
        return self.aggregator.aggregate(updates, self.rng)
