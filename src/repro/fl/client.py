"""Clients and local training.

An FL client receives the global model, trains it on private data for a few
epochs, and returns the *update* ``U = L - G`` as a flat vector.  Malicious
clients (in :mod:`repro.attacks`) subclass :class:`Client` and override
:meth:`Client.produce_update`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optim import SGD


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Local SGD hyper-parameters (subset of :class:`repro.fl.FLConfig`).

    ``max_grad_norm`` enables per-step global gradient clipping, a common
    stabiliser for small-batch local training; ``None`` disables it.
    """

    epochs: int = 2
    batch_size: int = 32
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_grad_norm: float | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")


def clip_gradients(model: Network, max_norm: float) -> float:
    """Scale all parameter gradients so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in model.parameters():
        total += float((p.grad**2).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / norm
        for p in model.parameters():
            p.grad *= scale
    return norm


def local_train(
    model: Network,
    dataset: Dataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> Network:
    """Train ``model`` in place on ``dataset`` and return it.

    Plain mini-batch SGD with momentum; the loss is softmax cross-entropy
    (the paper's image-classification setting).
    """
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    for _ in range(config.epochs):
        order = rng.permutation(len(dataset))
        for start in range(0, len(dataset), config.batch_size):
            batch = order[start : start + config.batch_size]
            model.zero_grad()
            loss.forward(model.forward(dataset.x[batch], train=True), dataset.y[batch])
            model.backward(loss.backward())
            if config.max_grad_norm is not None:
                clip_gradients(model, config.max_grad_norm)
            optimizer.step()
    return model


class Client:
    """Base class: a participant identified by ``client_id`` holding data."""

    #: Whether ``produce_update`` is a pure function of its arguments (plus
    #: the client's own frozen data), so the parallel engine may execute it
    #: in a worker process.  Clients that read live server-side state or
    #: mutate state the parent must observe set this to ``False`` and are
    #: always run in the parent, whatever the executor.
    parallel_safe: bool = True

    #: Whether this client's honest update may be folded into a stacked
    #: cohort (:mod:`repro.fl.cohort`).  Only consulted for clients whose
    #: ``produce_update`` *is* :meth:`HonestClient.produce_update` — any
    #: override already falls back to the per-model path — so this is an
    #: opt-out for honest subclasses with exotic side effects.
    cohort_safe: bool = True

    def __init__(self, client_id: int, dataset: Dataset) -> None:
        self.client_id = client_id
        self.dataset = dataset

    @property
    def is_malicious(self) -> bool:
        """Whether this client is attacker-controlled (honest by default)."""
        return False

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return this client's update ``U = L - G`` as a flat vector."""
        raise NotImplementedError

    def __repr__(self) -> str:
        kind = "malicious" if self.is_malicious else "honest"
        return f"{type(self).__name__}(id={self.client_id}, {kind}, n={len(self.dataset)})"


class HonestClient(Client):
    """A protocol-following client: local SGD on private data."""

    def produce_update(
        self,
        global_model: Network,
        config: LocalTrainingConfig,
        round_idx: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        del round_idx  # honest behaviour is round-independent
        global_flat = global_model.get_flat()
        local = global_model.clone()
        local_train(local, self.dataset, config, rng)
        return local.get_flat() - global_flat
