"""Order-independent randomness for the federated round loop.

Historically the simulation threaded one ``np.random.Generator`` through
every stochastic step of a round — selection, each client's local training,
each validator's vote — which made every draw depend on *when* it happened.
That coupling forbids any parallel execution: training client 7 before
client 3 would consume the stream in a different order and change the run.

:class:`RngStreams` removes the coupling.  From one root
:class:`numpy.random.SeedSequence` it derives an independent child stream
per ``(domain, round_idx, entity_id)`` key, following NumPy's documented
``spawn_key`` construction.  A client's local-training randomness (or a
validator's vote randomness) is then a pure function of the round index and
its id — identical no matter which worker executes it, in which order, or
on which host.  This is the property the parallel engine in
:mod:`repro.fl.parallel` relies on for bit-identical sequential/parallel
runs.

Seed sequences (unlike generators) are tiny and picklable, so executor
backends ship them to worker processes and instantiate the generator on the
far side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Domain tags keep the per-client and per-validator key spaces disjoint:
#: client 3 of round 5 and validator 3 of round 5 get unrelated streams.
DOMAIN_CLIENT = 0
DOMAIN_VALIDATOR = 1
DOMAIN_SERVER = 2


@dataclass(frozen=True)
class RngStreams:
    """A family of deterministic, independently-seeded random streams."""

    root: np.random.SeedSequence

    @classmethod
    def from_rng(cls, rng: np.random.Generator) -> "RngStreams":
        """Derive a stream family from a simulation's generator.

        Spawning a child off the generator's seed sequence does not consume
        any random draws, so attaching streams to an existing generator
        leaves its output (e.g. the client-selection sequence) untouched.

        Reproducibility caveat: the streams key off the *construction-time*
        seed sequence.  For seed-constructed generators
        (``default_rng(seed)``) that makes them fully deterministic; a
        generator whose bit-generator state was overwritten after
        construction (checkpoint restore) keeps its original — possibly
        OS-random — seed sequence, so restored runs should pass the
        original seed, not raw state.  Exotic bit generators without a seed
        sequence at all fall back to drawing one seeding integer.
        """
        seed_seq = getattr(rng.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            return cls(seed_seq.spawn(1)[0])
        return cls(np.random.SeedSequence(int(rng.integers(0, 2**63))))

    @classmethod
    def from_seed(cls, seed: int) -> "RngStreams":
        return cls(np.random.SeedSequence(seed))

    # ------------------------------------------------------------------
    # Keyed child sequences (picklable, cheap to construct)
    # ------------------------------------------------------------------
    def _child(self, domain: int, round_idx: int, entity_id: int) -> np.random.SeedSequence:
        if round_idx < 0 or entity_id < 0:
            raise ValueError(
                f"stream keys must be non-negative, got ({round_idx}, {entity_id})"
            )
        return np.random.SeedSequence(
            entropy=self.root.entropy,
            spawn_key=(*self.root.spawn_key, domain, round_idx, entity_id),
        )

    def client_seq(self, round_idx: int, client_id: int) -> np.random.SeedSequence:
        """Seed sequence for one client's local training in one round."""
        return self._child(DOMAIN_CLIENT, round_idx, client_id)

    def validator_seq(self, round_idx: int, validator_id: int) -> np.random.SeedSequence:
        """Seed sequence for one validator's vote in one round."""
        return self._child(DOMAIN_VALIDATOR, round_idx, validator_id)

    def server_seq(self, round_idx: int) -> np.random.SeedSequence:
        """Seed sequence for the server's own validation vote in one round."""
        return self._child(DOMAIN_SERVER, round_idx, 0)

    # ------------------------------------------------------------------
    # Ready-made generators
    # ------------------------------------------------------------------
    def client_rng(self, round_idx: int, client_id: int) -> np.random.Generator:
        return np.random.default_rng(self.client_seq(round_idx, client_id))

    def validator_rng(self, round_idx: int, validator_id: int) -> np.random.Generator:
        return np.random.default_rng(self.validator_seq(round_idx, validator_id))

    def server_rng(self, round_idx: int) -> np.random.Generator:
        return np.random.default_rng(self.server_seq(round_idx))
