"""Pluggable weight-compression codecs for the model-store transport path.

BaFFLe's feasibility argument (Sec. VI-D) budgets for roughly 10x model
compression on the wire: the candidate and the ``l + 1``-model history move
to every validating client each round, and at realistic client counts the
raw float64 bytes dominate the round cost.  The
:class:`~repro.fl.model_store.ModelStore` publish/attach seam is the one
place all of that traffic flows through, so compression lives here as a
*codec* the store applies when a vector is published and inverts when a
consumer resolves a version key.

Codec contract
--------------
A :class:`WeightCodec` turns a flat float64 vector into a
:class:`CompressedSegment` (``encode``) and back (``decode``).  Delta
codecs (``needs_parent = True``) may encode against a *parent* vector —
the store picks a live version, pins it with a reference, and records it
in the segment so any consumer (including worker processes attaching to
shared memory) can reconstruct the chain.

Two capability flags drive the engine's gating:

``lossless``
    The codec reconstructs **bit-exactly** every vector in its *canonical
    domain* — the image of :meth:`WeightCodec.canonicalize`.  The round
    loop canonicalizes each aggregated candidate before it is reviewed or
    committed (see :meth:`~repro.fl.simulation.FederatedSimulation`), so
    everything a lossless codec is ever asked to transport round-trips
    exactly and the cross-engine bit-identical equivalence guarantee
    survives: every {executor} x {store} combination running the same
    lossless codec commits identical models.  :class:`IdentityCodec`
    (canonicalize is the identity, so the guarantee extends to the
    no-codec baseline) and :class:`Float16Codec` (canonical domain =
    float16-representable vectors; runs agree with each other, not with
    the identity baseline) are lossless under this definition.
    :class:`QuantizedCodec` and :class:`TopKDeltaCodec` are not — their
    reconstruction error is bounded (see each class) but nonzero, so they
    are admitted only when the caller explicitly opts out of the
    equivalence guarantee (``require_lossless=False`` /
    ``ExperimentConfig.allow_lossy``).

``transparent``
    ``canonicalize`` is the identity, i.e. the codec never perturbs the
    committed trajectory.  Non-transparent codecs change the models a run
    commits (by design — that is the accuracy cost of compression), so
    the experiment layer keys its pretrained-environment cache on the
    codec name.

Segments are self-describing: :meth:`CompressedSegment.to_bytes` prefixes
a fixed header (codec name, element count, payload length, parent
version), and :func:`decode_segment` dispatches on the embedded codec
name through the process-global registry — a worker that attaches to a
shared-memory segment needs no out-of-band metadata to reconstruct the
weights, and decoding never depends on the encoding instance's
constructor parameters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.nn.precision import active_dtype

#: Fixed per-segment header: codec name (16 bytes, NUL-padded ascii),
#: element count, payload byte length, parent version (-1 = none).
SEGMENT_HEADER = struct.Struct("<16sqqq")

#: Longest delta chain a store will build before re-basing on a dense
#: segment: bounds worker-side reconstruction cost and the number of
#: parent versions a single segment can transitively pin.
MAX_DELTA_CHAIN = 8


@dataclass
class CompressedSegment:
    """One codec-encoded weight vector, ready for storage or the wire.

    ``payload`` may be ``bytes`` or a zero-copy ``memoryview`` into a
    shared-memory buffer; ``parent_version`` is the store version the
    payload is a delta against (``None`` for self-contained segments).
    """

    codec: str
    num_params: int
    payload: bytes | memoryview
    parent_version: int | None = None

    @property
    def nbytes(self) -> int:
        """Payload bytes (the compressed size; headers excluded)."""
        return len(self.payload)

    def to_bytes(self) -> bytes:
        """Header + payload, the storage/wire representation."""
        name = self.codec.encode("ascii")
        if len(name) > 16:
            raise ValueError(f"codec name too long for segment header: {self.codec!r}")
        header = SEGMENT_HEADER.pack(
            name,
            self.num_params,
            len(self.payload),
            -1 if self.parent_version is None else self.parent_version,
        )
        return header + bytes(self.payload)

    @classmethod
    def from_buffer(cls, buf) -> "CompressedSegment":
        """Parse a segment from a buffer (zero-copy payload view)."""
        view = memoryview(buf)
        name, num_params, payload_len, parent = SEGMENT_HEADER.unpack_from(view, 0)
        payload = view[SEGMENT_HEADER.size : SEGMENT_HEADER.size + payload_len]
        return cls(
            codec=name.rstrip(b"\x00").decode("ascii"),
            num_params=num_params,
            payload=payload,
            parent_version=None if parent < 0 else parent,
        )

    @property
    def total_bytes(self) -> int:
        """Header + payload bytes (what a storage backend must hold)."""
        return SEGMENT_HEADER.size + len(self.payload)


def _as_flat64(flat: np.ndarray) -> np.ndarray:
    """Flatten-check + float64 view; the lossy codecs' internal dtype.

    The quantized and topk codecs keep float64 arithmetic regardless of
    the precision policy: they are lossy (bit-identity is void on their
    trajectories anyway) and their payload formats hardcode float64
    scales/values.  Consumers cast decoded vectors back to the policy
    dtype at ``set_flat`` / aggregation time.
    """
    flat = np.ascontiguousarray(flat, dtype=np.float64)
    if flat.ndim != 1:
        raise ValueError(f"codecs operate on flat vectors, got shape {flat.shape}")
    return flat


def _as_flat_policy(flat: np.ndarray) -> np.ndarray:
    """Flatten-check + cast to the active precision-policy dtype."""
    flat = np.ascontiguousarray(flat, dtype=active_dtype())
    if flat.ndim != 1:
        raise ValueError(f"codecs operate on flat vectors, got shape {flat.shape}")
    return flat


def _read_only(flat: np.ndarray) -> np.ndarray:
    if flat.flags.writeable:
        flat.flags.writeable = False
    return flat


class WeightCodec:
    """Strategy interface for weight-vector compression.

    ``encode``/``decode`` must be deterministic pure functions (engine
    equivalence and pipelined replay both rely on it), and ``decode`` must
    depend only on the segment content — never on this instance's
    constructor parameters — so any process holding the registry can
    reconstruct any segment.
    """

    #: Registry key; also stored in every segment header.
    name: str = "abstract"
    #: Bit-exact on the canonical domain (see module docstring).
    lossless: bool = False
    #: ``canonicalize`` is the identity (trajectory-preserving codec).
    transparent: bool = False
    #: ``encode`` can exploit a parent vector (delta compression).
    needs_parent: bool = False

    def encode(
        self,
        flat: np.ndarray,
        parent: np.ndarray | None = None,
        parent_version: int | None = None,
    ) -> CompressedSegment:
        """Compress ``flat``; delta codecs may use ``parent`` and record
        ``parent_version`` in the returned segment."""
        raise NotImplementedError

    def decode(
        self, segment: CompressedSegment, parent: np.ndarray | None = None
    ) -> np.ndarray:
        """Reconstruct the (read-only) flat weight vector of ``segment``."""
        raise NotImplementedError

    def canonicalize(self, flat: np.ndarray) -> np.ndarray:
        """Project ``flat`` onto the codec's exactly-representable domain.

        The default is one parentless encode/decode round trip; transparent
        codecs override this with the identity.
        """
        return np.asarray(self.decode(self.encode(_as_flat64(flat))))


class IdentityCodec(WeightCodec):
    """Raw policy-dtype passthrough — the default, zero-loss codec.

    Payloads carry the active policy dtype verbatim (float64 by default,
    float32 under the opt-in policy — which also halves identity-codec
    transport).  Decoding infers the dtype from the payload size, so a
    worker needs no out-of-band policy information to reconstruct a
    segment it attaches to.
    """

    name = "identity"
    lossless = True
    transparent = True

    def encode(self, flat, parent=None, parent_version=None) -> CompressedSegment:
        flat = _as_flat_policy(flat)
        return CompressedSegment(self.name, flat.shape[0], flat.tobytes())

    def decode(self, segment, parent=None) -> np.ndarray:
        # Zero-copy when the payload is a view into a (shared-memory)
        # buffer; ``frombuffer`` over immutable bytes is already read-only.
        flat = np.frombuffer(segment.payload, dtype=_identity_dtype(segment))
        if flat.flags.writeable:
            flat = flat.view()
            flat.flags.writeable = False
        return flat

    def canonicalize(self, flat: np.ndarray) -> np.ndarray:
        return _as_flat_policy(flat)


_IDENTITY_DTYPES = {4: np.dtype(np.float32), 8: np.dtype(np.float64)}


def _identity_dtype(segment: CompressedSegment) -> np.dtype:
    """Infer an identity payload's dtype from bytes-per-element."""
    if segment.num_params == 0:
        return np.dtype(np.float64)
    itemsize, remainder = divmod(len(segment.payload), segment.num_params)
    dtype = _IDENTITY_DTYPES.get(itemsize)
    if remainder or dtype is None:
        raise ValueError(
            f"identity payload of {len(segment.payload)} bytes does not hold "
            f"{segment.num_params} float32 or float64 elements"
        )
    return dtype


class Float16Codec(WeightCodec):
    """Half-precision transport: 4x smaller, exact on float16 vectors.

    ``canonicalize`` rounds to the nearest float16 (relative error at most
    ``2**-11`` for in-range values; magnitudes above ~65504 overflow to
    ``inf``, which the round loop's finiteness check then rejects).  Once
    the engine canonicalizes candidates, every vector this codec carries
    is float16-representable and the ``float16 -> float64 -> float16``
    round trip is bit-exact — hence ``lossless = True`` under the
    canonical-domain definition, and all engines running this codec commit
    bit-identical models (to each other; the trajectory differs from the
    identity baseline because commits are rounded).
    """

    name = "float16"
    lossless = True

    def encode(self, flat, parent=None, parent_version=None) -> CompressedSegment:
        flat = _as_flat64(flat)
        with np.errstate(over="ignore"):  # out-of-range -> inf, by design
            half = flat.astype(np.float16)
        return CompressedSegment(self.name, flat.shape[0], half.tobytes())

    def decode(self, segment, parent=None) -> np.ndarray:
        half = np.frombuffer(bytes(segment.payload), dtype=np.float16)
        return _read_only(half.astype(active_dtype()))

    def canonicalize(self, flat: np.ndarray) -> np.ndarray:
        # Encoding may flatten through float64 (exact for any float32
        # input), so rounding to float16 here matches rounding there;
        # the final cast lands the canonical vector in the policy dtype
        # (float16 values are exactly representable in both policies).
        with np.errstate(over="ignore"):  # out-of-range -> inf, by design
            return _as_flat64(flat).astype(np.float16).astype(active_dtype())


class QuantizedCodec(WeightCodec):
    """Uniform int8 quantization with per-chunk float32 scale/offset.

    Each ``chunk``-sized slice is affinely mapped onto the 0..255 grid
    spanned by its own min/max, costing 1 byte per weight plus 8 bytes per
    chunk — ~7.9x compression at the default chunk size.  The absolute
    reconstruction error of a weight is bounded by one quantization step
    of its chunk, ``(max - min) / 255`` (half a step from rounding, plus
    at most half a step more from the float32 scale/offset storage).  Not
    idempotent, therefore lossy: runs using it trade the bit-identical
    equivalence guarantee for the measured transport reduction.
    """

    name = "quantized"
    _LEVELS = 255

    def __init__(self, chunk: int = 4096) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk

    def encode(self, flat, parent=None, parent_version=None) -> CompressedSegment:
        flat = _as_flat64(flat)
        n = flat.shape[0]
        chunk = min(self.chunk, n) if n else self.chunk
        if n:
            starts = np.arange(0, n, chunk, dtype=np.intp)
            lo = np.minimum.reduceat(flat, starts).astype(np.float32)
            hi = np.maximum.reduceat(flat, starts).astype(np.float32)
            scale = (hi.astype(np.float64) - lo.astype(np.float64)) / self._LEVELS
            scale = scale.astype(np.float32)
            per_elem_lo = np.repeat(lo.astype(np.float64), chunk)[:n]
            per_elem_scale = np.repeat(scale.astype(np.float64), chunk)[:n]
            safe = np.where(per_elem_scale > 0.0, per_elem_scale, 1.0)
            levels = np.rint((flat - per_elem_lo) / safe)
            quantized = np.clip(levels, 0, self._LEVELS).astype(np.uint8)
        else:
            lo = np.empty(0, dtype=np.float32)
            scale = np.empty(0, dtype=np.float32)
            quantized = np.empty(0, dtype=np.uint8)
        payload = b"".join(
            (
                struct.pack("<q", chunk),
                lo.tobytes(),
                scale.tobytes(),
                quantized.tobytes(),
            )
        )
        return CompressedSegment(self.name, n, payload)

    def decode(self, segment, parent=None) -> np.ndarray:
        payload = bytes(segment.payload)
        n = segment.num_params
        (chunk,) = struct.unpack_from("<q", payload, 0)
        num_chunks = -(-n // chunk) if n else 0
        offset = 8
        lo = np.frombuffer(payload, dtype=np.float32, count=num_chunks, offset=offset)
        offset += lo.nbytes
        scale = np.frombuffer(payload, dtype=np.float32, count=num_chunks, offset=offset)
        offset += scale.nbytes
        quantized = np.frombuffer(payload, dtype=np.uint8, count=n, offset=offset)
        if not n:
            return _read_only(np.empty(0, dtype=np.float64))
        per_elem_lo = np.repeat(lo.astype(np.float64), chunk)[:n]
        per_elem_scale = np.repeat(scale.astype(np.float64), chunk)[:n]
        return _read_only(quantized.astype(np.float64) * per_elem_scale + per_elem_lo)

    def max_error_bound(self, flat: np.ndarray) -> float:
        """Documented per-vector bound: one quantization step of the worst
        chunk, plus the float32 rounding of the stored offset (which is
        what remains when a chunk is constant and the step is zero)."""
        flat = _as_flat64(flat)
        n = flat.shape[0]
        if not n:
            return 0.0
        chunk = min(self.chunk, n)
        starts = np.arange(0, n, chunk, dtype=np.intp)
        lo = np.minimum.reduceat(flat, starts)
        spread = np.maximum.reduceat(flat, starts) - lo
        offset_rounding = float(np.max(np.abs(lo))) * float(
            np.finfo(np.float32).eps
        )
        return float(spread.max()) / self._LEVELS + offset_rounding


class TopKDeltaCodec(WeightCodec):
    """Sparse top-k delta against a parent store version.

    Keeps only the ``k = ceil(k_ratio * n)`` coordinates where the vector
    moved farthest from its parent, storing their *absolute* values (exact
    at the kept coordinates; elsewhere the parent's value is reused, so
    the reconstruction error at a dropped coordinate is exactly the
    magnitude of its dropped delta — bounded by the k-th largest
    ``|delta|``).  Costs 12 bytes per kept coordinate (int32 index +
    float64 value): ~6.7x compression at the default ``k_ratio = 0.1``.

    Without a usable parent (first publish, length mismatch, or the chain
    depth cap forcing a re-base) the segment falls back to a dense, exact
    float64 payload.  ``canonicalize`` is the identity — loss happens only
    on the transport of the dropped delta mass, never on the server's own
    committed trajectory — so the codec is *transparent* but not lossless.
    """

    name = "topk"
    transparent = True
    needs_parent = True

    def __init__(self, k_ratio: float = 0.1) -> None:
        if not 0.0 < k_ratio <= 1.0:
            raise ValueError(f"k_ratio must be in (0, 1], got {k_ratio}")
        self.k_ratio = k_ratio

    def encode(self, flat, parent=None, parent_version=None) -> CompressedSegment:
        flat = _as_flat64(flat)
        n = flat.shape[0]
        k = int(np.ceil(self.k_ratio * n)) if n else 0
        usable = (
            parent is not None
            and parent_version is not None
            and len(parent) == n
            and 0 < k < n
        )
        if not usable:
            payload = struct.pack("<b", 1) + flat.tobytes()
            return CompressedSegment(self.name, n, payload)
        if n > np.iinfo(np.int32).max:
            raise ValueError("topk codec indexes with int32; vector too long")
        delta = np.abs(flat - parent)
        indices = np.sort(np.argpartition(delta, n - k)[n - k :]).astype(np.int32)
        values = flat[indices]
        payload = b"".join(
            (struct.pack("<b", 0), indices.tobytes(), values.tobytes())
        )
        return CompressedSegment(self.name, n, payload, parent_version=parent_version)

    def decode(self, segment, parent=None) -> np.ndarray:
        payload = bytes(segment.payload)
        (dense,) = struct.unpack_from("<b", payload, 0)
        if dense:
            return _read_only(
                np.frombuffer(payload, dtype=np.float64, offset=1).copy()
            )
        if parent is None:
            raise ValueError(
                "topk delta segment needs its parent vector to decode "
                f"(parent version {segment.parent_version})"
            )
        k = (len(payload) - 1) // 12
        indices = np.frombuffer(payload, dtype=np.int32, count=k, offset=1)
        values = np.frombuffer(payload, dtype=np.float64, count=k, offset=1 + 4 * k)
        flat = np.array(parent, dtype=np.float64)
        flat[indices] = values
        return _read_only(flat)

    def canonicalize(self, flat: np.ndarray) -> np.ndarray:
        return _as_flat64(flat)

    def max_error_bound(self, flat: np.ndarray, parent: np.ndarray) -> float:
        """Documented bound: the largest dropped ``|delta|`` coordinate."""
        flat, parent = _as_flat64(flat), _as_flat64(parent)
        n = flat.shape[0]
        k = int(np.ceil(self.k_ratio * n)) if n else 0
        if k >= n:
            return 0.0
        delta = np.sort(np.abs(flat - parent))
        return float(delta[n - k - 1]) if n - k >= 1 else 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Codec factories by name.  Worker processes decode through this registry
#: (segments embed their codec name), so custom codecs must be registered
#: at import time — before the process pool forks — to be decodable in
#: workers.
CODECS: dict[str, type[WeightCodec] | object] = {}


def register_codec(factory, name: str | None = None) -> None:
    """Register a codec factory (class or zero-arg callable) by name."""
    codec_name = name or factory.name
    if not codec_name or codec_name == "abstract":
        raise ValueError("codec factory must define a concrete name")
    CODECS[codec_name] = factory


register_codec(IdentityCodec)
register_codec(Float16Codec)
register_codec(QuantizedCodec)
register_codec(TopKDeltaCodec)


def codec_names() -> tuple[str, ...]:
    """Registered codec names (config validation / CLI choices)."""
    return tuple(CODECS)


def make_codec(spec: "str | WeightCodec | None") -> WeightCodec:
    """Resolve a codec instance from a name, an instance, or ``None``.

    ``None`` means the identity codec; instances pass through unchanged
    (so callers can hand a parameterized codec straight to a store).
    """
    if spec is None:
        return IdentityCodec()
    if isinstance(spec, WeightCodec):
        return spec
    factory = CODECS.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown weight codec {spec!r}; registered: {sorted(CODECS)}"
        )
    return factory()


def decode_segment(
    segment: CompressedSegment, parent: np.ndarray | None = None
) -> np.ndarray:
    """Decode via the registry, dispatching on the segment's codec name.

    This is how consumers that did not encode the segment (worker
    processes, migrated stores) reconstruct weights: decoding depends only
    on the segment content, never on the encoder's parameters.
    """
    factory = CODECS.get(segment.codec)
    if factory is None:
        raise ValueError(
            f"segment encoded with unregistered codec {segment.codec!r}"
        )
    return factory().decode(segment, parent)


__all__ = [
    "CODECS",
    "CompressedSegment",
    "Float16Codec",
    "IdentityCodec",
    "MAX_DELTA_CHAIN",
    "QuantizedCodec",
    "SEGMENT_HEADER",
    "TopKDeltaCodec",
    "WeightCodec",
    "codec_names",
    "decode_segment",
    "make_codec",
    "register_codec",
]
