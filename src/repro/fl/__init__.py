"""Federated-learning substrate.

Implements the FL process of the paper's Sec. II-B: a server-orchestrated
iterative protocol where each round ``n`` of ``N`` clients locally train the
current global model ``G`` and the server integrates their updates as

    G' = G + (lambda / N) * sum_i (L_i - G)

with global learning rate ``lambda`` (``lambda = N/n`` fully replaces ``G``
by the average of the local models — plain FedAvg).

The module also provides:

- a secure-aggregation simulation (:mod:`repro.fl.secure_agg`) reproducing
  the pairwise-masking algebra of Bonawitz et al.: the server only ever sees
  the *sum* of updates, which is the compatibility constraint BaFFLe is
  designed around;
- client-selection policies, including the scheduled selector used to force
  attacker participation in designated injection rounds;
- :class:`~repro.fl.simulation.FederatedSimulation`, the round loop with
  attack and defense hooks that all experiments drive.
"""

from repro.fl.aggregation import Aggregator, FedAvgAggregator, apply_global_update
from repro.fl.client import (
    Client,
    HonestClient,
    LocalTrainingConfig,
    clip_gradients,
    local_train,
)
from repro.fl.cohort import cohort_updates, is_cohortable, plan_cohorts
from repro.fl.compression import (
    CompressedSegment,
    Float16Codec,
    IdentityCodec,
    QuantizedCodec,
    TopKDeltaCodec,
    WeightCodec,
    codec_names,
    decode_segment,
    make_codec,
    register_codec,
)
from repro.fl.config import FLConfig
from repro.fl.faults import (
    QUORUM_POLICIES,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    QuorumStallError,
    ResilienceStats,
)
from repro.fl.model_store import (
    InProcessModelStore,
    ModelStore,
    SharedMemoryModelStore,
    ValidatorProfileTable,
    make_model_store,
    reap_orphan_segments,
)
from repro.fl.parallel import (
    DEFAULT_PIPELINE_DEPTH,
    ENGINE_KINDS,
    EXECUTION_MODES,
    PendingVotes,
    PipelinedRoundExecutor,
    ProcessPoolRoundExecutor,
    RoundEngine,
    RoundExecutor,
    SequentialExecutor,
    ThreadPoolRoundExecutor,
    make_engine,
    make_executor,
)
from repro.fl.rng import RngStreams
from repro.fl.secure_agg import MaskedUpdate, SecureAggregator, make_pairwise_masks
from repro.fl.selection import ScheduledSelector, Selector, UniformSelector
from repro.fl.weighted import WeightedFedAvgAggregator
from repro.fl.simulation import (
    Defense,
    DefenseDecision,
    FederatedSimulation,
    RoundRecord,
)

__all__ = [
    "Aggregator",
    "Client",
    "CompressedSegment",
    "cohort_updates",
    "is_cohortable",
    "plan_cohorts",
    "DEFAULT_PIPELINE_DEPTH",
    "Defense",
    "DefenseDecision",
    "ENGINE_KINDS",
    "EXECUTION_MODES",
    "FLConfig",
    "Float16Codec",
    "IdentityCodec",
    "QuantizedCodec",
    "TopKDeltaCodec",
    "WeightCodec",
    "FaultPlan",
    "FaultSpec",
    "FedAvgAggregator",
    "FederatedSimulation",
    "HonestClient",
    "InProcessModelStore",
    "InjectedWorkerCrash",
    "LocalTrainingConfig",
    "MaskedUpdate",
    "ModelStore",
    "PendingVotes",
    "QUORUM_POLICIES",
    "QuorumStallError",
    "PipelinedRoundExecutor",
    "ProcessPoolRoundExecutor",
    "ResilienceStats",
    "RngStreams",
    "RoundEngine",
    "RoundExecutor",
    "RoundRecord",
    "ScheduledSelector",
    "SequentialExecutor",
    "ThreadPoolRoundExecutor",
    "SecureAggregator",
    "Selector",
    "SharedMemoryModelStore",
    "UniformSelector",
    "ValidatorProfileTable",
    "WeightedFedAvgAggregator",
    "apply_global_update",
    "clip_gradients",
    "codec_names",
    "decode_segment",
    "local_train",
    "make_codec",
    "make_engine",
    "register_codec",
    "make_executor",
    "make_model_store",
    "make_pairwise_masks",
    "reap_orphan_segments",
]
