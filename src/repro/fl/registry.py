"""Virtual client registry: a million-client population as IDs + metadata.

The eager path materializes every registered client up front — each one
owning a :class:`~repro.data.dataset.Dataset` shard — so memory and setup
cost grow linearly with population size even though a round only ever
touches ``clients_per_round`` of them.  This module inverts that: clients
are pure IDs until selected.  A :class:`ClientFactory` knows how to build
client ``cid`` on demand (its shard computed lazily from a recorded
:class:`PartitionSpec`, bit-identical to the eager split), the
:class:`ClientRegistry` caches materialized clients for the duration of
one round and discards them afterwards, and metadata queries (malicious?
parallel-safe? cohortable? shard length?) are answered without
materializing anything.

Determinism contract
--------------------
A registry-backed run commits **bit-identical** models to the eager run:

- :class:`PartitionSpec` records the partition RNG's state *before* the
  draw and then performs the real draw against the caller's generator —
  advancing the shared stream exactly as the eager path does — so every
  downstream draw (server split, pretraining, attacker setup) is
  unchanged.  ``indices(cid)`` later replays the identical draw from the
  recorded state on a detached generator.
- Client *training* randomness never lived on the client object: it is
  derived per ``(round, client_id)`` from :class:`~repro.fl.rng.RngStreams`
  spawn keys, so a client materialized fresh each round trains exactly
  like one held resident for the whole run.
- Optimizer state is constructed inside ``local_train`` per update and
  dies with it, so discarding a client after the round discards nothing
  the eager path would have kept.

Both parallel executors ship a :meth:`ClientRegistry.worker_view` to
their workers, which materialize their own slices — shards never cross
the IPC boundary.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator, Mapping

import numpy as np

from repro.data import partition as partition_lib
from repro.data.dataset import Dataset
from repro.fl.client import Client, HonestClient


def _generator_from_state(state: dict) -> np.random.Generator:
    """A detached generator restored to a recorded bit-generator state."""
    bit_class = getattr(np.random, state["bit_generator"])
    bit_gen = bit_class()
    bit_gen.state = copy.deepcopy(state)
    return np.random.Generator(bit_gen)


class PartitionSpec:
    """A recorded partition draw, replayable lazily per client.

    The constructor classmethods snapshot the caller's generator state,
    then run the *real* partition function against that generator — the
    result is discarded, but the stream advances exactly as the eager
    path's did, so everything drawn afterwards is unchanged.  The first
    :meth:`indices` call replays the identical draw from the snapshot on
    a detached generator and caches the parts (index arrays total at most
    one entry per pool sample, so the cache is bounded by the pool, not
    the population).

    Instances are plain data and pickle cleanly; the parts cache is
    dropped on pickling so worker processes replay their own.
    """

    def __init__(
        self,
        kind: str,
        num_clients: int,
        *,
        state: dict | None = None,
        labels: np.ndarray | None = None,
        alpha: float | None = None,
        min_samples: int = 1,
        num_samples: int | None = None,
        writer_ids: np.ndarray | None = None,
    ) -> None:
        self.kind = kind
        self.num_clients = num_clients
        self._state = state
        self._labels = labels
        self._alpha = alpha
        self._min_samples = min_samples
        self._num_samples = num_samples
        self._writer_ids = writer_ids
        self._parts: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Constructors (advance the caller's stream like the eager split)
    # ------------------------------------------------------------------
    @classmethod
    def dirichlet(
        cls,
        labels: np.ndarray,
        num_clients: int,
        alpha: float,
        rng: np.random.Generator,
        min_samples: int = 1,
    ) -> "PartitionSpec":
        labels = np.asarray(labels)
        state = copy.deepcopy(rng.bit_generator.state)
        partition_lib.dirichlet_partition(
            labels, num_clients, alpha, rng, min_samples=min_samples
        )
        return cls(
            "dirichlet",
            num_clients,
            state=state,
            labels=labels,
            alpha=alpha,
            min_samples=min_samples,
        )

    @classmethod
    def iid(
        cls, num_samples: int, num_clients: int, rng: np.random.Generator
    ) -> "PartitionSpec":
        state = copy.deepcopy(rng.bit_generator.state)
        partition_lib.iid_partition(num_samples, num_clients, rng)
        return cls("iid", num_clients, state=state, num_samples=num_samples)

    @classmethod
    def writer(cls, writer_ids: np.ndarray) -> "PartitionSpec":
        writer_ids = np.asarray(writer_ids)
        num_clients = len(np.unique(writer_ids))
        return cls("writer", num_clients, writer_ids=writer_ids)

    @classmethod
    def from_parts(cls, parts: list[np.ndarray]) -> "PartitionSpec":
        """Wrap an already-computed split (no replay; parts held as-is).

        For populations whose shards exist eagerly anyway (e.g. FEMNIST's
        per-writer shards, which are topped up with writer-specific draws
        the spec cannot replay) — the registry lifecycle still applies,
        only the index arrays stay resident.
        """
        spec = cls("explicit", len(parts))
        spec._parts = [np.asarray(p) for p in parts]
        return spec

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> list[np.ndarray]:
        if self._parts is None:
            if self.kind == "dirichlet":
                rng = _generator_from_state(self._state)
                self._parts = partition_lib.dirichlet_partition(
                    self._labels,
                    self.num_clients,
                    self._alpha,
                    rng,
                    min_samples=self._min_samples,
                )
            elif self.kind == "iid":
                rng = _generator_from_state(self._state)
                self._parts = partition_lib.iid_partition(
                    self._num_samples, self.num_clients, rng
                )
            elif self.kind == "writer":
                self._parts = partition_lib.writer_partition(self._writer_ids)
            else:  # pragma: no cover - constructors fix the kind set
                raise ValueError(f"unknown partition kind {self.kind!r}")
        return self._parts

    def indices(self, cid: int) -> np.ndarray:
        """Client ``cid``'s sample indices, bit-identical to the eager split."""
        if not 0 <= cid < self.num_clients:
            raise IndexError(f"client id {cid} outside [0, {self.num_clients})")
        return self._replay()[cid]

    def shard_len(self, cid: int) -> int:
        return len(self.indices(cid))

    def all_parts(self) -> list[np.ndarray]:
        """Every client's index array (the full eager split)."""
        return self._replay()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if self.kind != "explicit":
            state["_parts"] = None  # workers replay their own copy
        return state


class ClientFactory:
    """Materializes clients of a virtual population on demand.

    Subclasses define the population: its size, each client's shard
    length (answerable without materializing), and ``make(cid)``.  The
    ``cohort_safe``/``parallel_safe`` class attributes assert, for every
    factory-made client, the same opt-in contracts the eager objects
    carry — they let the registry answer scheduling queries by metadata.
    """

    #: Factory-made clients are plain :class:`HonestClient`s eligible for
    #: stacked cohort training.
    cohort_safe: bool = True
    #: Factory-made clients may be materialized inside worker processes.
    parallel_safe: bool = True

    @property
    def num_clients(self) -> int:
        raise NotImplementedError

    def make(self, cid: int) -> Client:
        raise NotImplementedError

    def shard_len(self, cid: int) -> int:
        raise NotImplementedError


class LazyShardFactory(ClientFactory):
    """Honest clients over lazy shards of one shared sample pool."""

    def __init__(self, pool: Dataset, spec: PartitionSpec) -> None:
        self.pool = pool
        self.spec = spec

    @property
    def num_clients(self) -> int:
        return self.spec.num_clients

    def make(self, cid: int) -> Client:
        return HonestClient(cid, self.pool.subset(self.spec.indices(cid)))

    def shard_len(self, cid: int) -> int:
        return self.spec.shard_len(cid)


class ClientRegistry:
    """The client population as IDs: materialize on selection, discard after.

    ``registry[cid]`` returns the client, materializing it through the
    factory on first access and caching it until :meth:`end_round` — so
    the existing ``clients[cid]`` call sites work unchanged, and a round
    touches memory proportional to its cohort, never the population.

    ``overrides`` maps client ids to *eager* client objects that replace
    the factory's for those ids (attackers, faulty clients): they stay
    resident for the registry's lifetime, exactly like the eager path
    keeps them, and all metadata queries defer to them.
    """

    def __init__(
        self,
        factory: ClientFactory,
        overrides: Mapping[int, Client] | None = None,
    ) -> None:
        self._factory = factory
        self._overrides = dict(overrides or {})
        for cid, client in self._overrides.items():
            if not 0 <= cid < factory.num_clients:
                raise ValueError(
                    f"override id {cid} outside [0, {factory.num_clients})"
                )
            if client.client_id != cid:
                raise ValueError(
                    f"override for id {cid} carries client_id {client.client_id}"
                )
        self._active: dict[int, Client] = {}
        #: Lifetime count of factory materializations (telemetry).
        self.materialized_total = 0
        #: Peak number of concurrently resident factory-made clients.
        self.materialized_peak = 0

    # ------------------------------------------------------------------
    # Sequence-ish protocol (drop-in for eager client lists)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._factory.num_clients

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self)))

    def __getitem__(self, cid: int) -> Client:
        client = self._overrides.get(cid)
        if client is not None:
            return client
        client = self._active.get(cid)
        if client is None:
            if not 0 <= cid < len(self):
                raise IndexError(f"client id {cid} outside [0, {len(self)})")
            client = self._factory.make(cid)
            if client.client_id != cid:
                raise ValueError(
                    f"factory made client_id {client.client_id} for id {cid}"
                )
            self._active[cid] = client
            self.materialized_total += 1
            self.materialized_peak = max(
                self.materialized_peak, len(self._active)
            )
        return client

    def end_round(self) -> int:
        """Discard the round's materialized clients (their shards with them).

        Returns the number of clients that were resident this round —
        factory materializations plus the permanently resident overrides —
        for the per-round telemetry.
        """
        resident = len(self._active) + len(self._overrides)
        self._active.clear()
        return resident

    # ------------------------------------------------------------------
    # Metadata (no materialization)
    # ------------------------------------------------------------------
    def is_malicious(self, cid: int) -> bool:
        client = self._overrides.get(cid)
        return bool(client.is_malicious) if client is not None else False

    def is_parallel_safe(self, cid: int) -> bool:
        client = self._overrides.get(cid)
        if client is not None:
            return bool(getattr(client, "parallel_safe", False))
        return self._factory.parallel_safe

    def is_cohortable(self, cid: int) -> bool:
        client = self._overrides.get(cid)
        if client is not None:
            from repro.fl.cohort import is_cohortable

            return is_cohortable(client)
        return self._factory.cohort_safe and self._factory.shard_len(cid) > 0

    def shard_len(self, cid: int) -> int:
        client = self._overrides.get(cid)
        if client is not None:
            return len(client.dataset)
        return self._factory.shard_len(cid)

    @property
    def num_overrides(self) -> int:
        return len(self._overrides)

    @property
    def active_count(self) -> int:
        """Factory-made clients currently resident (0 between rounds)."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Worker shipping
    # ------------------------------------------------------------------
    def worker_view(self) -> "ClientRegistry":
        """A picklable registry for worker processes.

        Carries the factory (pool + partition spec — O(pool), shipped
        once at pool start) and the *parallel-safe* overrides; everything
        else the workers materialize themselves, so per-round IPC never
        moves a shard.  Non-parallel-safe overrides run in the parent and
        are stripped here.
        """
        safe = {
            cid: client
            for cid, client in self._overrides.items()
            if getattr(client, "parallel_safe", False)
        }
        return ClientRegistry(self._factory, safe)


__all__ = [
    "ClientFactory",
    "ClientRegistry",
    "LazyShardFactory",
    "PartitionSpec",
]
