"""Client-selection policies.

The paper samples ``n`` contributors uniformly at random each round.  For
reproducing the evaluation we also need :class:`ScheduledSelector`, which
forces designated (attacker) clients into designated injection rounds —
matching the paper's protocol of injecting "at rounds 30, 35 and 40".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np


class Selector:
    """Interface: pick the contributor ids for a round."""

    def select(self, round_idx: int, rng: np.random.Generator) -> list[int]:
        raise NotImplementedError


class UniformSelector(Selector):
    """Choose ``n`` distinct clients uniformly at random (paper default)."""

    def __init__(self, num_clients: int, clients_per_round: int) -> None:
        if not 1 <= clients_per_round <= num_clients:
            raise ValueError(
                f"clients_per_round must be in [1, {num_clients}], got {clients_per_round}"
            )
        self.num_clients = num_clients
        self.clients_per_round = clients_per_round

    def select(self, round_idx: int, rng: np.random.Generator) -> list[int]:
        del round_idx
        chosen = rng.choice(self.num_clients, size=self.clients_per_round, replace=False)
        return [int(c) for c in chosen]


class ScheduledSelector(Selector):
    """Uniform selection with forced participants in scheduled rounds.

    ``schedule`` maps round index to client ids that *must* participate in
    that round; the remaining slots are filled uniformly from the other
    clients.
    """

    def __init__(
        self,
        num_clients: int,
        clients_per_round: int,
        schedule: Mapping[int, Sequence[int]],
    ) -> None:
        self._uniform = UniformSelector(num_clients, clients_per_round)
        for round_idx, forced in schedule.items():
            if len(set(forced)) != len(forced):
                raise ValueError(f"duplicate forced clients in round {round_idx}")
            if len(forced) > clients_per_round:
                raise ValueError(
                    f"round {round_idx} forces {len(forced)} clients but only "
                    f"{clients_per_round} participate"
                )
            for cid in forced:
                if not 0 <= cid < num_clients:
                    raise ValueError(f"forced client {cid} out of range")
        self.schedule = {r: list(c) for r, c in schedule.items()}

    def select(self, round_idx: int, rng: np.random.Generator) -> list[int]:
        forced = self.schedule.get(round_idx, [])
        if not forced:
            return self._uniform.select(round_idx, rng)
        # Fill the remaining slots from the non-forced ids without ever
        # materializing the population (a million-client registry would
        # make that O(N) list allocation the round's dominant cost).  The
        # draw is over the *count* of non-forced ids — the same call, on
        # the same stream, the eager list-based fill made — and each drawn
        # rank maps to its id arithmetically: the k-th non-forced id is
        # the rank shifted past every forced id at or below it.
        fill = self._uniform.clients_per_round - len(forced)
        pool_size = self._uniform.num_clients - len(forced)
        extra = rng.choice(pool_size, size=fill, replace=False) if fill else []
        ordered_forced = sorted(forced)
        chosen = []
        for rank in extra:
            cid = int(rank)
            for f in ordered_forced:
                if cid >= f:
                    cid += 1
                else:
                    break
            chosen.append(cid)
        return list(forced) + chosen
