"""Sample-count-weighted federated averaging.

McMahan et al.'s original FedAvg weights each client's update by its local
dataset size; the BaFFLe paper's formulation (Sec. II-B) averages
uniformly.  Both are provided — weighted averaging only needs per-update
weights, which a secure-aggregation protocol can incorporate by having
clients pre-scale their submissions, so it remains secure-agg compatible.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import Aggregator


class WeightedFedAvgAggregator(Aggregator):
    """Weighted mean of updates with fixed per-client weights.

    ``set_weights`` must be called before each round (the harness passes
    the selected clients' dataset sizes); weights are normalised to sum
    to one.
    """

    requires_individual_updates = False

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None

    def set_weights(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._weights = weights / total

    def aggregate(
        self, updates: Sequence[np.ndarray], rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        if not updates:
            raise ValueError("cannot aggregate zero updates")
        stacked = np.stack(updates)
        if self._weights is None:
            return stacked.mean(axis=0)
        if len(self._weights) != len(stacked):
            raise ValueError(
                f"{len(self._weights)} weights for {len(stacked)} updates"
            )
        weights = self._weights
        self._weights = None  # weights are per-round
        return (weights[:, None] * stacked).sum(axis=0)
