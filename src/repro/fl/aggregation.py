"""Update aggregation.

The server integrates client updates as ``G' = G + (lambda/N) sum_i U_i``
(paper Sec. II-B).  :class:`FedAvgAggregator` implements exactly that;
robust baselines in :mod:`repro.baselines` implement the same
:class:`Aggregator` interface so experiments can swap them in.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class Aggregator:
    """Interface: combine per-client updates into one aggregate update.

    ``aggregate`` receives the updates ``U_i = L_i - G`` and returns the
    combined update ``U`` such that the server sets ``G' = G + scale * U``
    (the ``scale`` is applied by :func:`apply_global_update`).
    """

    #: Whether the rule needs access to *individual* updates.  Rules with
    #: ``requires_individual_updates = True`` (Krum, trimmed mean, ...) are
    #: structurally incompatible with secure aggregation — the property the
    #: paper's related-work section criticises.
    requires_individual_updates: bool = True

    def aggregate(self, updates: Sequence[np.ndarray], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class FedAvgAggregator(Aggregator):
    """Plain federated averaging: the mean of the updates.

    Only the sum of updates is needed, so FedAvg composes with secure
    aggregation (``requires_individual_updates = False``).
    """

    requires_individual_updates = False

    def aggregate(self, updates: Sequence[np.ndarray], rng: np.random.Generator) -> np.ndarray:
        del rng
        if not updates:
            raise ValueError("cannot aggregate zero updates")
        stacked = np.stack(updates)
        return stacked.mean(axis=0)


def apply_global_update(
    global_flat: np.ndarray,
    mean_update: np.ndarray,
    num_selected: int,
    global_lr: float,
    num_clients: int,
) -> np.ndarray:
    """Compute ``G' = G + (lambda/N) * sum_i U_i`` from the *mean* update.

    Taking the mean (what aggregators return) and rescaling by
    ``n * lambda / N`` reproduces the paper's formula; with the default
    ``lambda = N/n`` this reduces to ``G + mean(U)``.
    """
    if num_selected < 1:
        raise ValueError(f"num_selected must be >= 1, got {num_selected}")
    if global_lr <= 0:
        raise ValueError(f"global_lr must be positive, got {global_lr}")
    scale = num_selected * global_lr / num_clients
    return global_flat + scale * mean_update
