"""BaFFLe: Backdoor Detection via Feedback-based Federated Learning.

A full, from-scratch reproduction of Andreina, Marson, Möllering and
Karame, *BaFFLe: Backdoor detection via Feedback-based Federated Learning*
(IEEE ICDCS 2021, arXiv:2011.02167).

Package layout
--------------
- :mod:`repro.core` — the paper's contribution: the feedback loop
  (Algorithm 1), the per-class misclassification validation function
  (Algorithm 2), Local Outlier Factor, and the quorum-robustness analysis.
- :mod:`repro.fl` — the federated-learning substrate: FedAvg with a global
  learning rate, client selection, secure-aggregation simulation, and the
  round loop with attack/defense hooks.
- :mod:`repro.nn` — a from-scratch numpy neural-network library (layers,
  losses, SGD, metrics, serialization).
- :mod:`repro.data` — synthetic CIFAR-10-like and FEMNIST-like datasets
  plus Dirichlet / writer partitioning.
- :mod:`repro.attacks` — model replacement, semantic and label-flip
  backdoors, the defense-aware adaptive attacker, and DBA.
- :mod:`repro.baselines` — Byzantine-robust aggregation baselines (Krum,
  trimmed mean, median, norm clipping, FoolsGold, RFA).
- :mod:`repro.experiments` — the evaluation harness reproducing every
  table and figure (see DESIGN.md / EXPERIMENTS.md).

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, run_detection_experiment
>>> config = ExperimentConfig(dataset="cifar", client_share=0.9)
>>> stats = run_detection_experiment(config, seeds=(0,))
>>> stats.fn_mean  # fraction of backdoor injections that slipped through
0.0
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
