"""Spans, events, and the tracer they accumulate in.

Everything here runs on the **monotonic** clock (``time.monotonic_ns``)
— wall-clock time (``time.time``) can step backwards under NTP and would
corrupt span durations; the ``observability-safety`` lint check enforces
the restriction for the whole package.

Two tracer implementations share one interface:

- :class:`NullTracer` (the module singleton :data:`NULL_TRACER`) is the
  default everywhere.  Its ``span()`` returns one shared, immutable
  context manager, so an un-traced hot path allocates nothing per call.
- :class:`Tracer` records :class:`Span` objects under a lock (the thread
  engine records from pool threads) and merges worker-process span
  batches shipped back on task results
  (:meth:`Tracer.merge_worker`), normalizing each worker's clock onto
  the server's timeline.

Clock-offset normalization
--------------------------
A worker batch carries the worker's monotonic clock sampled when the
batch was packed (``sent_ns``).  The server samples its own clock on
receipt; ``receive - sent`` over-estimates the true clock offset by
exactly the result's transit time, so the tracer keeps the **minimum**
estimate seen per worker pid and shifts that worker's spans by it when
the timeline is finalized.  Shifted spans therefore land at or after
their true server-time position and never before their dispatching
phase began — merged timelines stay causally ordered.

Span attributes must be scalars (:func:`check_attrs`): the hard contract
is that tracing never captures a weight array, so anything that is not
an ``int``/``float``/``str``/``bool``/``None`` is rejected at record
time.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Scalar types admissible as span-attribute values.  Deliberately
#: closed: an ``np.ndarray`` (or anything else model-sized) must never
#: ride along on a span.
_SCALAR_TYPES = (int, float, str, bool, type(None))


def check_attrs(attrs: dict) -> dict:
    """Validate span attributes: scalars only, never arrays.

    Raises ``TypeError`` on the first offending value; returns ``attrs``
    unchanged otherwise so call sites can validate inline.
    """
    for key, value in attrs.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"span attribute {key!r} must be a scalar "
                f"(int/float/str/bool/None), got {type(value).__name__}; "
                "tracing must never capture arrays"
            )
    return attrs


@dataclass(frozen=True)
class Span:
    """One timed (or instant) observation on the merged timeline.

    ``start_ns`` is monotonic-clock nanoseconds on the *server's*
    timeline (worker spans are shifted at merge time); ``dur_ns == 0``
    marks an instant event.
    """

    name: str
    cat: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    round_idx: int | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "cat": self.cat,
            "ts": self.start_ns,
            "dur": self.dur_ns,
            "pid": self.pid,
            "tid": self.tid,
            "round": self.round_idx,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        round_idx = data.get("round")
        return cls(
            name=str(data["name"]),
            cat=str(data["cat"]),
            start_ns=int(data["ts"]),
            dur_ns=int(data["dur"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            round_idx=None if round_idx is None else int(round_idx),
            attrs=dict(data.get("attrs", {})),
        )


class _NullSpan:
    """The shared no-op span context: one instance serves every call."""

    __slots__ = ()
    dur_ns = 0

    @property
    def duration_s(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-allocation no-op tracer: the default at every call site.

    All methods are inert; ``span()`` hands back the one shared
    :class:`_NullSpan`, so disabled instrumentation costs a method call
    and nothing else.
    """

    enabled = False

    def span(self, name, cat="phase", round_idx=None, **attrs):
        return _NULL_SPAN

    def event(self, name, cat="event", round_idx=None, **attrs) -> None:
        return None

    def merge_worker(self, payload) -> None:
        return None

    def elapsed_s(self) -> float:
        return 0.0


#: The process-wide no-op tracer instance.
NULL_TRACER = NullTracer()


class _SpanContext:
    """An open span: times the enclosed block and records it on exit."""

    __slots__ = ("_tracer", "name", "cat", "round_idx", "attrs", "start_ns",
                 "dur_ns")

    def __init__(self, tracer, name, cat, round_idx, attrs):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.round_idx = round_idx
        self.attrs = attrs
        self.start_ns = 0
        self.dur_ns = 0

    @property
    def duration_s(self) -> float:
        return self.dur_ns * 1e-9

    def __enter__(self) -> "_SpanContext":
        self.start_ns = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.dur_ns = time.monotonic_ns() - self.start_ns
        self._tracer._record_open(self)
        return False


class Tracer:
    """Collects one run's spans and metrics on the server's timeline.

    Thread-safe: the thread engine's pool threads record spans directly,
    and worker-process batches arrive from whatever thread gathers task
    results.  The tracer holds no model state — only names, scalars, and
    clock readings.
    """

    enabled = True

    def __init__(self) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.pid = os.getpid()
        self.t0_ns = time.monotonic_ns()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        #: Raw worker batches: ``(pid, rows)`` with worker-clock times.
        self._worker_batches: list[tuple[int, list]] = []
        #: Per-worker minimum observed ``server_receive - worker_send``.
        self._offsets: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name, cat="phase", round_idx=None, **attrs) -> _SpanContext:
        """Open a timed span; record happens when the ``with`` block exits."""
        return _SpanContext(self, name, cat, round_idx, check_attrs(attrs))

    def event(self, name, cat="event", round_idx=None, **attrs) -> None:
        """Record an instant (zero-duration) event at the current time."""
        span = Span(
            name=name,
            cat=cat,
            start_ns=time.monotonic_ns(),
            dur_ns=0,
            pid=self.pid,
            tid=threading.get_ident(),
            round_idx=round_idx,
            attrs=check_attrs(attrs),
        )
        with self._lock:
            self._spans.append(span)

    def _record_open(self, ctx: _SpanContext) -> None:
        span = Span(
            name=ctx.name,
            cat=ctx.cat,
            start_ns=ctx.start_ns,
            dur_ns=ctx.dur_ns,
            pid=self.pid,
            tid=threading.get_ident(),
            round_idx=ctx.round_idx,
            attrs=ctx.attrs,
        )
        with self._lock:
            self._spans.append(span)
        if ctx.cat == "phase":
            self.metrics.histogram(f"phase.{ctx.name}_s").observe(
                ctx.dur_ns * 1e-9
            )

    def elapsed_s(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return (time.monotonic_ns() - self.t0_ns) * 1e-9

    # ------------------------------------------------------------------
    # Worker-span merge
    # ------------------------------------------------------------------
    def merge_worker(self, payload) -> None:
        """Absorb one worker batch piggybacked on a task result.

        ``payload`` is ``(pid, sent_ns, rows, store_stats)`` as packed by
        the worker's drain helper: ``rows`` are span tuples on the
        worker's own clock, ``sent_ns`` that clock sampled at packing
        time, ``store_stats`` an optional ``(attaches, cache_hits)``
        delta from the worker's shared-memory view.  A ``None`` payload
        (tracing off in the worker) is ignored.
        """
        if payload is None:
            return
        received_ns = time.monotonic_ns()
        pid, sent_ns, rows, store_stats = payload
        offset = received_ns - int(sent_ns)
        with self._lock:
            known = self._offsets.get(pid)
            if known is None or offset < known:
                self._offsets[pid] = offset
            if rows:
                self._worker_batches.append((pid, list(rows)))
        if store_stats is not None:
            attaches, hits = store_stats
            self.metrics.counter("shm.worker_attaches").inc(int(attaches))
            self.metrics.counter("shm.worker_attach_hits").inc(int(hits))

    # ------------------------------------------------------------------
    # Finalized timeline
    # ------------------------------------------------------------------
    def finalized_spans(self) -> list[Span]:
        """All spans on the server timeline, sorted by start time.

        Worker batches are normalized here — using the per-pid *minimum*
        offset estimate, so every batch of a worker benefits from the
        tightest transit observed over the whole run.
        """
        with self._lock:
            out = list(self._spans)
            batches = [(pid, rows) for pid, rows in self._worker_batches]
            offsets = dict(self._offsets)
        for pid, rows in batches:
            offset = offsets.get(pid, 0)
            for name, cat, start_ns, dur_ns, tid, round_idx, attrs in rows:
                out.append(
                    Span(
                        name=name,
                        cat=cat,
                        start_ns=int(start_ns) + offset,
                        dur_ns=int(dur_ns),
                        pid=pid,
                        tid=tid,
                        round_idx=round_idx,
                        attrs=dict(attrs or {}),
                    )
                )
        out.sort(key=lambda s: (s.start_ns, s.pid, s.tid, s.name))
        return out


def make_tracer(trace: str | bool | None) -> Tracer | NullTracer:
    """A :class:`Tracer` when tracing is requested, else :data:`NULL_TRACER`.

    ``trace`` is typically ``ExperimentConfig.trace`` — an output
    directory (truthy) or ``None``.
    """
    return Tracer() if trace else NULL_TRACER
