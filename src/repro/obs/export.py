"""Trace exporters: JSONL event log, Chrome trace-event JSON, summaries.

Formats
-------
- **JSONL** (``<label>.jsonl``): one JSON object per line.  Line 1 is a
  ``{"type": "meta", ...}`` header, then one ``{"type": "span", ...}``
  per span (schema: :meth:`repro.obs.trace.Span.to_dict`), then a final
  ``{"type": "metrics", "snapshot": ...}`` line.  Round-trips through
  :func:`load_trace`.
- **Chrome trace-event JSON** (``<label>.chrome.json``): the
  ``{"traceEvents": [...]}`` object format, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Complete spans use
  ``ph: "X"`` with microsecond ``ts``/``dur``; instant events use
  ``ph: "i"``; per-process ``process_name`` metadata labels the server
  and each worker pid.
- **Terminal summary** (:func:`summarize_trace`): per-phase wall-clock
  table plus the headline gauges, for humans and for ``python -m repro
  trace``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import NullTracer, Span, Tracer

_FORMAT_VERSION = 1

#: Monotonic counter disambiguating multiple traced runs per process
#: (e.g. a sweep running many configs over one seed).
_RUN_COUNTER = [0]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the finalized timeline + metrics snapshot as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "type": "meta",
                "format_version": _FORMAT_VERSION,
                "server_pid": tracer.pid,
                "t0_ns": tracer.t0_ns,
            }
        )
    ]
    lines.extend(json.dumps(span.to_dict()) for span in tracer.finalized_spans())
    lines.append(
        json.dumps({"type": "metrics", "snapshot": tracer.metrics.snapshot()})
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | Path) -> tuple[list[Span], dict, dict]:
    """Load ``(spans, metrics_snapshot, meta)`` from a JSONL trace."""
    spans: list[Span] = []
    snapshot: dict = {}
    meta: dict = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.get("type")
        if kind == "span":
            spans.append(Span.from_dict(row))
        elif kind == "metrics":
            snapshot = row.get("snapshot", {})
        elif kind == "meta":
            meta = row
            version = row.get("format_version")
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported trace version: {version!r}")
    return spans, snapshot, meta


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome trace-event object (microsecond timestamps)."""
    t0 = tracer.t0_ns
    events: list[dict] = []
    pids_seen: set[int] = set()
    for span in tracer.finalized_spans():
        if span.pid not in pids_seen:
            pids_seen.add(span.pid)
            label = "server" if span.pid == tracer.pid else f"worker-{span.pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        args = dict(span.attrs)
        if span.round_idx is not None:
            args["round"] = span.round_idx
        event = {
            "name": span.name,
            "cat": span.cat,
            "ts": (span.start_ns - t0) / 1000.0,
            "pid": span.pid,
            "tid": span.tid,
            "args": args,
        }
        if span.dur_ns:
            event["ph"] = "X"
            event["dur"] = span.dur_ns / 1000.0
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


# ----------------------------------------------------------------------
# Summaries and diffs
# ----------------------------------------------------------------------
def phase_table(spans: list[Span]) -> dict[str, dict]:
    """Per-phase aggregate: ``{name: {count, total_s, mean_s}}``."""
    table: dict[str, dict] = {}
    for span in spans:
        if span.cat != "phase":
            continue
        row = table.setdefault(span.name, {"count": 0, "total_s": 0.0})
        row["count"] += 1
        row["total_s"] += span.dur_ns * 1e-9
    for row in table.values():
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
    return table


def summarize_trace(
    spans: list[Span], snapshot: dict | None = None, title: str = "trace summary"
) -> str:
    """Human-readable run summary: phases, rounds, transport, workers."""
    snapshot = snapshot or {}
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    pids = sorted({span.pid for span in spans})
    lines = [
        title,
        f"spans: {len(spans)} across {len(pids)} process(es)",
    ]
    rounds = counters.get("rounds_total")
    if rounds:
        accepted = counters.get("rounds_accepted", 0)
        lines.append(
            f"rounds: {rounds} ({accepted} accepted, "
            f"{counters.get('rounds_rejected', 0)} rejected, "
            f"{counters.get('rollback_replays', 0)} rollback replays)"
        )
    if "rounds_per_s" in gauges:
        lines.append(f"throughput: {gauges['rounds_per_s']:.2f} rounds/s")
    transport = counters.get("transport_bytes")
    if transport is not None:
        lines.append(
            f"transport: {transport} B compressed, "
            f"{counters.get('raw_transport_bytes', transport)} B raw"
        )
    table = phase_table(spans)
    if table:
        lines.append(f"{'phase':<18} {'count':>6} {'total s':>10} {'mean ms':>10}")
        for name in sorted(table, key=lambda n: -table[n]["total_s"]):
            row = table[name]
            lines.append(
                f"{name:<18} {row['count']:>6} {row['total_s']:>10.3f} "
                f"{row['mean_s'] * 1e3:>10.3f}"
            )
    return "\n".join(lines)


def diff_traces(
    spans_a: list[Span], spans_b: list[Span]
) -> tuple[str | None, list[str]]:
    """Compare two traces: structural first-divergence + per-phase deltas.

    Mirrors :func:`repro.analysis.divergence.first_divergence`: the
    structural pass walks both phase-span sequences in order and reports
    the first position where the ``(round, name)`` shape differs — two
    runs of the same configuration must execute the same phases in the
    same order, whatever their timings.  Returns ``(structural_msg,
    per_phase_delta_lines)`` where ``structural_msg`` is ``None`` for
    structurally identical traces.
    """
    shape_a = [
        (s.round_idx, s.name) for s in spans_a if s.cat in ("phase", "round")
    ]
    shape_b = [
        (s.round_idx, s.name) for s in spans_b if s.cat in ("phase", "round")
    ]
    structural: str | None = None
    for index, (a, b) in enumerate(zip(shape_a, shape_b)):
        if a != b:
            structural = (
                f"traces diverge structurally at span {index}: "
                f"round {a[0]} {a[1]!r} vs round {b[0]} {b[1]!r}"
            )
            break
    if structural is None and len(shape_a) != len(shape_b):
        structural = (
            f"traces diverge structurally: {len(shape_a)} vs "
            f"{len(shape_b)} phase spans"
        )
    table_a, table_b = phase_table(spans_a), phase_table(spans_b)
    lines = [
        f"{'phase':<18} {'A mean ms':>11} {'B mean ms':>11} {'delta':>8}"
    ]
    for name in sorted(set(table_a) | set(table_b)):
        mean_a = table_a.get(name, {}).get("mean_s", 0.0) * 1e3
        mean_b = table_b.get(name, {}).get("mean_s", 0.0) * 1e3
        delta = (
            f"{(mean_b - mean_a) / mean_a * 100.0:+.1f}%" if mean_a else "n/a"
        )
        lines.append(f"{name:<18} {mean_a:>11.3f} {mean_b:>11.3f} {delta:>8}")
    return structural, lines


# ----------------------------------------------------------------------
# Run export
# ----------------------------------------------------------------------
def export_run(
    tracer: Tracer | NullTracer, trace_dir: str | None, label: str
) -> dict[str, Path] | None:
    """Write a traced run's JSONL + Chrome trace into ``trace_dir``.

    No-op (returns ``None``) when tracing is off.  File names embed the
    pid and a per-process run counter so seed fan-out processes and
    multi-config sweeps never overwrite each other.  Returns
    ``{"base": stem-path, "jsonl": ..., "chrome": ...}``.
    """
    if not trace_dir or not getattr(tracer, "enabled", False):
        return None
    _RUN_COUNTER[0] += 1
    stem = f"{label}-p{tracer.pid}-r{_RUN_COUNTER[0]:03d}"
    base = Path(trace_dir) / stem
    return {
        "base": base,
        "jsonl": write_jsonl(tracer, base.with_suffix(".jsonl")),
        "chrome": write_chrome_trace(tracer, base.with_suffix(".chrome.json")),
    }
