"""Round-lifecycle observability: tracing spans and a metrics registry.

The round loop (:mod:`repro.fl.simulation`), the executors
(:mod:`repro.fl.parallel`) and the defense (:mod:`repro.core.baffle`)
emit monotonic-clock spans for every phase of a round — select,
materialize, client train, aggregate, validate, commit / rollback /
replay — into a :class:`Tracer`.  Worker processes record their spans
locally and ship them back piggybacked on the task results they already
return; the server merges them onto one timeline with per-worker
clock-offset normalization.

Tracing is pure instrumentation: it draws no randomness, never touches a
weight array, and a traced run commits bit-identical models to an
untraced one (enforced by the ``observability-safety`` lint check and the
equivalence tests).  The default is the zero-allocation
:data:`NULL_TRACER`, so un-traced runs pay one attribute check per
instrumentation site.

Exports (:mod:`repro.obs.export`) cover a JSONL event log, Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``, and a
terminal summary; ``python -m repro trace <file> [file]`` summarizes or
diffs them.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    check_attrs,
    make_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "check_attrs",
    "make_tracer",
]
