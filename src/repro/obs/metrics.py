"""Typed run metrics: counters, gauges, histograms, and their registry.

One :class:`MetricsRegistry` per traced run unifies the ad-hoc telemetry
previously scattered across ``RoundRecord`` fields, executor byte
counters and the model store: rounds/s, per-phase wall-clock, acceptance
lag, rollback rate, transport volume and compression, shared-memory
attach cache hits, materialized clients, peak RSS.  ``snapshot()``
returns one JSON-serializable dict — the API a future streaming server
polls, and what :mod:`repro.experiments.persistence` embeds in saved
run files.

All operations are lock-protected: the thread engine observes from pool
threads, and worker-batch merges land from gather threads.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing count (e.g. rounds, bytes, cache hits)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (e.g. rounds/s, peak RSS, compression ratio)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: int | float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming summary of a distribution (count/sum/min/max, no buffer).

    Deliberately reservoir-free: per-phase wall-clock observations arrive
    every round and the registry must stay O(metrics), not O(rounds).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = lock

    def observe(self, value: int | float) -> None:
        with self._lock:
            value = float(value)
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create access to named metrics plus a ``snapshot()`` view."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._resilience_provider = None

    def bind_resilience(self, provider) -> None:
        """Attach a callable returning the executor's resilience ledger.

        ``snapshot()`` then carries a ``"resilience"`` section sampled at
        snapshot time — the executor owns the counters (they must survive
        engine demotion, which swaps executors under the simulation), the
        registry only reads them.
        """
        self._resilience_provider = provider

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
        return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
        return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, self._lock)
        return metric

    def snapshot(self) -> dict:
        """One JSON-serializable view of every metric's current state."""
        provider = self._resilience_provider
        resilience = dict(provider()) if provider is not None else None
        with self._lock:
            view = {
                "counters": {
                    name: metric.value
                    for name, metric in sorted(self._counters.items())
                },
                "gauges": {
                    name: metric.value
                    for name, metric in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "count": metric.count,
                        "sum": metric.total,
                        "min": metric.min,
                        "max": metric.max,
                        "mean": metric.mean,
                    }
                    for name, metric in sorted(self._histograms.items())
                },
            }
        if resilience is not None:
            view["resilience"] = resilience
        return view
