"""``python -m repro trace`` — summarize one trace or diff two.

One file prints the terminal run summary (per-phase wall-clock table,
round counts, transport volume).  Two files run a structural
first-divergence check over the phase-span sequences plus a per-phase
timing delta table, mirroring how ``repro.analysis.divergence`` diffs
hash traces.
"""

from __future__ import annotations

from repro.obs.export import diff_traces, load_trace, summarize_trace


def main(files: list[str]) -> int:
    if len(files) == 1:
        spans, snapshot, _meta = load_trace(files[0])
        print(summarize_trace(spans, snapshot, title=f"trace: {files[0]}"))
        return 0
    if len(files) == 2:
        spans_a, _, _ = load_trace(files[0])
        spans_b, _, _ = load_trace(files[1])
        structural, lines = diff_traces(spans_a, spans_b)
        print(f"A: {files[0]} ({len(spans_a)} spans)")
        print(f"B: {files[1]} ({len(spans_b)} spans)")
        if structural is None:
            print("structure: identical phase sequences")
        else:
            print(f"structure: {structural}")
        for line in lines:
            print(line)
        return 0 if structural is None else 1
    print("usage: repro trace <trace.jsonl> [other.jsonl]")
    return 2
