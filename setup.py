"""Legacy setup shim.

The execution environment lacks the ``wheel`` package, so PEP 517 editable
installs fail at ``bdist_wheel``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
"""

from setuptools import setup

setup()
