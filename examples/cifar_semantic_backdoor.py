"""Semantic backdoor on the CIFAR-like task: with vs without BaFFLe.

Builds the federated world explicitly with the library's public API (no
experiment harness), so each moving part is visible:

1. synthesise the CIFAR-10-like task and partition it non-IID
   (Dirichlet 0.9) across 30 clients, keeping 10% at the server;
2. pretrain a global model with plain FedAvg;
3. plant one malicious client that relabels striped-background cars as
   "bird" and boosts its update for model replacement;
4. run the defended and undefended timelines side by side.

Run:
    python examples/cifar_semantic_backdoor.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import ModelReplacementClient, ReplacementConfig, SemanticBackdoor
from repro.core import (
    BaffleConfig,
    BaffleDefense,
    MisclassificationValidator,
    ValidatorPool,
)
from repro.data import SyntheticCifar, dirichlet_partition, split_client_server
from repro.fl import FLConfig, FederatedSimulation, HonestClient, ScheduledSelector
from repro.nn import accuracy, make_mlp

NUM_CLIENTS = 30
ATTACK_ROUNDS = {29, 34, 39}
TOTAL_ROUNDS = 50


def build_world(seed: int = 7):
    rng = np.random.default_rng(seed)
    task = SyntheticCifar()
    pool = task.sample(3000, rng)
    test = task.sample(600, rng)
    client_pool, server_data = split_client_server(pool, 0.90, rng)
    parts = dirichlet_partition(client_pool.y, NUM_CLIENTS, 0.9, rng, min_samples=10)
    shards = [client_pool.subset(p) for p in parts]

    print("Pretraining the global model (clean FedAvg, 40 rounds)...")
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=(64,))
    pretrain_cfg = FLConfig(num_clients=NUM_CLIENTS, clients_per_round=10,
                            local_epochs=2, client_lr=0.05)
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    sim = FederatedSimulation(model, clients, pretrain_cfg, rng)
    sim.run(40)
    print(f"  stable accuracy: "
          f"{accuracy(test.y, sim.global_model.predict(test.x)):.3f}")
    return task, shards, server_data, test, sim.global_model


def run_timeline(task, shards, server_data, test, stable, defended: bool):
    rng = np.random.default_rng(99)
    fl_cfg = FLConfig(num_clients=NUM_CLIENTS, clients_per_round=10,
                      local_epochs=2, client_lr=0.05, global_lr=1.0)
    backdoor = SemanticBackdoor(task)
    replacement = ReplacementConfig(
        boost=fl_cfg.replacement_boost, poison_ratio=0.25, poison_samples=80,
        attack_epochs=6, attack_lr=0.05,
    )
    clients = [
        ModelReplacementClient(0, shards[0], backdoor, replacement, ATTACK_ROUNDS)
    ] + [HonestClient(i, shards[i]) for i in range(1, NUM_CLIENTS)]

    defense = None
    if defended:
        pool = ValidatorPool.from_datasets(
            {i: shards[i] for i in range(1, NUM_CLIENTS)}
        )
        defense = BaffleDefense(
            BaffleConfig(lookback=20, quorum=5, num_validators=10,
                         mode="both", start_round=20),
            pool,
            MisclassificationValidator(server_data),
        )
        defense.prime(stable)

    selector = ScheduledSelector(NUM_CLIENTS, 10, {r: [0] for r in ATTACK_ROUNDS})
    sim = FederatedSimulation(stable.clone(), clients, fl_cfg, rng,
                              selector=selector, defense=defense)
    bd_eval = backdoor.backdoor_test_instances(200, np.random.default_rng(1))
    print(f"\n--- {'WITH BaFFLe' if defended else 'NO DEFENSE'} ---")
    for _ in range(TOTAL_ROUNDS):
        record = sim.run_round()
        if record.round_idx in ATTACK_ROUNDS or (
            defended and not record.accepted
        ):
            bd = (sim.global_model.predict(bd_eval.x) == backdoor.target_label).mean()
            tag = "ATTACK" if record.round_idx in ATTACK_ROUNDS else "      "
            verdict = "accepted" if record.accepted else "REJECTED"
            print(f"  round {record.round_idx:2d} {tag} -> {verdict:9s} "
                  f"(backdoor acc now {bd:.2f})")
    bd = (sim.global_model.predict(bd_eval.x) == backdoor.target_label).mean()
    main = accuracy(test.y, sim.global_model.predict(test.x))
    print(f"  final: main acc {main:.3f}, backdoor acc {bd:.3f}")
    return bd


def main() -> None:
    world = build_world()
    bd_undefended = run_timeline(*world, defended=False)
    bd_defended = run_timeline(*world, defended=True)
    print(f"\nBackdoor accuracy: {bd_undefended:.2f} undefended vs "
          f"{bd_defended:.2f} with BaFFLe")


if __name__ == "__main__":
    main()
