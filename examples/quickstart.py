"""Quickstart: detect a single-shot backdoor injection with BaFFLe.

Runs the paper's stable-model protocol end to end through the experiment
harness: pretrain a federated global model, enable the feedback loop,
let a malicious client mount model replacement at rounds 30/35/40, and
report what the defense did.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_stable_scenario
from repro.experiments.metrics import detection_stats


def main() -> None:
    config = ExperimentConfig(
        dataset="cifar",      # synthetic CIFAR-10-like task
        client_share=0.90,    # clients hold 90% of validation data, server 10%
        lookback=20,          # l: history window of Algorithm 2
        quorum=5,             # q: reject votes needed to discard a round
        mode="both",          # BaFFLe = feedback loop + server vote
    )
    print("Running the stable-model scenario (50 rounds, injections at 30/35/40)...")
    result = run_stable_scenario(config, seed=0, track_metrics=True)

    print(f"\n{'round':>6} {'attack':>7} {'verdict':>9} {'votes':>7} "
          f"{'main acc':>9} {'backdoor acc':>13}")
    for record in result.records:
        if record.round_idx < config.defense_start:
            continue
        attacked = record.round_idx in result.injection_rounds
        verdict = "ACCEPT" if record.accepted else "REJECT"
        print(
            f"{record.round_idx:>6} {'yes' if attacked else '':>7} {verdict:>9} "
            f"{record.decision.reject_votes:>3}/{record.decision.num_validators:<3} "
            f"{record.metrics['main_acc']:>9.3f} "
            f"{record.metrics['backdoor_acc']:>13.3f}"
        )

    stats = detection_stats(result.records, result.injection_rounds, config.defense_start)
    print(f"\nDetection summary: FN rate {stats.fn_rate:.2f} "
          f"(missed injections), FP rate {stats.fp_rate:.2f} "
          f"(rejected clean rounds)")
    final_bd = result.backdoor_accuracy[-1]
    print(f"Backdoor accuracy of the final global model: {final_bd:.3f} "
          f"({'backdoor blocked' if final_bd < 0.3 else 'BACKDOOR PRESENT'})")


if __name__ == "__main__":
    main()
