"""Inside Algorithm 2: LOF traces, detection latency, and update norms.

Uses :mod:`repro.analysis` to open up the defense's decision signal:

1. replay a clean and a poisoned model trajectory through a single
   validator and print the LOF/threshold margin per round — the raw
   quantity behind every vote;
2. summarise detection latency and vote statistics of a defended run;
3. compare honest update norms against the boosted malicious update (what
   norm-clipping baselines see).

Run:
    python examples/validation_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    collect_validator_trace,
    detection_latency,
    update_norm_stats,
    vote_summary,
)
from repro.attacks import ModelReplacementClient, ReplacementConfig, SemanticBackdoor
from repro.core import MisclassificationValidator
from repro.data import SyntheticCifar, dirichlet_partition
from repro.experiments import ExperimentConfig, run_stable_scenario
from repro.fl import FLConfig, FederatedSimulation, HonestClient, LocalTrainingConfig
from repro.nn import make_mlp


def lof_margins() -> None:
    print("=== 1. LOF/threshold margins: clean vs poisoned trajectory ===")
    rng = np.random.default_rng(5)
    task = SyntheticCifar()
    pool = task.sample(1500, rng)
    parts = dirichlet_partition(pool.y, 15, 0.9, rng, min_samples=10)
    shards = [pool.subset(p) for p in parts]
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    model = make_mlp(task.flat_dim, 10, rng, hidden=(32,))
    sim = FederatedSimulation(
        model, clients,
        FLConfig(num_clients=15, clients_per_round=5, client_lr=0.1), rng,
    )
    sim.run(35)

    # collect a clean trajectory, then graft a poisoned final model
    stable_cfg = FLConfig(num_clients=15, clients_per_round=5,
                          client_lr=0.05, global_lr=1.0)
    sim = FederatedSimulation(sim.global_model, clients, stable_cfg, rng)
    sequence = [sim.global_model.clone()]
    for _ in range(16):
        sim.run_round()
        sequence.append(sim.global_model.clone())

    backdoor = SemanticBackdoor(task)
    attacker = ModelReplacementClient(
        0, shards[0], backdoor,
        ReplacementConfig(boost=stable_cfg.replacement_boost, poison_samples=60,
                          attack_epochs=4),
        attack_rounds={0},
    )
    poisoned_model = attacker.craft_backdoored_model(
        sim.global_model, LocalTrainingConfig(), rng
    )
    poisoned_sequence = sequence[:-1] + [poisoned_model]

    validator = MisclassificationValidator(shards[1])
    clean_trace = collect_validator_trace(validator, sequence, lookback=10)
    poisoned_trace = collect_validator_trace(
        MisclassificationValidator(shards[1]), poisoned_sequence, lookback=10
    )
    clean_margin = clean_trace.margin()
    poisoned_margin = poisoned_trace.margin()
    print("  round   clean LOF/tau   poisoned LOF/tau")
    for i in range(len(clean_margin)):
        c = f"{clean_margin[i]:.2f}" if np.isfinite(clean_margin[i]) else "  - "
        p = f"{poisoned_margin[i]:.2f}" if np.isfinite(poisoned_margin[i]) else "  - "
        marker = "  <-- injection" if i == len(clean_margin) - 1 else ""
        print(f"  {clean_trace.rounds[i]:>5}   {c:>13}   {p:>16}{marker}")


def defended_run_summary() -> None:
    print("\n=== 2. Detection latency and votes of a defended run ===")
    config = ExperimentConfig(dataset="cifar", client_share=0.90)
    result = run_stable_scenario(config, seed=0)
    latency = detection_latency(result.records, result.injection_rounds)
    for injection, rounds in latency.items():
        outcome = "missed" if rounds is None else f"caught after {rounds} round(s)"
        print(f"  injection at round {injection}: {outcome}")
    summary = vote_summary(result.records)
    print(f"  voted rounds: {summary['rounds']:.0f}, "
          f"mean reject share {summary['mean_reject_share']:.2f}, "
          f"max {summary['max_reject_share']:.2f}")


def norm_comparison() -> None:
    print("\n=== 3. Honest vs boosted update norms ===")
    rng = np.random.default_rng(2)
    task = SyntheticCifar()
    pool = task.sample(1200, rng)
    parts = dirichlet_partition(pool.y, 10, 0.9, rng, min_samples=10)
    shards = [pool.subset(p) for p in parts]
    model = make_mlp(task.flat_dim, 10, rng, hidden=(32,))
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    stats = update_norm_stats(clients, model, LocalTrainingConfig(), rng)
    print(f"  honest norms: mean {stats.mean:.2f} "
          f"(95th pct {stats.percentile_95:.2f}, max {stats.maximum:.2f})")
    boosted = 30.0 * stats.mean
    print(f"  boosted (gamma=30) malicious norm ~ {boosted:.2f} -> "
          f"outlier factor {stats.outlier_factor(boosted):.1f}x")
    print("  (what norm-clipping defenses key on — and what an attacker "
          "trades away to evade them)")


def main() -> None:
    lof_margins()
    defended_run_summary()
    norm_comparison()


if __name__ == "__main__":
    main()
