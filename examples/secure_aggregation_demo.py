"""BaFFLe's headline compatibility claim: it works under secure aggregation.

Update-inspection defenses (Krum, trimmed mean, FoolsGold, ...) need the
server to see individual client updates — exactly what secure aggregation
[Bonawitz et al.] hides.  BaFFLe only ever reads the *aggregated* global
model, so it composes.  This demo:

1. shows the masking algebra: blinded submissions look like noise, yet
   their sum is exactly the sum of the raw updates;
2. shows the structural incompatibility: the simulation refuses to pair
   an update-inspecting aggregator with the secure path;
3. runs a defended round end to end through secure aggregation and
   catches a model-replacement injection anyway.

Run:
    python examples/secure_aggregation_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import ModelReplacementClient, ReplacementConfig, SemanticBackdoor
from repro.baselines import KrumAggregator
from repro.core import (
    BaffleConfig,
    BaffleDefense,
    MisclassificationValidator,
    ValidatorPool,
)
from repro.data import SyntheticCifar, dirichlet_partition, split_client_server
from repro.fl import (
    FLConfig,
    FederatedSimulation,
    HonestClient,
    ScheduledSelector,
    SecureAggregator,
)
from repro.nn import make_mlp


def masking_algebra_demo() -> None:
    print("=== 1. The masking algebra ===")
    rng = np.random.default_rng(0)
    updates = {cid: rng.normal(size=5) for cid in range(3)}
    protocol = SecureAggregator(list(updates), dim=5, round_seed=42)
    submissions = [protocol.blind(cid, u) for cid, u in updates.items()]
    for sub in submissions:
        raw = updates[sub.client_id]
        print(f"  client {sub.client_id}: raw {np.round(raw[:3], 2)}... "
              f"blinded {np.round(sub.blinded[:3], 2)}...")
    total = protocol.unmask_sum(submissions)
    expected = sum(updates.values())
    print(f"  unmasked sum error: {np.abs(total - expected).max():.2e} "
          "(masks cancel exactly)\n")


def incompatibility_demo() -> None:
    print("=== 2. Update-inspection defenses cannot ride along ===")
    rng = np.random.default_rng(1)
    task = SyntheticCifar()
    shards = [HonestClient(i, task.sample(50, rng)) for i in range(6)]
    model = make_mlp(task.flat_dim, 10, rng, hidden=(16,))
    config = FLConfig(num_clients=6, clients_per_round=3)
    try:
        FederatedSimulation(
            model, shards, config, rng,
            aggregator=KrumAggregator(num_malicious=1),
            use_secure_agg=True,
        )
    except ValueError as error:
        print(f"  KrumAggregator + secure aggregation -> ValueError: {error}\n")


def baffle_under_secure_agg() -> None:
    print("=== 3. BaFFLe detects through secure aggregation ===")
    rng = np.random.default_rng(7)
    task = SyntheticCifar()
    pool = task.sample(1500, rng)
    client_pool, server_data = split_client_server(pool, 0.9, rng)
    num_clients = 15
    parts = dirichlet_partition(client_pool.y, num_clients, 0.9, rng, min_samples=10)
    shards = [client_pool.subset(p) for p in parts]

    model = make_mlp(task.flat_dim, 10, rng, hidden=(32,))
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    pre = FederatedSimulation(
        model, clients, FLConfig(num_clients=num_clients, clients_per_round=5,
                                 client_lr=0.1),
        rng,
    )
    pre.run(35)

    fl_cfg = FLConfig(num_clients=num_clients, clients_per_round=5,
                      client_lr=0.05, global_lr=1.0)
    backdoor = SemanticBackdoor(task)
    attack_round = 13
    clients = [
        ModelReplacementClient(
            0, shards[0], backdoor,
            ReplacementConfig(boost=fl_cfg.replacement_boost, poison_samples=60,
                              attack_epochs=4),
            {attack_round},
        )
    ] + [HonestClient(i, shards[i]) for i in range(1, num_clients)]
    defense = BaffleDefense(
        BaffleConfig(lookback=8, quorum=3, num_validators=5, mode="both",
                     start_round=10),
        ValidatorPool.from_datasets({i: shards[i] for i in range(1, num_clients)}),
        MisclassificationValidator(server_data),
    )
    defense.prime(pre.global_model)
    sim = FederatedSimulation(
        pre.global_model.clone(), clients, fl_cfg, np.random.default_rng(9),
        selector=ScheduledSelector(num_clients, 5, {attack_round: [0]}),
        defense=defense,
        use_secure_agg=True,   # <- every round goes through masking
    )
    records = sim.run(attack_round + 2)
    record = records[attack_round]
    print(f"  injection round {attack_round}: "
          f"{'REJECTED' if not record.accepted else 'missed'} with "
          f"{record.decision.reject_votes}/{record.decision.num_validators} "
          f"reject votes — the server never saw an individual update")


def main() -> None:
    masking_algebra_demo()
    incompatibility_demo()
    baffle_under_secure_agg()


if __name__ == "__main__":
    main()
