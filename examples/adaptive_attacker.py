"""The defense-aware adaptive attacker (paper Sec. VI-C, Table II, Fig. 5).

The attacker knows the validation algorithm, the parameters l and q, and
the accepted-model history.  Before submitting, it runs BaFFLe's own
Algorithm 2 on its local data and weakens the attack (less poison, smaller
boost) until its self-check passes.  The paper's claim — reproduced
here — is that passing your own check on your own data does not transfer
to validators holding *different* data.

Run:
    python examples/adaptive_attacker.py
"""

from __future__ import annotations

from repro.core.quorum import estimate_rho_from_votes, max_tolerable_malicious
from repro.experiments import ExperimentConfig, run_stable_scenario
from repro.experiments.metrics import detection_stats


def main() -> None:
    config = ExperimentConfig(
        dataset="cifar",
        client_share=0.90,
        adaptive=True,
        adaptive_max_trials=8,
    )
    print("Running the adaptive-attacker scenario (self-checked injections)...")
    result = run_stable_scenario(config, seed=0)

    print(f"\n{'round':>6} {'self-check':>11} {'reject votes':>13} {'verdict':>9}")
    votes = []
    for record in result.records:
        if record.round_idx not in result.injection_rounds:
            continue
        passed = result.self_check_passed.get(record.round_idx, False)
        verdict = "ACCEPT" if record.accepted else "REJECT"
        votes.append(record.decision.reject_votes)
        print(f"{record.round_idx:>6} {'passed' if passed else 'failed':>11} "
              f"{record.decision.reject_votes:>6}/"
              f"{record.decision.num_validators:<3}   {verdict:>9}")

    stats = detection_stats(
        result.records, result.injection_rounds, result.defense_start
    )
    adaptive_count = sum(result.self_check_passed.values())
    print(f"\n{adaptive_count}/{len(result.injection_rounds)} injections were "
          f"'adaptive' (below the attacker's own rejection threshold)")
    print(f"FN rate against them: {stats.fn_rate:.2f} "
          f"(paper Table II: 0 for BaFFLe)")

    # Fig. 5 / Sec. IV-B: read rho off the vote counts, derive the n_M bound.
    n = config.num_validators
    client_votes = [min(v, n) for v in votes]
    rho = estimate_rho_from_votes(client_votes, n)
    print(f"\nWorst-case correct-validator fraction rho = {rho:.2f}")
    print(f"Tolerable malicious validators: n_M < "
          f"{max_tolerable_malicious(n, rho):.2f} of {n}")


if __name__ == "__main__":
    main()
