"""Label-flip backdoor on the FEMNIST-like task (writer-partitioned).

FEMNIST's clients are *writers*: each client's glyphs share a slant,
stroke thickness and class-usage skew.  The attacker flips its
best-represented class to a random target (the paper's FEMNIST attack)
and mounts model replacement; BaFFLe's validating clients — each seeing
only their own writer's data — still catch the injection.

Run:
    python examples/femnist_label_flip.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    LabelFlipBackdoor,
    ModelReplacementClient,
    ReplacementConfig,
    pick_label_flip_classes,
)
from repro.core import (
    BaffleConfig,
    BaffleDefense,
    MisclassificationValidator,
    ValidatorPool,
)
from repro.data import SyntheticFemnist
from repro.fl import FLConfig, FederatedSimulation, HonestClient, ScheduledSelector
from repro.nn import accuracy, make_mlp

NUM_WRITERS = 30
ATTACK_ROUNDS = {29, 34, 39}


def main() -> None:
    rng = np.random.default_rng(3)
    task = SyntheticFemnist(num_writers=NUM_WRITERS)

    # One client per writer; a small pooled shard stays at the server.
    shards = [task.sample_for_writer(w, 100, rng) for w in range(NUM_WRITERS)]
    server_data = task.sample(30, rng)
    test = task.sample(600, rng)
    print("Writer class skew (first 5 writers, top class share):")
    for w in range(5):
        dist = task.writer_class_distribution(w)
        print(f"  writer {w}: class {dist.argmax()} holds {dist.max():.0%} of samples")

    source, target = pick_label_flip_classes(shards[0], rng)
    print(f"\nAttacker (writer 0) flips class {source} -> {target}")
    backdoor = LabelFlipBackdoor(task, source, target, attacker_writer=0)

    print("Pretraining (40 clean rounds)...")
    model = make_mlp(task.flat_dim, task.num_classes, rng, hidden=(64,))
    pretrain_cfg = FLConfig(num_clients=NUM_WRITERS, clients_per_round=10,
                            local_epochs=2, client_lr=0.05)
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    sim = FederatedSimulation(model, clients, pretrain_cfg, rng)
    sim.run(40)
    stable = sim.global_model
    print(f"  stable accuracy: {accuracy(test.y, stable.predict(test.x)):.3f}")

    fl_cfg = FLConfig(num_clients=NUM_WRITERS, clients_per_round=10,
                      local_epochs=2, client_lr=0.05, global_lr=1.0)
    replacement = ReplacementConfig(
        boost=fl_cfg.replacement_boost, poison_ratio=0.25, poison_samples=80,
        attack_epochs=6, attack_lr=0.05,
    )
    clients = [
        ModelReplacementClient(0, shards[0], backdoor, replacement, ATTACK_ROUNDS)
    ] + [HonestClient(i, shards[i]) for i in range(1, NUM_WRITERS)]
    defense = BaffleDefense(
        BaffleConfig(lookback=20, quorum=5, num_validators=10,
                     mode="both", start_round=20),
        ValidatorPool.from_datasets({i: shards[i] for i in range(1, NUM_WRITERS)}),
        MisclassificationValidator(server_data),
    )
    defense.prime(stable)
    selector = ScheduledSelector(NUM_WRITERS, 10, {r: [0] for r in ATTACK_ROUNDS})
    sim = FederatedSimulation(stable.clone(), clients, fl_cfg,
                              np.random.default_rng(11),
                              selector=selector, defense=defense)

    print("\nDefended run (injections at rounds 29/34/39):")
    for _ in range(50):
        record = sim.run_round()
        if record.round_idx in ATTACK_ROUNDS:
            verdict = "accepted (MISS!)" if record.accepted else "REJECTED"
            print(f"  round {record.round_idx}: injection {verdict} "
                  f"({record.decision.reject_votes}/"
                  f"{record.decision.num_validators} reject votes)")

    bd = backdoor.backdoor_accuracy(sim.global_model, 200, np.random.default_rng(5))
    print(f"\nFinal: main acc "
          f"{accuracy(test.y, sim.global_model.predict(test.x)):.3f}, "
          f"backdoor acc {bd:.3f}")


if __name__ == "__main__":
    main()
