"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.synthetic_cifar import SyntheticCifar
from repro.data.synthetic_femnist import SyntheticFemnist
from repro.nn.models import make_mlp


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset(rng: np.random.Generator) -> Dataset:
    """60 linearly separable samples in 3 classes (fast to learn)."""
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.repeat(np.arange(3), 20)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(60, 2))
    return Dataset(x, labels, num_classes=3)


@pytest.fixture
def cifar_task() -> SyntheticCifar:
    return SyntheticCifar()


@pytest.fixture
def femnist_task() -> SyntheticFemnist:
    return SyntheticFemnist(num_writers=8)


@pytest.fixture
def tiny_mlp(rng: np.random.Generator):
    """A 2-in, 3-out MLP matching ``tiny_dataset``."""
    return make_mlp(2, 3, rng, hidden=(8,))


def shm_entries(prefix: str) -> list[str]:
    """Utility: /dev/shm entries under a prefix (the shm leak checks)."""
    import os

    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return []


def train_briefly(model, dataset, rng, epochs=30, lr=0.1):
    """Utility: a few epochs of full-batch SGD (used by several tests)."""
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.nn.optim import SGD

    loss = SoftmaxCrossEntropy()
    opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    for _ in range(epochs):
        model.zero_grad()
        loss.forward(model.forward(dataset.x, train=True), dataset.y)
        model.backward(loss.backward())
        opt.step()
    return model
