"""Fixture battery for the static determinism lint.

Every check gets three snippets: one that violates it (the check must
fire), one that is clean (it must stay silent), and one where the
violation carries a ``repro: allow[...]`` suppression with a reason (it
must stay silent too).  A reasonless suppression is itself a finding.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint.checks import ALL_CHECK_IDS, all_checks, get_check
from repro.analysis.lint.engine import analyze_source

#: Path under which scoped checks (dtype-discipline) apply.
SCOPED_PATH = "src/repro/fl/example.py"


def run_check(source: str, check_id: str, path: str = SCOPED_PATH):
    return analyze_source(
        textwrap.dedent(source), path, checks=[get_check(check_id)]
    )


def check_ids(findings):
    return [f.check_id for f in findings]


def test_registry_covers_the_documented_battery():
    assert set(ALL_CHECK_IDS) == {
        "global-rng",
        "dtype-discipline",
        "pickle-safety",
        "parallel-safety",
        "thread-safety",
        "shm-hygiene",
        "unused-import",
        "mutable-default",
        "observability-safety",
        "swallowed-exception",
    }
    assert [c.check_id for c in all_checks()] == list(ALL_CHECK_IDS)


class TestGlobalRng:
    def test_violations_fire(self):
        findings = run_check(
            """\
            import random
            import time
            import numpy as np

            x = np.random.rand(3)
            rng = np.random.default_rng()
            y = random.random()
            r2 = np.random.default_rng(time.time_ns())
            """,
            "global-rng",
        )
        assert check_ids(findings) == ["global-rng"] * 4
        assert "process-global stream" in findings[0].message
        assert "unseeded" in findings[1].message
        assert "stdlib random" in findings[2].message
        assert "time/OS-entropy" in findings[3].message

    def test_keyed_randomness_is_clean(self):
        findings = run_check(
            """\
            import numpy as np

            def train(seed_seq):
                rng = np.random.default_rng(seed_seq)
                return rng.normal(size=3)
            """,
            "global-rng",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            import numpy as np

            x = np.random.rand(3)  # repro: allow[global-rng] -- fixture data only
            """,
            "global-rng",
        )
        assert findings == []

    def test_reasonless_suppression_is_a_finding(self):
        findings = run_check(
            """\
            import numpy as np

            x = np.random.rand(3)  # repro: allow[global-rng]
            """,
            "global-rng",
        )
        assert check_ids(findings) == ["bad-suppression"]


class TestDtypeDiscipline:
    def test_missing_dtype_fires(self):
        findings = run_check(
            """\
            import numpy as np

            a = np.zeros(3)
            b = np.arange(7)
            """,
            "dtype-discipline",
        )
        assert check_ids(findings) == ["dtype-discipline"] * 2

    def test_explicit_dtype_is_clean(self):
        findings = run_check(
            """\
            import numpy as np

            a = np.zeros(3, dtype=np.float64)
            b = np.arange(7, dtype=np.intp)
            """,
            "dtype-discipline",
        )
        assert findings == []

    def test_scope_excludes_non_hot_paths(self):
        findings = run_check(
            "import numpy as np\n\na = np.zeros(3)\n",
            "dtype-discipline",
            path="src/repro/experiments/report_tool.py",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            import numpy as np

            a = np.zeros(3)  # repro: allow[dtype-discipline] -- dtype set by caller contract
            """,
            "dtype-discipline",
        )
        assert findings == []


class TestPickleSafety:
    def test_lambda_and_closure_submissions_fire(self):
        findings = run_check(
            """\
            def run(pool, items):
                pool.map(lambda x: x + 1, items)

            def outer(pool):
                def task(x):
                    return x
                pool.submit(task, 1)

            def make_pool(executor_cls):
                return executor_cls(initializer=lambda: None)
            """,
            "pickle-safety",
        )
        assert check_ids(findings) == ["pickle-safety"] * 3
        assert "lambda" in findings[0].message
        assert "nested function 'task'" in findings[1].message
        assert "initializer" in findings[2].message

    def test_module_level_task_is_clean(self):
        findings = run_check(
            """\
            def task(x):
                return x

            def run(pool):
                pool.submit(task, 1)
                pool.map(task, range(3))
            """,
            "pickle-safety",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            def run(pool, items):
                pool.map(lambda x: x + 1, items)  # repro: allow[pickle-safety] -- thread pool, no pickling
            """,
            "pickle-safety",
        )
        assert findings == []


class TestParallelSafety:
    def test_module_global_writes_in_safe_class_fire(self):
        findings = run_check(
            """\
            CACHE = {}

            class Thing:
                parallel_safe = True

                def hot(self, key, value):
                    CACHE[key] = value

                def hotter(self):
                    global COUNT
                    COUNT = 1
            """,
            "parallel-safety",
        )
        assert [f.check_id for f in findings].count("parallel-safety") >= 2
        assert any("CACHE" in f.message for f in findings)
        assert any("global COUNT" in f.message for f in findings)

    def test_unflagged_class_and_self_state_are_clean(self):
        findings = run_check(
            """\
            CACHE = {}

            class Unflagged:
                def hot(self, key, value):
                    CACHE[key] = value

            class Safe:
                parallel_safe = True

                def __init__(self):
                    CACHE["init"] = 1

                def hot(self, value):
                    self.state = value
            """,
            "parallel-safety",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            CACHE = {}

            class Thing:
                cohort_safe = True

                def hot(self, key):
                    CACHE[key] = 1  # repro: allow[parallel-safety] -- read-through cache, values identical per key
            """,
            "parallel-safety",
        )
        assert findings == []


class TestThreadSafety:
    def test_unlocked_class_container_mutation_fires(self):
        findings = run_check(
            """\
            class Validator:
                parallel_safe = True
                _CACHE = {}
                _SEEN = []

                def vote(self, key, value):
                    self._CACHE[key] = value
                    self._SEEN.append(key)

                def reset(self):
                    Validator._CACHE = {}

                def bump(self):
                    type(self)._CACHE.update(done=True)
            """,
            "thread-safety",
        )
        assert check_ids(findings) == ["thread-safety"] * 4
        assert "writes into class-level attribute '_CACHE'" in findings[0].message
        assert "calls .append() on class-level attribute '_SEEN'" in findings[1].message
        assert "rebinds class-level attribute '_CACHE'" in findings[2].message
        assert "without a lock" in findings[3].message

    def test_instance_state_and_shadowed_containers_are_clean(self):
        findings = run_check(
            """\
            class Validator:
                parallel_safe = True
                _CACHE = {}

                def __init__(self):
                    self._CACHE = {}
                    self._profiles = {}

                def vote(self, key, value):
                    self._CACHE[key] = value
                    self._profiles[key] = value
                    self._pending = value

            class Unflagged:
                _CACHE = {}

                def hot(self, key):
                    self._CACHE[key] = 1
            """,
            "thread-safety",
        )
        assert findings == []

    def test_lock_guarded_mutation_is_clean(self):
        findings = run_check(
            """\
            import threading

            class Validator:
                parallel_safe = True
                _CACHE = {}
                _lock = threading.Lock()

                def vote(self, key, value):
                    with self._lock:
                        self._CACHE[key] = value
            """,
            "thread-safety",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            class Validator:
                parallel_safe = True
                _CACHE = {}

                def vote(self, key):
                    self._CACHE[key] = 1  # repro: allow[thread-safety] -- idempotent per-key writes
            """,
            "thread-safety",
        )
        assert findings == []


class TestShmHygiene:
    def test_create_without_unlink_fires(self):
        findings = run_check(
            """\
            from multiprocessing.shared_memory import SharedMemory

            class Store:
                def alloc(self):
                    self._shm = SharedMemory(create=True, size=64)
            """,
            "shm-hygiene",
        )
        assert check_ids(findings) == ["shm-hygiene"]
        assert "class Store" in findings[0].message

    def test_cleanup_method_with_unlink_is_clean(self):
        findings = run_check(
            """\
            from multiprocessing.shared_memory import SharedMemory

            class Store:
                def alloc(self):
                    self._shm = SharedMemory(create=True, size=64)

                def close(self):
                    self._shm.close()
                    self._shm.unlink()
            """,
            "shm-hygiene",
        )
        assert findings == []

    def test_finally_block_unlink_is_clean(self):
        findings = run_check(
            """\
            from multiprocessing.shared_memory import SharedMemory

            def scratch():
                shm = SharedMemory(create=True, size=64)
                try:
                    return bytes(shm.buf[:8])
                finally:
                    shm.close()
                    shm.unlink()
            """,
            "shm-hygiene",
        )
        assert findings == []

    def test_attach_only_is_clean(self):
        findings = run_check(
            """\
            from multiprocessing.shared_memory import SharedMemory

            class WorkerView:
                def attach(self, name):
                    self._shm = SharedMemory(name=name)
            """,
            "shm-hygiene",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            from multiprocessing.shared_memory import SharedMemory

            class Store:
                def alloc(self):
                    self._shm = SharedMemory(create=True, size=64)  # repro: allow[shm-hygiene] -- unlinked by the owning registry
            """,
            "shm-hygiene",
        )
        assert findings == []


class TestUnusedImport:
    def test_unused_import_fires(self):
        findings = run_check(
            """\
            import os
            import numpy as np

            print(np.pi)
            """,
            "unused-import",
        )
        assert check_ids(findings) == ["unused-import"]
        assert "'os'" in findings[0].message

    def test_used_string_annotation_and_all_are_clean(self):
        findings = run_check(
            """\
            from __future__ import annotations

            import os
            from pathlib import Path

            __all__ = ["os"]

            def f(p: "Path") -> None:
                del p
            """,
            "unused-import",
        )
        assert findings == []

    def test_init_files_are_exempt(self):
        findings = run_check(
            "import os\n",
            "unused-import",
            path="src/repro/somepkg/__init__.py",
        )
        assert findings == []

    def test_explicit_reexport_alias_is_exempt(self):
        findings = run_check(
            "from os import path as path\n",
            "unused-import",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            import faulthandler  # repro: allow[unused-import] -- import registers a hook
            """,
            "unused-import",
        )
        assert findings == []


class TestMutableDefault:
    def test_mutable_defaults_fire(self):
        findings = run_check(
            """\
            def f(a, b=[]):
                return a, b

            def g(x={}, *, y=set()):
                return x, y
            """,
            "mutable-default",
        )
        assert check_ids(findings) == ["mutable-default"] * 3

    def test_none_sentinel_is_clean(self):
        findings = run_check(
            """\
            def f(a, b=None):
                return a, b or []

            def g(x=(), y="name"):
                return x, y
            """,
            "mutable-default",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            def f(a, b=[]):  # repro: allow[mutable-default] -- default never mutated, doc example
                return a, b
            """,
            "mutable-default",
        )
        assert findings == []


class TestObservabilitySafety:
    OBS_PATH = "src/repro/obs/example.py"

    def test_wall_clock_and_rng_fire_inside_obs(self):
        findings = run_check(
            """\
            import random
            import time
            import numpy as np

            stamp = time.time()
            draw = np.random.rand()
            jitter = random.random()
            """,
            "observability-safety",
            path=self.OBS_PATH,
        )
        assert check_ids(findings) == ["observability-safety"] * 3
        assert "monotonic" in findings[0].message
        assert "no randomness" in findings[1].message

    def test_monotonic_clock_in_obs_is_clean(self):
        findings = run_check(
            """\
            import time

            def now_ns():
                return time.monotonic_ns()
            """,
            "observability-safety",
            path=self.OBS_PATH,
        )
        assert findings == []

    def test_wall_clock_outside_obs_is_not_this_checks_business(self):
        findings = run_check(
            """\
            import time

            stamp = time.time()
            """,
            "observability-safety",
        )
        assert findings == []

    def test_array_capture_into_span_attrs_fires_anywhere(self):
        findings = run_check(
            """\
            def instrument(tracer, model, round_idx):
                with tracer.span("train", round_idx=round_idx, weights=model.get_flat()):
                    pass
                tracer.event("snapshot", flat=model.weights.copy())
            """,
            "observability-safety",
        )
        assert check_ids(findings) == ["observability-safety"] * 2
        assert "get_flat" in findings[0].message
        assert "stay" in findings[0].message and "scalar" in findings[0].message

    def test_scalar_attrs_are_clean(self):
        findings = run_check(
            """\
            def instrument(tracer, chunk, cid, round_idx):
                with tracer.span("train.cohort", round_idx=round_idx, clients=len(chunk)):
                    pass
                tracer.event("materialize", clients=int(cid))
            """,
            "observability-safety",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            import time

            stamp = time.time()  # repro: allow[observability-safety] -- doc example
            """,
            "observability-safety",
            path=self.OBS_PATH,
        )
        assert findings == []


class TestSwallowedException:
    def test_pass_only_broad_handlers_fire(self):
        findings = run_check(
            """\
            def collect(futures):
                try:
                    futures[0].result()
                except Exception:
                    pass
                try:
                    futures[1].result()
                except:
                    ...
            """,
            "swallowed-exception",
        )
        assert check_ids(findings) == ["swallowed-exception"] * 2
        assert "pass-only" in findings[0].message
        assert "bare except" in findings[1].message

    def test_unobserved_future_exception_fires(self):
        findings = run_check(
            """\
            def drain(future):
                future.exception()
            """,
            "swallowed-exception",
        )
        assert check_ids(findings) == ["swallowed-exception"]
        assert "discarded" in findings[0].message

    def test_observed_errors_and_narrow_handlers_are_clean(self):
        findings = run_check(
            """\
            def collect(futures, stats, log):
                try:
                    futures[0].result()
                except KeyError:
                    pass
                except Exception as error:
                    stats.inc("abandoned_task_errors")
                error = futures[1].exception()
                if error is not None:
                    stats.inc("abandoned_task_errors")
                log.exception("context goes to the handler, not the void")
            """,
            "swallowed-exception",
        )
        assert findings == []

    def test_outside_the_execution_layer_is_not_scoped(self):
        findings = run_check(
            """\
            def tidy(path):
                try:
                    path.unlink()
                except Exception:
                    pass
            """,
            "swallowed-exception",
            path="src/repro/experiments/example.py",
        )
        assert findings == []

    def test_suppressed_with_reason_is_silent(self):
        findings = run_check(
            """\
            def teardown(handle):
                try:
                    handle.close()
                except Exception:  # repro: allow[swallowed-exception] -- interpreter teardown
                    pass
            """,
            "swallowed-exception",
        )
        assert findings == []


class TestSuppressionMechanics:
    def test_wildcard_allow_covers_any_check(self):
        findings = run_check(
            """\
            import numpy as np

            a = np.zeros(3)  # repro: allow[*] -- exercising the wildcard
            """,
            "dtype-discipline",
        )
        assert findings == []

    def test_allow_for_a_different_check_does_not_cover(self):
        findings = run_check(
            """\
            import numpy as np

            a = np.zeros(3)  # repro: allow[global-rng] -- wrong id on purpose
            """,
            "dtype-discipline",
        )
        assert check_ids(findings) == ["dtype-discipline"]
