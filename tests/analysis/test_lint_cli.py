"""CLI, baseline, and report-format tests for the determinism lint."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.findings import load_baseline, save_baseline
from repro.experiments.cli import main as repro_main

#: A violation visible from any path (unused-import has no path scope).
VIOLATING = "import os\n\nVALUE = 1\n"
CLEAN = "VALUE = 1\n"


@pytest.fixture()
def workspace(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write(root: Path, name: str, source: str) -> Path:
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, workspace):
        write(workspace, "pkg/mod.py", CLEAN)
        assert lint_main(["pkg", "--no-baseline"]) == 0

    def test_findings_exit_nonzero(self, workspace):
        write(workspace, "pkg/mod.py", VIOLATING)
        assert lint_main(["pkg", "--no-baseline"]) == 1

    def test_no_paths_exit_two(self, workspace):
        # Empty cwd: none of the default paths exist and none were given.
        assert lint_main([]) == 2

    def test_parse_error_exits_nonzero(self, workspace):
        write(workspace, "pkg/broken.py", "def broken(:\n")
        assert lint_main(["pkg", "--no-baseline"]) == 1

    def test_list_checks_exits_zero(self, workspace, capsys):
        assert lint_main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "global-rng" in out and "shm-hygiene" in out


class TestJsonReport:
    def test_schema(self, workspace, capsys):
        write(workspace, "pkg/mod.py", VIOLATING)
        code = lint_main(["pkg", "--format", "json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert set(payload) == {
            "version", "files_scanned", "ok", "findings", "grandfathered",
        }
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "check_id", "message"}
        assert finding["check_id"] == "unused-import"
        assert finding["path"] == "pkg/mod.py"

    def test_clean_json_is_ok(self, workspace, capsys):
        write(workspace, "pkg/mod.py", CLEAN)
        assert lint_main(["pkg", "--format", "json", "--no-baseline"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestBaseline:
    def test_write_then_grandfather_round_trip(self, workspace, capsys):
        write(workspace, "pkg/mod.py", VIOLATING)
        assert lint_main(["pkg", "--write-baseline", "--baseline", "bl.json"]) == 0
        capsys.readouterr()

        keys = load_baseline("bl.json")
        assert len(keys) == 1
        ((path, check_id, _message),) = keys
        assert (path, check_id) == ("pkg/mod.py", "unused-import")

        # Grandfathered: the same finding no longer fails the run...
        assert lint_main(["pkg", "--baseline", "bl.json"]) == 0
        assert "grandfathered" in capsys.readouterr().out
        # ...unless the baseline is explicitly ignored.
        assert lint_main(["pkg", "--baseline", "bl.json", "--no-baseline"]) == 1

    def test_baseline_does_not_mask_new_findings(self, workspace, capsys):
        write(workspace, "pkg/mod.py", VIOLATING)
        assert lint_main(["pkg", "--write-baseline", "--baseline", "bl.json"]) == 0
        write(workspace, "pkg/other.py", "import sys\n\nX = 2\n")
        assert lint_main(["pkg", "--baseline", "bl.json"]) == 1

    def test_save_load_round_trip_preserves_keys(self, workspace):
        from repro.analysis.lint.findings import Finding

        findings = [
            Finding(path="a.py", line=3, check_id="global-rng", message="m1"),
            Finding(path="b.py", line=9, check_id="shm-hygiene", message="m2"),
        ]
        save_baseline("bl.json", findings)
        assert load_baseline("bl.json") == {f.baseline_key for f in findings}

    def test_committed_repo_baseline_is_empty(self):
        repo_baseline = Path(__file__).resolve().parents[2] / "analysis-baseline.json"
        payload = json.loads(repo_baseline.read_text())
        assert payload["findings"] == []


class TestReproCliIntegration:
    def test_lint_subcommand_forwards(self, workspace, capsys):
        write(workspace, "pkg/mod.py", VIOLATING)
        assert repro_main(["lint", "pkg", "--no-baseline"]) == 1
        write(workspace, "pkg/mod.py", CLEAN)
        assert repro_main(["lint", "pkg", "--no-baseline"]) == 0

    def test_lint_subcommand_list_checks(self, workspace, capsys):
        assert repro_main(["lint", "--list-checks"]) == 0
        assert "dtype-discipline" in capsys.readouterr().out

    def test_top_level_help_lists_lint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["--help"])
        assert excinfo.value.code == 0
        assert "lint" in capsys.readouterr().out

    def test_experiment_subcommands_expose_sanitize(self, capsys):
        for command in ("detect", "table1", "fig3", "table2", "fig2", "fig4"):
            with pytest.raises(SystemExit) as excinfo:
                repro_main([command, "--help"])
            assert excinfo.value.code == 0
            assert "--sanitize" in capsys.readouterr().out
