"""Runtime sanitizer and divergence-diffing tests.

The two headline guarantees:

- under ``REPRO_SANITIZE=1`` an injected dtype leak in a layer's
  forward/backward raises :class:`SanitizeError` at the offending layer
  instead of silently corrupting the run;
- two runs' hash traces diff to exactly the ``(round, layer)`` where a
  seeded single-layer perturbation was injected.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.divergence import Divergence, diff_traces, first_divergence
from repro.analysis.sanitize import HashTrace, SanitizeError
from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp

PERTURB_ROUND = 3
PERTURB_PARAM = 2


def make_world(seed: int = 7, num_clients: int = 4):
    """A small separable 3-class federated world, defense-free."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    labels = np.tile(np.arange(3), 40)
    x = centers[labels] + rng.normal(0.0, 0.4, size=(len(labels), 2))
    pool = Dataset(x, labels, 3)
    parts = iid_partition(len(pool), num_clients, rng)
    clients = [HonestClient(i, pool.subset(parts[i])) for i in range(num_clients)]
    model = make_mlp(2, 3, rng, hidden=(8,))
    config = FLConfig(
        num_clients=num_clients, clients_per_round=2, local_epochs=1, batch_size=16
    )
    return model, clients, config


def build_sim(sim_cls=FederatedSimulation, seed: int = 7):
    model, clients, config = make_world(seed)
    return sim_cls(model.clone(), clients, config, np.random.default_rng(seed + 1))


def param_flat_slice(model, index: int) -> slice:
    offset = 0
    for i, param in enumerate(model.parameters()):
        if i == index:
            return slice(offset, offset + param.size)
        offset += param.size
    raise IndexError(index)


class PerturbedSimulation(FederatedSimulation):
    """Injects a tiny perturbation into one parameter's flat slice at one round."""

    def _combine(self, contributor_ids, updates, round_idx, rng):
        mean_update = super()._combine(contributor_ids, updates, round_idx, rng)
        if round_idx == PERTURB_ROUND:
            span = param_flat_slice(self.global_model, PERTURB_PARAM)
            mean_update = mean_update.copy()
            mean_update[span] += 1e-6
        return mean_update


class TestScope:
    def test_scope_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        assert not sanitize.enabled()
        with sanitize.scope():
            assert os.environ[sanitize.ENV_FLAG] == "1"
            assert sanitize.enabled()
        assert sanitize.ENV_FLAG not in os.environ

    def test_scope_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        with sanitize.scope():
            assert sanitize.enabled()
        assert os.environ[sanitize.ENV_FLAG] == "0"
        assert not sanitize.enabled()

    def test_inactive_scope_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        with sanitize.scope(False):
            assert not sanitize.enabled()


class TestAssertions:
    def test_assert_dtype_accepts_exact_match(self):
        sanitize.assert_dtype(np.zeros(3, dtype=np.float64), "here")

    def test_assert_dtype_rejects_downcast(self):
        with pytest.raises(SanitizeError, match="float32"):
            sanitize.assert_dtype(np.zeros(3, dtype=np.float32), "here")

    def test_assert_dtype_rejects_non_array(self):
        with pytest.raises(SanitizeError, match="ndarray"):
            sanitize.assert_dtype([1.0, 2.0], "here")

    def test_assert_finite(self):
        sanitize.assert_finite(np.ones(3), "here")
        with pytest.raises(SanitizeError, match="non-finite"):
            sanitize.assert_finite(np.array([1.0, np.nan]), "here")

    def test_hash_array_distinguishes_dtype_and_bytes(self):
        a = np.arange(4, dtype=np.float64)
        assert sanitize.hash_array(a) == sanitize.hash_array(a.copy())
        assert sanitize.hash_array(a) != sanitize.hash_array(a.astype(np.float32))
        b = a.copy()
        b[0] += 1e-15
        assert sanitize.hash_array(a) != sanitize.hash_array(b)


class TestNetworkHooks:
    def test_forward_dtype_leak_is_caught_at_the_layer(self):
        net = make_mlp(2, 3, np.random.default_rng(0), hidden=(8,))
        original = net.layers[0].forward
        net.layers[0].forward = (
            lambda x, train=False: original(x, train=train).astype(np.float32)
        )
        x = np.zeros((4, 2), dtype=np.float64)
        with sanitize.scope():
            with pytest.raises(SanitizeError, match=r"forward\[0:"):
                net.forward(x)

    def test_backward_dtype_leak_is_caught(self):
        net = make_mlp(2, 3, np.random.default_rng(0), hidden=(8,))
        x = np.zeros((4, 2), dtype=np.float64)
        last = len(net.layers) - 1
        original = net.layers[last].backward
        net.layers[last].backward = (
            lambda g: original(g).astype(np.float32)
        )
        with sanitize.scope():
            net.forward(x, train=True)
            with pytest.raises(SanitizeError, match=rf"backward\[{last}:"):
                net.backward(np.zeros((4, 3), dtype=np.float64))

    def test_leak_passes_silently_when_sanitizer_is_off(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        net = make_mlp(2, 3, np.random.default_rng(0), hidden=(8,))
        original = net.layers[0].forward
        net.layers[0].forward = (
            lambda x, train=False: original(x, train=train).astype(np.float32)
        )
        out = net.forward(np.zeros((4, 2), dtype=np.float64))
        assert out.shape == (4, 3)


class TestSimulationTrace:
    def test_trace_absent_without_sanitizer(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        sim = build_sim()
        sim.run(2)
        assert sim.sanitize_trace is None

    def test_trace_records_every_round_and_parameter(self):
        with sanitize.scope():
            sim = build_sim()
            sim.run(4)
        num_params = len(sim.global_model.parameters())
        assert len(sim.sanitize_trace) == 4 * num_params
        rounds = {e.round_idx for e in sim.sanitize_trace.entries}
        assert rounds == set(range(4))

    def test_identical_runs_produce_identical_traces(self):
        with sanitize.scope():
            sim_a = build_sim()
            sim_a.run(5)
            sim_b = build_sim()
            sim_b.run(5)
        assert first_divergence(sim_a.sanitize_trace, sim_b.sanitize_trace) is None

    def test_divergence_pinpoints_injected_round_and_layer(self):
        with sanitize.scope():
            sim_a = build_sim()
            sim_a.run(6)
            sim_b = build_sim(PerturbedSimulation)
            sim_b.run(6)
        divergence = first_divergence(sim_a.sanitize_trace, sim_b.sanitize_trace)
        expected_layer = (
            f"{PERTURB_PARAM}:"
            f"{sim_a.global_model.parameters()[PERTURB_PARAM].name}"
        )
        assert divergence is not None
        assert divergence.kind == "digest"
        assert divergence.round_idx == PERTURB_ROUND
        assert divergence.layer == expected_layer


class TestDivergenceHelpers:
    def test_structural_mismatch_on_truncated_trace(self):
        trace = HashTrace()
        trace.record(0, "0:w", "aa")
        trace.record(1, "0:w", "bb")
        shorter = HashTrace(entries=trace.entries[:1])
        divergence = first_divergence(trace, shorter)
        assert divergence is not None
        assert divergence.kind == "structure"
        assert "len=" in divergence.digest_a

    def test_structural_mismatch_on_reordered_layers(self):
        a = HashTrace()
        a.record(0, "0:w", "aa")
        b = HashTrace()
        b.record(0, "1:b", "aa")
        divergence = first_divergence(a, b)
        assert divergence is not None and divergence.kind == "structure"

    def test_diff_traces_lists_every_mismatch(self):
        a, b = HashTrace(), HashTrace()
        for r in range(3):
            a.record(r, "0:w", f"a{r}")
            b.record(r, "0:w", f"a{r}" if r == 0 else f"b{r}")
        mismatches = diff_traces(a, b)
        assert [d.round_idx for d in mismatches] == [1, 2]
        assert all(isinstance(d, Divergence) for d in mismatches)

    def test_trace_save_load_round_trip(self, tmp_path):
        trace = HashTrace()
        trace.record(0, "0:w", "aa")
        trace.record(1, "1:b", "bb")
        path = tmp_path / "trace.json"
        trace.save(path)
        assert HashTrace.load(path) == trace


class TestConfigField:
    def test_sanitize_field_defaults_off_and_is_not_in_environment_key(self):
        from repro.experiments.configs import ExperimentConfig

        base = ExperimentConfig()
        sanitized = ExperimentConfig(sanitize=True)
        assert base.sanitize is False
        assert sanitized.sanitize is True
        assert base.environment_key(0) == sanitized.environment_key(0)
