"""Unit tests for the repro.analysis toolkit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    collect_validator_trace,
    detection_latency,
    rejection_bursts,
    update_norm_stats,
    vote_summary,
)
from repro.core.validation import MisclassificationValidator
from repro.data.dataset import Dataset
from repro.fl.client import HonestClient, LocalTrainingConfig, local_train
from repro.fl.simulation import DefenseDecision, RoundRecord
from repro.nn.models import make_mlp


def record(round_idx, accepted, reject_votes=0, num_validators=0):
    return RoundRecord(
        round_idx=round_idx,
        contributor_ids=[],
        malicious_present=False,
        accepted=accepted,
        decision=DefenseDecision(
            accepted=accepted,
            reject_votes=reject_votes,
            num_validators=num_validators,
        ),
    )


class TestDetectionLatency:
    def test_immediate_rejection_is_zero(self):
        records = [record(5, accepted=False)]
        assert detection_latency(records, [5]) == {5: 0}

    def test_later_rejection_counted(self):
        records = [record(5, True), record(6, True), record(7, False)]
        assert detection_latency(records, [5]) == {5: 2}

    def test_miss_is_none(self):
        records = [record(5, True), record(6, True)]
        assert detection_latency(records, [5]) == {5: None}


class TestRejectionBursts:
    def test_single_burst(self):
        records = [record(0, True), record(1, False), record(2, False), record(3, True)]
        assert rejection_bursts(records) == [(1, 2)]

    def test_trailing_burst_closed(self):
        records = [record(0, True), record(1, False)]
        assert rejection_bursts(records) == [(1, 1)]

    def test_no_rejections(self):
        assert rejection_bursts([record(0, True)]) == []

    def test_multiple_bursts(self):
        records = [
            record(0, False), record(1, True), record(2, False), record(3, False),
        ]
        assert rejection_bursts(records) == [(0, 1), (2, 2)]


class TestVoteSummary:
    def test_summary_values(self):
        records = [
            record(0, True, reject_votes=2, num_validators=10),
            record(1, False, reject_votes=8, num_validators=10),
        ]
        summary = vote_summary(records)
        assert summary["rounds"] == 2.0
        assert summary["mean_reject_share"] == pytest.approx(0.5)
        assert summary["max_reject_share"] == pytest.approx(0.8)

    def test_no_votes(self):
        summary = vote_summary([record(0, True)])
        assert summary["rounds"] == 0.0


class TestValidatorTrace:
    @pytest.fixture
    def model_sequence(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        local_train(model, tiny_dataset, LocalTrainingConfig(epochs=15, lr=0.1), rng)
        sequence = [model.clone()]
        for _ in range(14):
            local_train(model, tiny_dataset, LocalTrainingConfig(epochs=1, lr=0.02), rng)
            sequence.append(model.clone())
        return sequence

    def test_trace_lengths_align(self, model_sequence, tiny_dataset):
        validator = MisclassificationValidator(tiny_dataset)
        trace = collect_validator_trace(validator, model_sequence, lookback=8)
        n = len(model_sequence) - 1
        assert len(trace.rounds) == n
        assert len(trace.votes) == n
        assert len(trace.margin()) == n

    def test_early_rounds_abstain(self, model_sequence, tiny_dataset):
        validator = MisclassificationValidator(tiny_dataset)
        trace = collect_validator_trace(validator, model_sequence, lookback=8)
        assert trace.candidate_lofs[0] is None  # history of 1: abstain
        assert not np.isnan(trace.margin()[-1])  # mature history: real LOF

    def test_input_validation(self, model_sequence, tiny_dataset):
        validator = MisclassificationValidator(tiny_dataset)
        with pytest.raises(ValueError):
            collect_validator_trace(validator, model_sequence, lookback=2)
        with pytest.raises(ValueError):
            collect_validator_trace(validator, model_sequence[:1], lookback=8)


class TestUpdateNormStats:
    def test_statistics_consistent(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        clients = [HonestClient(i, tiny_dataset) for i in range(5)]
        stats = update_norm_stats(clients, model, LocalTrainingConfig(), rng)
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.percentile_95 <= stats.maximum + 1e-12

    def test_outlier_factor(self, tiny_dataset, rng):
        model = make_mlp(2, 3, rng, hidden=(8,))
        clients = [HonestClient(i, tiny_dataset) for i in range(4)]
        stats = update_norm_stats(clients, model, LocalTrainingConfig(), rng)
        assert stats.outlier_factor(10 * stats.percentile_95) == pytest.approx(10.0)

    def test_boosted_update_sticks_out(self, tiny_dataset, rng):
        """A model-replacement-boosted norm dwarfs honest norms."""
        model = make_mlp(2, 3, rng, hidden=(8,))
        clients = [HonestClient(i, tiny_dataset) for i in range(5)]
        stats = update_norm_stats(clients, model, LocalTrainingConfig(), rng)
        boosted_norm = 30.0 * stats.mean  # N/lambda = 30 boost
        assert stats.outlier_factor(boosted_norm) > 5.0

    def test_empty_clients_rejected(self, rng, tiny_mlp):
        with pytest.raises(ValueError):
            update_norm_stats([], tiny_mlp, LocalTrainingConfig(), rng)
