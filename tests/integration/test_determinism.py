"""Reproducibility: identical seeds produce identical runs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.data.synthetic_cifar import SyntheticCifar
from repro.data.synthetic_femnist import SyntheticFemnist
from repro.fl.client import HonestClient
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.models import make_mlp


def build_sim(seed: int) -> FederatedSimulation:
    rng = np.random.default_rng(seed)
    task = SyntheticCifar()
    pool = task.sample(400, rng)
    parts = iid_partition(len(pool), 5, rng)
    clients = [HonestClient(i, pool.subset(p)) for i, p in enumerate(parts)]
    model = make_mlp(task.flat_dim, 10, np.random.default_rng(seed + 1), hidden=(16,))
    config = FLConfig(num_clients=5, clients_per_round=3, local_epochs=1)
    return FederatedSimulation(model, clients, config, np.random.default_rng(seed + 2))


class TestSimulationDeterminism:
    def test_same_seed_same_trajectory(self):
        a, b = build_sim(3), build_sim(3)
        a.run(4)
        b.run(4)
        np.testing.assert_array_equal(
            a.global_model.get_flat(), b.global_model.get_flat()
        )

    def test_different_seed_different_trajectory(self):
        a, b = build_sim(3), build_sim(4)
        a.run(4)
        b.run(4)
        assert not np.allclose(a.global_model.get_flat(), b.global_model.get_flat())

    def test_same_selection_sequence(self):
        a, b = build_sim(3), build_sim(3)
        ra = [r.contributor_ids for r in a.run(5)]
        rb = [r.contributor_ids for r in b.run(5)]
        assert ra == rb


class TestGeneratorDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 50))
    def test_cifar_sampling_reproducible(self, seed, n):
        task = SyntheticCifar()
        a = task.sample(n, np.random.default_rng(seed))
        b = task.sample(n, np.random.default_rng(seed))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 50))
    def test_femnist_sampling_reproducible(self, seed, n):
        task = SyntheticFemnist(num_writers=6)
        a = task.sample(n, np.random.default_rng(seed))
        b = task.sample(n, np.random.default_rng(seed))
        np.testing.assert_array_equal(a.x, b.x)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_dirichlet_partition_reproducible(self, seed):
        from repro.data.partition import dirichlet_partition

        labels = np.random.default_rng(0).integers(0, 5, size=200)
        a = dirichlet_partition(labels, 8, 0.9, np.random.default_rng(seed))
        b = dirichlet_partition(labels, 8, 0.9, np.random.default_rng(seed))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)


class TestScenarioDeterminism:
    def test_stable_scenario_reproducible(self):
        from repro.experiments.configs import ExperimentConfig
        from repro.experiments.environment import clear_environment_cache
        from repro.experiments.scenarios import run_stable_scenario

        config = ExperimentConfig(
            dataset="cifar", client_share=0.9, num_clients=10, pool_size=600,
            test_size=100, clients_per_round=4, pretrain_rounds=20,
            pretrain_lr=0.1, lookback=6, quorum=2, num_validators=3,
            defense_start=8, total_rounds=14, attack_rounds=(10,),
            poison_samples=30, attack_epochs=3, hidden=(24,),
        )
        first = run_stable_scenario(config, seed=0)
        clear_environment_cache()
        second = run_stable_scenario(config, seed=0)
        assert [r.accepted for r in first.records] == [
            r.accepted for r in second.records
        ]
        assert [r.contributor_ids for r in first.records] == [
            r.contributor_ids for r in second.records
        ]


class TestValidatorDeterminism:
    def test_vote_is_pure_function_of_context(self, tiny_dataset, rng):
        """The misclassification analysis ignores its rng argument."""
        from repro.core.validation import (
            MisclassificationValidator,
            ValidationContext,
        )
        from repro.fl.client import LocalTrainingConfig, local_train

        model = make_mlp(2, 3, rng, hidden=(8,))
        local_train(model, tiny_dataset, LocalTrainingConfig(epochs=10), rng)
        history = []
        for version in range(10):
            local_train(
                model, tiny_dataset, LocalTrainingConfig(epochs=1, lr=0.02), rng
            )
            history.append((version, model.clone()))
        validator = MisclassificationValidator(tiny_dataset)
        context = ValidationContext(model, history)
        votes = {
            validator.vote(context, np.random.default_rng(s)) for s in range(5)
        }
        assert len(votes) == 1
