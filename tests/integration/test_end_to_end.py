"""Integration tests: the full pipeline wired together by hand.

These tests build the world explicitly (data -> clients -> attack ->
defense -> simulation) instead of going through the experiment harness, so
they double as executable documentation of the public API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ModelReplacementClient, ReplacementConfig, SemanticBackdoor
from repro.core import BaffleConfig, BaffleDefense, MisclassificationValidator, ValidatorPool
from repro.data import SyntheticCifar, dirichlet_partition, split_client_server
from repro.fl import FLConfig, FederatedSimulation, HonestClient, ScheduledSelector
from repro.nn import accuracy, make_mlp


@pytest.fixture(scope="module")
def world():
    """A small but complete federated world with a stable global model."""
    rng = np.random.default_rng(77)
    task = SyntheticCifar()
    pool = task.sample(1200, rng)
    test = task.sample(300, rng)
    client_pool, server_data = split_client_server(pool, 0.9, rng)
    num_clients = 15
    parts = dirichlet_partition(client_pool.y, num_clients, 0.9, rng, min_samples=10)
    shards = [client_pool.subset(p) for p in parts]

    model = make_mlp(task.flat_dim, 10, rng, hidden=(32,))
    pretrain_cfg = FLConfig(
        num_clients=num_clients, clients_per_round=5, local_epochs=2, client_lr=0.1
    )
    clients = [HonestClient(i, s) for i, s in enumerate(shards)]
    sim = FederatedSimulation(model, clients, pretrain_cfg, rng)
    sim.run(35)
    return {
        "task": task,
        "shards": shards,
        "server_data": server_data,
        "test": test,
        "stable": sim.global_model,
        "num_clients": num_clients,
        "rng": rng,
    }


def build_defended_sim(world, attack_rounds, mode="both", use_secure_agg=False):
    task = world["task"]
    shards = world["shards"]
    num_clients = world["num_clients"]
    rng = np.random.default_rng(99)

    fl_cfg = FLConfig(
        num_clients=num_clients, clients_per_round=5, local_epochs=2,
        client_lr=0.05, global_lr=1.0,
    )
    backdoor = SemanticBackdoor(task)
    replacement = ReplacementConfig(
        boost=fl_cfg.replacement_boost, poison_ratio=0.25, poison_samples=60,
        attack_epochs=4,
    )
    clients = [
        ModelReplacementClient(0, shards[0], backdoor, replacement, attack_rounds)
    ] + [HonestClient(i, shards[i]) for i in range(1, num_clients)]

    pool = ValidatorPool.from_datasets(
        {i: shards[i] for i in range(1, num_clients)}
    )
    defense = BaffleDefense(
        BaffleConfig(lookback=8, quorum=3, num_validators=5, mode=mode, start_round=10),
        pool,
        MisclassificationValidator(world["server_data"]),
    )
    defense.prime(world["stable"])
    selector = ScheduledSelector(num_clients, 5, {r: [0] for r in attack_rounds})
    sim = FederatedSimulation(
        world["stable"].clone(), clients, fl_cfg, rng,
        selector=selector, defense=defense, use_secure_agg=use_secure_agg,
    )
    return sim, backdoor, defense


class TestFullPipeline:
    def test_stable_model_competent(self, world):
        acc = accuracy(world["test"].y, world["stable"].predict(world["test"].x))
        assert acc > 0.8

    def test_injections_rejected_clean_rounds_accepted(self, world):
        attack_rounds = {13, 17}
        sim, _, _ = build_defended_sim(world, attack_rounds)
        records = sim.run(20)
        for record in records:
            if record.round_idx in attack_rounds:
                assert not record.accepted, f"round {record.round_idx} missed"
        clean_defended = [
            r for r in records
            if r.round_idx >= 10 and r.round_idx not in attack_rounds
        ]
        fp_rate = np.mean([not r.accepted for r in clean_defended])
        assert fp_rate <= 0.3

    def test_backdoor_never_enters_global_model(self, world):
        attack_rounds = {13, 17}
        sim, backdoor, _ = build_defended_sim(world, attack_rounds)
        sim.run(20)
        bd_acc = backdoor.backdoor_accuracy(
            sim.global_model, 200, np.random.default_rng(5)
        )
        assert bd_acc < 0.3

    def test_without_defense_backdoor_lands(self, world):
        """Control: the identical attack succeeds when nothing defends."""
        task = world["task"]
        shards = world["shards"]
        num_clients = world["num_clients"]
        fl_cfg = FLConfig(
            num_clients=num_clients, clients_per_round=5, local_epochs=2,
            client_lr=0.05, global_lr=1.0,
        )
        backdoor = SemanticBackdoor(task)
        replacement = ReplacementConfig(
            boost=fl_cfg.replacement_boost, poison_ratio=0.25, poison_samples=60,
            attack_epochs=4,
        )
        clients = [
            ModelReplacementClient(0, shards[0], backdoor, replacement, {15})
        ] + [HonestClient(i, shards[i]) for i in range(1, num_clients)]
        selector = ScheduledSelector(num_clients, 5, {15: [0]})
        sim = FederatedSimulation(
            world["stable"].clone(), clients, fl_cfg,
            np.random.default_rng(99), selector=selector,
        )
        sim.run(16)  # stop right after the injection
        bd_acc = backdoor.backdoor_accuracy(
            sim.global_model, 200, np.random.default_rng(5)
        )
        assert bd_acc > 0.5

    def test_defense_composes_with_secure_aggregation(self, world):
        """The headline compatibility claim, exercised end to end."""
        attack_rounds = {13}
        sim, _, _ = build_defended_sim(world, attack_rounds, use_secure_agg=True)
        records = sim.run(15)
        assert not records[13].accepted

    def test_server_only_configuration_detects(self, world):
        attack_rounds = {13}
        sim, _, _ = build_defended_sim(world, attack_rounds, mode="server")
        records = sim.run(15)
        assert not records[13].accepted

    def test_rollback_preserves_main_accuracy(self, world):
        attack_rounds = {13, 14, 15}
        sim, _, _ = build_defended_sim(world, attack_rounds)
        sim.run(17)
        acc = accuracy(world["test"].y, sim.global_model.predict(world["test"].x))
        assert acc > 0.75
